package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: energybench/internal/bench
cpu: AMD EPYC 7B13
BenchmarkKernels/int-alu-8         	       1	    123456 ns/op
BenchmarkKernels/chase-dram-8      	       1	   9876543 ns/op
BenchmarkAlloc-8                   	    1000	      1234 ns/op	      56 B/op	       2 allocs/op
BenchmarkNoProcs                   	       5	      10.5 ns/op
BenchmarkKernels/chase-l1          	       3	    222 ns/op
PASS
ok  	energybench/internal/bench	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	report, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || report.Pkg != "energybench/internal/bench" {
		t.Errorf("header mis-parsed: %+v", report)
	}
	if len(report.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkKernels/int-alu" || b0.Procs != 8 || b0.Iterations != 1 || b0.NsPerOp != 123456 {
		t.Errorf("first benchmark mis-parsed: %+v", b0)
	}
	alloc := report.Benchmarks[2]
	if alloc.Metrics["B/op"] != 56 || alloc.Metrics["allocs/op"] != 2 {
		t.Errorf("extra metrics mis-parsed: %+v", alloc.Metrics)
	}
	noProcs := report.Benchmarks[3]
	if noProcs.Procs != 0 || noProcs.NsPerOp != 10.5 {
		t.Errorf("proc-less fractional benchmark mis-parsed: %+v", noProcs)
	}
	// A single-CPU run emits no -GOMAXPROCS suffix, so the -1 in chase-l1
	// is part of the kernel name, not a procs count.
	l1 := report.Benchmarks[4]
	if l1.Name != "BenchmarkKernels/chase-l1" || l1.Procs != 0 {
		t.Errorf("name ending in -1 mis-split into procs suffix: %+v", l1)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \tpkg\t0.1s\n")); err == nil {
		t.Error("want an error when no benchmark lines are present")
	}
}
