// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can publish every PR's
// kernel benchmark smoke as a BENCH_*.json artifact and future changes get
// a perf trajectory instead of a pile of logs.
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/bench | benchjson > BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 when the line had none).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional "<value> <unit>" pair on the line
	// (B/op, allocs/op, custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	SchemaVersion int         `json:"schema_version"`
	GOOS          string      `json:"goos,omitempty"`
	GOARCH        string      `json:"goarch,omitempty"`
	Pkg           string      `json:"pkg,omitempty"`
	CPU           string      `json:"cpu,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+)\s+ns/op(.*)$`)

func main() {
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and extracts the result lines plus
// the environment header. Unrecognized lines (PASS, ok, test logs) are
// skipped; zero parsed benchmarks is an error so a silently broken bench
// step cannot publish an empty artifact.
func parse(r io.Reader) (Report, error) {
	report := Report{SchemaVersion: 1, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok {
			switch k {
			case "goos":
				report.GOOS = v
			case "goarch":
				report.GOARCH = v
			case "pkg":
				report.Pkg = v
			case "cpu":
				report.CPU = v
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		// Go only appends the -GOMAXPROCS suffix when GOMAXPROCS != 1, so a
		// captured "-1" is always part of the benchmark's own name (e.g.
		// chase-l1 run on a single-CPU machine), not a procs suffix. Names
		// genuinely ending in -<n> with n > 1 (like mixed-50) remain
		// ambiguous only on single-CPU runs, where no suffix is emitted.
		if b.Procs == 1 {
			b.Name += "-1"
			b.Procs = 0
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return report, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return report, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		b.Metrics = parseExtraMetrics(m[5])
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return report, err
	}
	if len(report.Benchmarks) == 0 {
		return report, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return report, nil
}

// parseExtraMetrics decodes the trailing "<value> <unit>" pairs of a
// benchmark line, e.g. "  56 B/op   2 allocs/op".
func parseExtraMetrics(s string) map[string]float64 {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return nil
	}
	metrics := map[string]float64{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return nil
	}
	return metrics
}
