// Command externstress is a small CPU stress helper used as the bundled
// external workload in CI: it spins integer arithmetic on a configurable
// number of OS threads for a fixed wall-clock duration, then exits 0. The
// thread count comes from the THREADS environment variable (the extern
// executor's swept axis), so one binary covers the whole threads grid.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	ms := flag.Int("ms", 200, "how long to spin, in milliseconds")
	flag.Parse()
	if *ms <= 0 {
		fmt.Fprintln(os.Stderr, "externstress: -ms must be positive")
		os.Exit(2)
	}
	threads := 1
	if v := os.Getenv("THREADS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "externstress: THREADS=%q is not a positive integer\n", v)
			os.Exit(2)
		}
		threads = n
	}
	deadline := time.Now().Add(time.Duration(*ms) * time.Millisecond)
	var sink atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// Lock each spinner to its own OS thread so per-TID counter
			// sessions attached by the harness see sustained work.
			runtime.LockOSThread()
			acc := seed + 1
			for time.Now().Before(deadline) {
				for j := 0; j < 1<<14; j++ {
					acc = acc*6364136223846793005 + 1442695040888963407
				}
			}
			sink.Add(acc)
		}(uint64(i))
	}
	wg.Wait()
	// Print the accumulator so the arithmetic cannot be optimized away.
	fmt.Println(sink.Load())
}
