package main

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"energybench/internal/harness"
	"energybench/internal/stats"
)

// cliResult mirrors harness.Result for decoding the CLI's JSON output.
type cliResult struct {
	Spec      string            `json:"spec"`
	Component string            `json:"component"`
	Threads   int               `json:"threads"`
	Placement harness.Placement `json:"placement"`
	Meter     string            `json:"meter"`
	Samples   []harness.Sample  `json:"samples"`
	EnergyJ   stats.Summary     `json:"energy_j_summary"`
	TimeS     stats.Summary     `json:"time_s_summary"`
	PowerW    stats.Summary     `json:"power_w_summary"`
	EDP       float64           `json:"edp_js"`
}

// TestRunMockEndToEnd is the acceptance-criteria integration test: a full
// `energybench run --meter=mock --reps=3` sweep over the catalog at two
// thread counts must produce valid JSON with energy, time, power, and EDP
// for every configuration — with no RAPL hardware available.
func TestRunMockEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"run",
		"--meter=mock",
		"--reps=3",
		"--warmup=1",
		"--threads=1,2",
		"--placement=none",
		"--iter-scale=0.01", // keep CI wall time low; iteration counts stay >0
	}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run failed: %v\nstderr: %s", err, stderr.String())
	}

	var results []cliResult
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\noutput: %.500s", err, stdout.String())
	}

	specs := map[string]bool{}
	threads := map[int]bool{}
	for _, r := range results {
		specs[r.Spec] = true
		threads[r.Threads] = true
		if r.Meter != "mock" {
			t.Errorf("%s/t%d: meter = %q, want mock", r.Spec, r.Threads, r.Meter)
		}
		if len(r.Samples) != 3 {
			t.Errorf("%s/t%d: %d samples, want 3", r.Spec, r.Threads, len(r.Samples))
		}
		if r.EnergyJ.Mean <= 0 {
			t.Errorf("%s/t%d: energy mean %v, want > 0", r.Spec, r.Threads, r.EnergyJ.Mean)
		}
		if r.TimeS.Mean <= 0 {
			t.Errorf("%s/t%d: time mean %v, want > 0", r.Spec, r.Threads, r.TimeS.Mean)
		}
		if r.PowerW.Mean <= 0 {
			t.Errorf("%s/t%d: power mean %v, want > 0", r.Spec, r.Threads, r.PowerW.Mean)
		}
		if r.EDP <= 0 {
			t.Errorf("%s/t%d: EDP %v, want > 0", r.Spec, r.Threads, r.EDP)
		}
	}
	if len(specs) < 6 {
		t.Errorf("swept %d distinct specs (%v), want at least 6", len(specs), specs)
	}
	if len(threads) < 2 {
		t.Errorf("swept %d distinct thread counts (%v), want at least 2", len(threads), threads)
	}
}

func TestListEmitsCatalogJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var specs []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &specs); err != nil {
		t.Fatalf("list output is not valid JSON: %v", err)
	}
	if len(specs) < 6 {
		t.Errorf("list printed %d specs, want at least 6", len(specs))
	}
	for _, s := range specs {
		if s["name"] == "" || s["name"] == nil {
			t.Errorf("spec missing name: %v", s)
		}
	}
}

func TestRunSpecFilterAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"run", "--specs=int-alu", "--threads=1", "--reps=2", "--warmup=0", "--iter-scale=0.01"}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var results []cliResult
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Spec != "int-alu" {
		t.Errorf("got %v, want exactly one int-alu result", results)
	}

	for _, bad := range [][]string{
		{},
		{"frobnicate"},
		{"run", "--specs=no-such-spec"},
		{"run", "--meter=teapot"},
		{"run", "--threads=zero"},
		{"run", "--placement=diagonal"},
		{"run", "--reps=0"},
		{"run", "--iter-scale=-1"},
	} {
		stdout.Reset()
		stderr.Reset()
		if err := run(context.Background(), bad, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error, got nil", bad)
		}
	}
}

func TestHelp(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"help"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("energybench run")) {
		t.Error("help output does not mention the run subcommand")
	}
}
