package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"energybench/internal/adapt"
	"energybench/internal/store"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// plannerArgs is the reference adaptive sweep every test here runs: four
// single-component specs × six thread counts (24-trial grid, 5 model
// parameters) against the planted mock model.
func plannerArgs(db string, extra ...string) []string {
	args := []string{"run",
		"--specs=int-alu,fp-mac,chase-l1,chase-dram", "--threads=1,2,3,4,5,6",
		"--mock-model=int-alu:2,fpu:5,l1:1.5,dram:8", "--mock-noise=0.3",
		"--reps=1", "--warmup=0", "--iter-scale=0.01", "--store=" + db,
	}
	return append(args, extra...)
}

// TestRunActivePlanner drives the full CLI path: `run --algo=active` must
// print a planner report, converge using at most half of the grid, and have
// streamed exactly the dispatched trials into the store.
func TestRunActivePlanner(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	out := runOK(t, plannerArgs(db, "--algo=active")...)
	var rep adapt.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a planner report: %v\n%s", err, out.String())
	}
	if rep.Algo != "active" || rep.Seed != adapt.DefaultSeed {
		t.Errorf("report algo/seed = %s/%d, want active/%d", rep.Algo, rep.Seed, adapt.DefaultSeed)
	}
	if rep.GridTrials != 24 {
		t.Errorf("grid = %d trials, want 24", rep.GridTrials)
	}
	if !rep.Converged {
		t.Fatalf("planner did not converge: %+v", rep)
	}
	if rep.RanTrials > rep.GridTrials/2 {
		t.Errorf("planner ran %d of %d trials, want at most half", rep.RanTrials, rep.GridTrials)
	}
	if rep.Fit == nil || rep.Fit.CoeffW["dram"] == 0 {
		t.Errorf("report fit missing or empty: %+v", rep.Fit)
	}
	recs, err := store.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != rep.RanTrials {
		t.Errorf("store holds %d records, report says %d trials ran", len(recs), rep.RanTrials)
	}
}

// TestRunActivePlannerResume interrupts an adaptive campaign via --budget,
// then resumes it: the second invocation must seed from the stored results,
// run only new configurations, and still converge.
func TestRunActivePlannerResume(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	out := runOK(t, plannerArgs(db, "--algo=active", "--batch=5", "--budget=5")...)
	var first adapt.Report
	if err := json.Unmarshal(out.Bytes(), &first); err != nil {
		t.Fatalf("first report: %v\n%s", err, out.String())
	}
	if first.RanTrials != 5 || first.Converged {
		t.Fatalf("interrupted run: ran=%d converged=%v, want 5/false", first.RanTrials, first.Converged)
	}

	var stdout, stderr bytes.Buffer
	args := plannerArgs(db, "--algo=active", "--batch=6", "--resume")
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("resumed run: %v\nstderr: %s", err, stderr.String())
	}
	var second adapt.Report
	if err := json.Unmarshal(stdout.Bytes(), &second); err != nil {
		t.Fatalf("resumed report: %v\n%s", err, stdout.String())
	}
	if second.PriorTrials != 5 {
		t.Errorf("resumed report counts %d prior trials, want 5", second.PriorTrials)
	}
	if !second.Converged {
		t.Fatalf("resumed campaign did not converge: %+v", second)
	}
	recs, err := store.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	// Store dedupes by key, so any re-run of a stored configuration would
	// surface as fewer records than prior+ran.
	if len(recs) != second.TotalTrials {
		t.Errorf("store holds %d records, want total_trials=%d (a mismatch means re-run or lost trials)",
			len(recs), second.TotalTrials)
	}
}

// TestRunPlannerFlagValidation: planner knobs without an adaptive algo, and
// malformed planted models, fail before anything runs.
func TestRunPlannerFlagValidation(t *testing.T) {
	for _, tc := range []struct{ name, flag string }{
		{"batch without algo", "--batch=4"},
		{"budget without algo", "--budget=10"},
		{"target-rse without algo", "--target-rse=0.1"},
		{"seed without algo", "--seed=3"},
	} {
		var stdout, stderr bytes.Buffer
		args := []string{"run", "--specs=int-alu", "--reps=1", tc.flag}
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("%s: accepted %s without --algo", tc.name, tc.flag)
		}
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"run", "--specs=int-alu", "--reps=1", "--mock-model=bogus"},
		&stdout, &stderr); err == nil {
		t.Error("accepted a malformed --mock-model")
	}
	if err := run(context.Background(),
		[]string{"run", "--specs=int-alu", "--reps=1", "--meter=rapl", "--mock-model=int-alu:2"},
		&stdout, &stderr); err == nil {
		t.Error("accepted --mock-model under --meter=rapl")
	}
}

// TestRunActivePlannerCampaignFile drives the same adaptive sweep through a
// campaign file, exercising the algo/batch/seed/mock_model keys end to end.
func TestRunActivePlannerCampaignFile(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.jsonl")
	doc := `
name: planner-unit
meter: mock
mock_model: "int-alu:2,fpu:5,l1:1.5,dram:8"
mock_noise_w: 0.3
algo: active
batch: 8
seed: 1
store: ` + db + `
spaces:
  - specs: [int-alu, fp-mac, chase-l1, chase-dram]
    threads: [1, 2, 3, 4, 5, 6]
    reps: 1
    warmup: 0
    iter_scale: 0.01
`
	path := filepath.Join(dir, "campaign.yaml")
	writeFile(t, path, doc)
	out := runOK(t, "run", "--campaign="+path)
	var rep adapt.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("campaign planner report: %v\n%s", err, out.String())
	}
	if !rep.Converged || rep.RanTrials > rep.GridTrials/2 {
		t.Errorf("campaign planner: converged=%v ran=%d/%d, want convergence within half the grid",
			rep.Converged, rep.RanTrials, rep.GridTrials)
	}
}
