package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"energybench/internal/store"
)

// TestMain lets this test binary impersonate the energybench CLI: the
// subprocess executor re-execs os.Executable() — under `go test`, the test
// binary itself — with the worker env marker set. When the marker is
// present we dispatch straight into run() instead of the test runner, so
// subprocess-executor integration tests exercise the real spawn path.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvMarker) == "1" {
		if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "energybench:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestWorkerTrialRoundTrip drives the worker subcommand in-process: a
// serialized trial on stdin must come back as a measured envelope with the
// kernel grafted from the catalog.
func TestWorkerTrialRoundTrip(t *testing.T) {
	trialJSON := `{"seq":0,"spec":{"name":"int-alu","component":"int-alu","iters":1000,"unroll":8},
		"threads":1,"placement":"none","iters":1000,"warmup":0,"min_reps":2,"max_reps":2}`
	var stdout, stderr bytes.Buffer
	err := cmdWorkerTrial(context.Background(), []string{"--meter=mock", "--mock-watts=10"},
		strings.NewReader(trialJSON), &stdout, &stderr)
	if err != nil {
		t.Fatalf("worker-trial failed: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{`"v":1`, `"spec":"int-alu"`, `"meter":"mock"`} {
		if !strings.Contains(out, want) {
			t.Errorf("envelope %q missing %q", out, want)
		}
	}
}

// TestWorkerTrialErrorsThroughEnvelope: failures must reach stdout as a
// structured envelope (the parent's only reliable channel), not just exit 1.
func TestWorkerTrialErrorsThroughEnvelope(t *testing.T) {
	cases := []struct {
		name, stdin, wantErr string
	}{
		{"garbage stdin", "not json", "decoding trial"},
		{"unknown spec", `{"spec":{"name":"no-such-kernel"},"threads":1,"placement":"none","min_reps":1,"max_reps":1}`, "no-such-kernel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := cmdWorkerTrial(context.Background(), []string{"--meter=mock"},
				strings.NewReader(tc.stdin), &stdout, &stderr)
			if err == nil {
				t.Fatal("want an error")
			}
			if !strings.Contains(stdout.String(), `"error"`) || !strings.Contains(stdout.String(), tc.wantErr) {
				t.Errorf("envelope %q should carry an error mentioning %q", stdout.String(), tc.wantErr)
			}
		})
	}
}

// TestSubprocessParallelMatchesSerialKeys is the acceptance-criteria test:
// a mock-meter campaign run with --parallel 4 under the subprocess executor
// must produce exactly the same set of store configuration keys as the
// serial in-process run of the same space.
func TestSubprocessParallelMatchesSerialKeys(t *testing.T) {
	dir := t.TempDir()
	serialStore := filepath.Join(dir, "serial.jsonl")
	parallelStore := filepath.Join(dir, "parallel.jsonl")

	spaceArgs := []string{
		"--specs=int-alu,fp-mac", "--corun=int-alu+fp-mac",
		"--threads=1,2", "--reps=1", "--warmup=0", "--iter-scale=0.01",
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"run", "--meter=mock", "--store=" + serialStore}, spaceArgs...)
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("serial run failed: %v\nstderr: %s", err, stderr.String())
	}

	campaignYAML := fmt.Sprintf(`
name: parity
meter: mock
executor: subprocess
parallel: 4
store: %s
spaces:
  - specs: [int-alu, fp-mac]
    corun: [int-alu+fp-mac]
    threads: [1, 2]
    reps: 1
    warmup: 0
    iter_scale: 0.01
`, parallelStore)
	campaignPath := filepath.Join(dir, "parity.yaml")
	if err := os.WriteFile(campaignPath, []byte(campaignYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("campaign run failed: %v\nstderr: %s", err, stderr.String())
	}

	serialKeys, err := store.Keys(serialStore)
	if err != nil {
		t.Fatal(err)
	}
	parallelKeys, err := store.Keys(parallelStore)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialKeys) == 0 {
		t.Fatal("serial run stored nothing")
	}
	if len(serialKeys) != len(parallelKeys) {
		t.Errorf("serial stored %d keys, parallel campaign stored %d", len(serialKeys), len(parallelKeys))
	}
	for k := range serialKeys {
		if !parallelKeys[k] {
			t.Errorf("key %q present in serial store but missing from parallel campaign store", k)
		}
	}
}

// TestCampaignResumeSkipsStoredTrials: a second campaign run with resume
// enabled must skip everything the first run stored.
func TestCampaignResumeSkipsStoredTrials(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "resume.jsonl")
	campaignYAML := fmt.Sprintf(`
name: resumable
meter: mock
executor: subprocess
parallel: 2
store: %s
resume: true
spaces:
  - specs: [int-alu]
    threads: [1, 2]
    reps: 1
    warmup: 0
    iter_scale: 0.01
`, storePath)
	campaignPath := filepath.Join(dir, "resumable.yaml")
	if err := os.WriteFile(campaignPath, []byte(campaignYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("first campaign run failed: %v\nstderr: %s", err, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("second campaign run failed: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipped 2 already-stored trials, 0 to run") {
		t.Errorf("second run should have skipped both trials; stderr: %s", stderr.String())
	}
}

// TestRunFlagValidationFailsFast: invalid executor/parallelism combinations
// must error out before any trial runs instead of silently serializing.
func TestRunFlagValidationFailsFast(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"parallel with inprocess", []string{"run", "--parallel=4"}, "requires the subprocess executor"},
		{"parallel zero", []string{"run", "--parallel=0", "--executor=subprocess"}, "at least 1"},
		{"unknown executor", []string{"run", "--executor=quantum"}, "unknown executor"},
		{"timeout with inprocess", []string{"run", "--trial-timeout=5s"}, "requires the subprocess executor"},
		{"campaign with space flags", []string{"run", "--campaign=x.yaml", "--specs=int-alu"}, "exclusive"},
		{"campaign with meter flag", []string{"run", "--campaign=x.yaml", "--meter=mock"}, "exclusive"},
		{"missing campaign file", []string{"run", "--campaign=/does/not/exist.yaml"}, "exist"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run %v succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestCampaignDryRun: --dry-run composes with --campaign and prints the
// combined plan without spawning a single worker.
func TestCampaignDryRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"run", "--campaign=../../testdata/smoke.yaml", "--dry-run"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("dry run failed: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	// smoke.yaml: solo 3 specs × 2 threads + corun 1 pair × 2 threads = 8.
	if !strings.Contains(out, `"trials": 8`) {
		t.Errorf("dry-run plan should count 8 trials; output: %.400s", out)
	}
	if !strings.Contains(stderr.String(), `campaign "ci-smoke"`) {
		t.Errorf("stderr should announce the campaign; got: %s", stderr.String())
	}
}
