package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"encoding/json"
	"math"

	"energybench/internal/harness"
	"energybench/internal/perf"
	"energybench/internal/store"
)

// TestMain lets this test binary impersonate the energybench CLI: the
// subprocess executor re-execs os.Executable() — under `go test`, the test
// binary itself — with the worker env marker set. When the marker is
// present we dispatch straight into run() instead of the test runner, so
// subprocess-executor integration tests exercise the real spawn path.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvMarker) == "1" {
		if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "energybench:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestWorkerTrialRoundTrip drives the worker subcommand in-process: a
// serialized trial on stdin must come back as a measured envelope with the
// kernel grafted from the catalog.
func TestWorkerTrialRoundTrip(t *testing.T) {
	trialJSON := `{"seq":0,"spec":{"name":"int-alu","component":"int-alu","iters":1000,"unroll":8},
		"threads":1,"placement":"none","iters":1000,"warmup":0,"min_reps":2,"max_reps":2}`
	var stdout, stderr bytes.Buffer
	err := cmdWorkerTrial(context.Background(), []string{"--meter=mock", "--mock-watts=10"},
		strings.NewReader(trialJSON), &stdout, &stderr)
	if err != nil {
		t.Fatalf("worker-trial failed: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{`"v":1`, `"spec":"int-alu"`, `"meter":"mock"`} {
		if !strings.Contains(out, want) {
			t.Errorf("envelope %q missing %q", out, want)
		}
	}
}

// TestWorkerTrialErrorsThroughEnvelope: failures must reach stdout as a
// structured envelope (the parent's only reliable channel), not just exit 1.
func TestWorkerTrialErrorsThroughEnvelope(t *testing.T) {
	cases := []struct {
		name, stdin, wantErr string
	}{
		{"garbage stdin", "not json", "decoding trial"},
		{"unknown spec", `{"spec":{"name":"no-such-kernel"},"threads":1,"placement":"none","min_reps":1,"max_reps":1}`, "no-such-kernel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := cmdWorkerTrial(context.Background(), []string{"--meter=mock"},
				strings.NewReader(tc.stdin), &stdout, &stderr)
			if err == nil {
				t.Fatal("want an error")
			}
			if !strings.Contains(stdout.String(), `"error"`) || !strings.Contains(stdout.String(), tc.wantErr) {
				t.Errorf("envelope %q should carry an error mentioning %q", stdout.String(), tc.wantErr)
			}
		})
	}
}

// TestSubprocessParallelMatchesSerialKeys is the acceptance-criteria test:
// a mock-meter campaign run with --parallel 4 under the subprocess executor
// must produce exactly the same set of store configuration keys as the
// serial in-process run of the same space.
func TestSubprocessParallelMatchesSerialKeys(t *testing.T) {
	dir := t.TempDir()
	serialStore := filepath.Join(dir, "serial.jsonl")
	parallelStore := filepath.Join(dir, "parallel.jsonl")

	spaceArgs := []string{
		"--specs=int-alu,fp-mac", "--corun=int-alu+fp-mac",
		"--threads=1,2", "--reps=1", "--warmup=0", "--iter-scale=0.01",
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"run", "--meter=mock", "--store=" + serialStore}, spaceArgs...)
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("serial run failed: %v\nstderr: %s", err, stderr.String())
	}

	campaignYAML := fmt.Sprintf(`
name: parity
meter: mock
executor: subprocess
parallel: 4
store: %s
spaces:
  - specs: [int-alu, fp-mac]
    corun: [int-alu+fp-mac]
    threads: [1, 2]
    reps: 1
    warmup: 0
    iter_scale: 0.01
`, parallelStore)
	campaignPath := filepath.Join(dir, "parity.yaml")
	if err := os.WriteFile(campaignPath, []byte(campaignYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("campaign run failed: %v\nstderr: %s", err, stderr.String())
	}

	serialKeys, err := store.Keys(serialStore)
	if err != nil {
		t.Fatal(err)
	}
	parallelKeys, err := store.Keys(parallelStore)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialKeys) == 0 {
		t.Fatal("serial run stored nothing")
	}
	if len(serialKeys) != len(parallelKeys) {
		t.Errorf("serial stored %d keys, parallel campaign stored %d", len(serialKeys), len(parallelKeys))
	}
	for k := range serialKeys {
		if !parallelKeys[k] {
			t.Errorf("key %q present in serial store but missing from parallel campaign store", k)
		}
	}
}

// TestCampaignResumeSkipsStoredTrials: a second campaign run with resume
// enabled must skip everything the first run stored.
func TestCampaignResumeSkipsStoredTrials(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "resume.jsonl")
	campaignYAML := fmt.Sprintf(`
name: resumable
meter: mock
executor: subprocess
parallel: 2
store: %s
resume: true
spaces:
  - specs: [int-alu]
    threads: [1, 2]
    reps: 1
    warmup: 0
    iter_scale: 0.01
`, storePath)
	campaignPath := filepath.Join(dir, "resumable.yaml")
	if err := os.WriteFile(campaignPath, []byte(campaignYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("first campaign run failed: %v\nstderr: %s", err, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), []string{"run", "--campaign=" + campaignPath}, &stdout, &stderr); err != nil {
		t.Fatalf("second campaign run failed: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipped 2 already-stored trials, 0 to run") {
		t.Errorf("second run should have skipped both trials; stderr: %s", stderr.String())
	}
}

// TestRunFlagValidationFailsFast: invalid executor/parallelism combinations
// must error out before any trial runs instead of silently serializing.
func TestRunFlagValidationFailsFast(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"parallel with inprocess", []string{"run", "--parallel=4"}, "requires the subprocess executor"},
		{"parallel zero", []string{"run", "--parallel=0", "--executor=subprocess"}, "at least 1"},
		{"unknown executor", []string{"run", "--executor=quantum"}, "unknown executor"},
		{"timeout with inprocess", []string{"run", "--trial-timeout=5s"}, "requires the subprocess executor"},
		{"campaign with space flags", []string{"run", "--campaign=x.yaml", "--specs=int-alu"}, "exclusive"},
		{"campaign with meter flag", []string{"run", "--campaign=x.yaml", "--meter=mock"}, "exclusive"},
		{"missing campaign file", []string{"run", "--campaign=/does/not/exist.yaml"}, "exist"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run %v succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestCampaignDryRun: --dry-run composes with --campaign and prints the
// combined plan without spawning a single worker.
func TestCampaignDryRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"run", "--campaign=../../testdata/smoke.yaml", "--dry-run"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("dry run failed: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	// smoke.yaml: solo 3 specs × 2 threads + corun 1 pair × 2 threads = 8.
	if !strings.Contains(out, `"trials": 8`) {
		t.Errorf("dry-run plan should count 8 trials; output: %.400s", out)
	}
	if !strings.Contains(stderr.String(), `campaign "ci-smoke"`) {
		t.Errorf("stderr should announce the campaign; got: %s", stderr.String())
	}
}

// TestWorkerTrialCountersRoundTrip: a trial carrying a counter spec must
// come back through the worker envelope with the measured activity vector
// attached — the counters half of the subprocess protocol.
func TestWorkerTrialCountersRoundTrip(t *testing.T) {
	trialJSON := `{"seq":0,"spec":{"name":"int-alu","component":"int-alu","iters":20000,"unroll":8},
		"threads":2,"placement":"none","iters":20000,"warmup":0,"min_reps":2,"max_reps":2,
		"counters":{"backend":"mock","events":["instructions","llc-misses"]}}`
	var stdout, stderr bytes.Buffer
	err := cmdWorkerTrial(context.Background(), []string{"--meter=mock", "--mock-watts=10"},
		strings.NewReader(trialJSON), &stdout, &stderr)
	if err != nil {
		t.Fatalf("worker-trial failed: %v\nstderr: %s", err, stderr.String())
	}
	var env harness.WorkerEnvelope
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v\n%s", err, stdout.String())
	}
	if env.Result == nil {
		t.Fatalf("envelope has no result: %s", stdout.String())
	}
	c := env.Result.Counters
	if c == nil {
		t.Fatal("counters did not survive the worker envelope")
	}
	if c.Backend != "mock" || len(c.Events) != 2 || len(c.Threads) != 2 || c.Reps != 2 {
		t.Errorf("counters = %+v, want mock backend, 2 events, 2 threads, 2 reps", c)
	}
	planted := perf.MockRate("int-alu", "instructions")
	if got := c.Events[0].RateHzMean; math.Abs(got-2*planted) > 2*planted*0.05 {
		t.Errorf("instruction rate = %v, want ~%v (2 threads × planted rate)", got, 2*planted)
	}
}

// TestSubprocessCounterPipeline is the acceptance-criteria test for the
// counter subsystem: run --counters under the subprocess executor (real
// re-exec'd worker children), then analyze --activity=counters over the
// store — the whole measured-activity pipeline end to end on the mock
// backends.
func TestSubprocessCounterPipeline(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "counters.jsonl")
	var stdout, stderr bytes.Buffer
	args := []string{"run", "--meter=mock", "--executor=subprocess",
		"--specs=int-alu,chase-dram", "--threads=1,2", "--reps=2", "--warmup=0",
		"--iter-scale=0.02", "--counters=default", "--counter-backend=mock",
		"--store=" + db}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("counter run failed: %v\nstderr: %s", err, stderr.String())
	}

	recs, err := store.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("stored %d results, want 4", len(recs))
	}
	for _, rec := range recs {
		if rec.V != store.SchemaVersion {
			t.Errorf("record schema v%d, want v%d", rec.V, store.SchemaVersion)
		}
		c := rec.Result.Counters
		if c == nil {
			t.Fatalf("stored result %s has no counters", rec.Key)
		}
		if len(c.Events) != len(perf.DefaultEvents()) {
			t.Errorf("result %s counted %d events, want the %d defaults", rec.Key, len(c.Events), len(perf.DefaultEvents()))
		}
		if len(c.Threads) != rec.Result.Threads {
			t.Errorf("result %s has %d thread entries, want %d", rec.Key, len(c.Threads), rec.Result.Threads)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), []string{"analyze", "--db=" + db, "--activity=counters"}, &stdout, &stderr); err != nil {
		t.Fatalf("analyze --activity=counters failed: %v\nstderr: %s", err, stderr.String())
	}
	var doc struct {
		Activity     string `json:"activity"`
		Observations int    `json:"observations"`
		Fit          *struct {
			CoeffW map[string]float64 `json:"coeff_w_per_thread"`
		} `json:"fit"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Activity != "counters" || doc.Observations != 4 {
		t.Errorf("activity/observations = %q/%d, want counters/4", doc.Activity, doc.Observations)
	}
	if doc.Fit == nil || len(doc.Fit.CoeffW) == 0 {
		t.Errorf("fit has no coefficients: %s", stdout.String())
	}
}

// TestRunCounterFlagValidation: counter flag misuse fails before any trial.
func TestRunCounterFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"backend without counters", []string{"run", "--counter-backend=mock"}, "requires --counters"},
		{"unknown event", []string{"run", "--counters=tlb-shootdowns"}, "unknown event"},
		{"unknown backend", []string{"run", "--counters=default", "--counter-backend=msr"}, "unknown counter backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run %v succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestWorkerTrialMinimalSpecGraftsCatalogParams: a hand-fed trial naming
// only the spec must pick up the catalog's working set (a chase kernel on an
// empty workspace panics) and run.
func TestWorkerTrialMinimalSpecGraftsCatalogParams(t *testing.T) {
	trialJSON := `{"spec":{"name":"chase-dram"},"threads":1,"placement":"none","iters":2000,"min_reps":1,"max_reps":1}`
	var stdout, stderr bytes.Buffer
	err := cmdWorkerTrial(context.Background(), []string{"--meter=mock"},
		strings.NewReader(trialJSON), &stdout, &stderr)
	if err != nil {
		t.Fatalf("worker-trial failed: %v\nstderr: %s", err, stderr.String())
	}
	var env harness.WorkerEnvelope
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil || env.Result == nil {
		t.Fatalf("bad envelope (%v): %s", err, stdout.String())
	}
	if env.Result.Component != "dram" {
		t.Errorf("component = %q, want dram grafted from the catalog", env.Result.Component)
	}
}

// TestWorkerTrialSampleSeriesRoundTrip: a trial carrying a sample interval
// must come back through the worker envelope with per-rep time-resolved
// series intact — the subprocess executor transports them unchanged.
func TestWorkerTrialSampleSeriesRoundTrip(t *testing.T) {
	trialJSON := `{"seq":0,"spec":{"name":"int-alu","component":"int-alu","iters":400000,"unroll":8},
		"threads":1,"placement":"none","iters":400000,"warmup":0,"min_reps":2,"max_reps":2,
		"sample_interval_ns":5000000}`
	var stdout, stderr bytes.Buffer
	err := cmdWorkerTrial(context.Background(), []string{"--meter=mock", "--mock-watts=30", "--mock-schedule=0.02:10"},
		strings.NewReader(trialJSON), &stdout, &stderr)
	if err != nil {
		t.Fatalf("worker-trial failed: %v\nstderr: %s", err, stderr.String())
	}
	var env harness.WorkerEnvelope
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.Error != "" || env.Result == nil {
		t.Fatalf("envelope = %+v, want a result", env)
	}
	res := env.Result
	if res.SampleInterval != 5*time.Millisecond {
		t.Errorf("SampleInterval = %v, want 5ms", res.SampleInterval)
	}
	if len(res.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Series == nil {
			t.Fatalf("sample %d lost its series crossing the envelope", i)
		}
		if s.Series.IntervalS != 0.005 {
			t.Errorf("sample %d IntervalS = %v, want 0.005", i, s.Series.IntervalS)
		}
		if len(s.Series.Points) < 1 {
			t.Errorf("sample %d series is empty", i)
		}
	}
}
