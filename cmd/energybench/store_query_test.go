package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"energybench/internal/store"
)

// legacyListing renders records the way the pre-query CLI did: a full
// store.Load, in-memory Filter.Match, and the same JSON encoder.
func legacyListing(t *testing.T, db string, f store.Filter) []byte {
	t.Helper()
	recs, err := store.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	var out []store.Record
	for _, rec := range recs {
		if f.Match(rec.Result) {
			out = append(out, rec)
		}
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreQueryMatchesLegacyLoad is the compatibility golden: `store query`
// over the checked-in v1 single-file store must emit byte-identical output to
// the legacy full-Load listing, for the unfiltered view, the legacy filter
// spellings, and the new --where form.
func TestStoreQueryMatchesLegacyLoad(t *testing.T) {
	const db = "testdata/store.jsonl"
	cases := []struct {
		name string
		args []string
		f    store.Filter
	}{
		{"all", nil, store.Filter{}},
		{"legacy-spec", []string{"--specs=int-alu"}, store.Filter{Specs: []string{"int-alu"}}},
		{"where-spec", []string{"--where", "spec=int-alu"}, store.Filter{Specs: []string{"int-alu"}}},
		{"where-threads", []string{"--where", "threads=2"}, store.Filter{Threads: []int{2}}},
		{"where-meter", []string{"--where", "meter=synthetic"}, store.Filter{Meters: []string{"synthetic"}}},
		{"where-multi", []string{"--where", "spec=int-alu,threads=1"},
			store.Filter{Specs: []string{"int-alu"}, Threads: []int{1}}},
		{"where-miss", []string{"--where", "spec=no-such-kernel"}, store.Filter{Specs: []string{"no-such-kernel"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := legacyListing(t, db, tc.f)
			got := runOK(t, append([]string{"store", "query", "--db=" + db}, tc.args...)...)
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("store query diverged from the legacy listing:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
			}
			// The legacy flag-driven `store` spelling must agree as well.
			if tc.name != "where-spec" && tc.name != "where-threads" &&
				tc.name != "where-meter" && tc.name != "where-multi" && tc.name != "where-miss" {
				legacy := runOK(t, append([]string{"store", "--db=" + db}, tc.args...)...)
				if !bytes.Equal(legacy.Bytes(), want) {
					t.Errorf("legacy store listing diverged:\ngot:\n%s\nwant:\n%s", legacy.Bytes(), want)
				}
			}
		})
	}
}

func TestStoreQueryWhereErrors(t *testing.T) {
	for _, args := range [][]string{
		{"store", "query"}, // no --db
		{"store", "query", "--db=testdata/store.jsonl", "--where", "spec"}, // no '='
		{"store", "query", "--db=testdata/store.jsonl", "--where", "flavor=mint"},
		{"store", "query", "--db=testdata/store.jsonl", "--where", "threads=zero"},
		{"store", "query", "--db=testdata/store.jsonl", "--where", "threads=-1"},
		{"store", "query", "--db=testdata/store.jsonl", "--where", "placement=diagonal"},
		{"store", "query", "--db=testdata/store.jsonl", "--keys", "--where", "spec=int-alu"},
		{"store", "nonsense"},
		{"store", "compact"},       // no --db
		{"store", "add", "--db=x"}, // no --from
		{"store", "bench"},         // no --db
		{"analyze", "--db=testdata/store.jsonl", "--where", "flavor=mint"},
		{"compare", "--db=testdata/store.jsonl", "--where", "flavor=mint"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error, got nil", args)
		}
	}
}

// resumeLog runs a sweep with --resume and returns the resume line it logs.
func resumeLog(t *testing.T, db string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := []string{"run", "--specs=int-alu,chase-l1", "--threads=1,2", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store=" + db, "--resume"}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "resume:") {
			return line
		}
	}
	t.Fatalf("no resume line in stderr: %s", stderr.String())
	return ""
}

// TestResumeKeySetSurvivesShardMigration is the second compatibility golden:
// a sweep resumed against a single-file store must see the identical key set
// after `store compact --shard` migrates it — zero trials to re-run, and
// `store query --keys` byte-identical across the migration.
func TestResumeKeySetSurvivesShardMigration(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	runOK(t, "run", "--specs=int-alu,chase-l1", "--threads=1,2", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store="+db)

	if line := resumeLog(t, db); !strings.Contains(line, "skipped 4") || !strings.Contains(line, "0 to run") {
		t.Fatalf("pre-migration resume = %q, want all 4 trials skipped", line)
	}
	keysBefore := runOK(t, "store", "query", "--db="+db, "--keys")

	var compacted struct {
		Kept     int  `json:"kept"`
		Sharded  bool `json:"sharded"`
		Segments int  `json:"segments"`
	}
	out := runOK(t, "store", "compact", "--db="+db, "--shard")
	if err := json.Unmarshal(out.Bytes(), &compacted); err != nil {
		t.Fatal(err)
	}
	if compacted.Kept != 4 || !compacted.Sharded || compacted.Segments < 1 {
		t.Fatalf("compact --shard = %+v, want 4 records in a sharded store", compacted)
	}
	if fi, err := os.Stat(db); err != nil || !fi.IsDir() {
		t.Fatalf("store is not a directory after --shard: %v %v", fi, err)
	}

	if line := resumeLog(t, db); !strings.Contains(line, "skipped 4") || !strings.Contains(line, "0 to run") {
		t.Errorf("post-migration resume = %q, want all 4 trials skipped", line)
	}
	keysAfter := runOK(t, "store", "query", "--db="+db, "--keys")
	if !bytes.Equal(keysBefore.Bytes(), keysAfter.Bytes()) {
		t.Errorf("migration changed the resume key set:\nbefore:\n%s\nafter:\n%s", keysBefore.Bytes(), keysAfter.Bytes())
	}
}

// TestRunShardedStoreAnalyze drives the full pipeline against a sharded
// store: run writes segments directly, resume reads the sidecar index, and
// analyze consumes the streaming query.
func TestRunShardedStoreAnalyze(t *testing.T) {
	db := filepath.Join(t.TempDir(), "results-store")
	runOK(t, "run", "--specs=int-alu,chase-l1", "--threads=1,2", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store="+db)
	if _, err := os.Stat(filepath.Join(db, "MANIFEST.json")); err != nil {
		t.Fatalf("run --store=<dir> did not create a sharded store: %v", err)
	}

	if line := resumeLog(t, db); !strings.Contains(line, "0 to run") {
		t.Errorf("sharded resume = %q, want nothing to run", line)
	}

	var doc struct {
		Observations int `json:"observations"`
	}
	out := runOK(t, "analyze", "--db="+db, "--where", "spec=int-alu,spec=chase-l1")
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Observations != 4 {
		t.Errorf("analyze over the sharded store saw %d observations, want 4", doc.Observations)
	}
}

// TestStoreBenchSmall exercises the scale-smoke command end to end at a size
// cheap enough for the unit suite; its internal assertions (dedup counts,
// last-wins values, key stability across compaction) do the heavy lifting.
func TestStoreBenchSmall(t *testing.T) {
	db := filepath.Join(t.TempDir(), "bench-store")
	out := runOK(t, "store", "bench", "--db="+db, "--records=800", "--batch=64")
	var doc struct {
		Records     int  `json:"records"`
		UniqueKeys  int  `json:"unique_keys"`
		Sharded     bool `json:"sharded"`
		CompactKept int  `json:"compact_kept"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Sharded || doc.Records != 800 || doc.UniqueKeys != 200 || doc.CompactKept != 200 {
		t.Errorf("store bench doc = %+v, want sharded, 800 records, 200 unique", doc)
	}
	// Refuses to clobber an existing path.
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"store", "bench", "--db=" + db, "--records=10"}, &stdout, &stderr); err == nil {
		t.Error("store bench over an existing path: want error, got nil")
	}
}
