package main

import (
	"reflect"
	"testing"

	"energybench/internal/store"
)

func TestApplyWhere(t *testing.T) {
	tests := []struct {
		name    string
		clause  string
		want    store.Filter
		wantErr bool
	}{
		{
			name:   "plain",
			clause: "spec=chase-l1",
			want:   store.Filter{Specs: []string{"chase-l1"}},
		},
		{
			name: "spaces-around-equals",
			// Regression: the value used to keep its leading space and
			// silently match zero records.
			clause: "spec = chase-l1",
			want:   store.Filter{Specs: []string{"chase-l1"}},
		},
		{
			name:   "spaces-everywhere",
			clause: " spec = chase-l1 , threads = 2 ",
			want:   store.Filter{Specs: []string{"chase-l1"}, Threads: []int{2}},
		},
		{
			name:   "multi-field",
			clause: "spec=int-alu,placement=spread,meter=mock,key=abc",
			want: store.Filter{
				Specs:      []string{"int-alu"},
				Placements: []string{"spread"},
				Meters:     []string{"mock"},
				Keys:       []string{"abc"},
			},
		},
		{name: "empty-value", clause: "spec=", wantErr: true},
		{name: "whitespace-value", clause: "spec=   ", wantErr: true},
		{name: "no-equals", clause: "spec", wantErr: true},
		{name: "unknown-field", clause: "bogus=1", wantErr: true},
		{name: "bad-threads", clause: "threads=zero", wantErr: true},
		{name: "padded-threads", clause: "threads= 4", want: store.Filter{Threads: []int{4}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var f store.Filter
			err := applyWhere(&f, tc.clause)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("applyWhere(%q) succeeded, want error", tc.clause)
				}
				return
			}
			if err != nil {
				t.Fatalf("applyWhere(%q): %v", tc.clause, err)
			}
			if !reflect.DeepEqual(f, tc.want) {
				t.Errorf("applyWhere(%q) = %+v, want %+v", tc.clause, f, tc.want)
			}
		})
	}
}
