package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"energybench/internal/model"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runOK(t *testing.T, args ...string) *bytes.Buffer {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v) failed: %v\nstderr: %s", args, err, stderr.String())
	}
	return &stdout
}

func checkGolden(t *testing.T, got []byte, goldenPath string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run 'go test ./cmd/energybench -run %s -update' to create it)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output does not match %s:\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
	}
}

// TestAnalyzeGolden fits the checked-in synthetic store, whose powers follow
// P = 10 + 2·intalu + 5·dram exactly, and freezes the full analyze output.
func TestAnalyzeGolden(t *testing.T) {
	out := runOK(t, "analyze", "--db=testdata/store.jsonl")
	checkGolden(t, out.Bytes(), filepath.Join("testdata", "analyze.golden.json"))

	var doc struct {
		Fit struct {
			PStaticW float64            `json:"p_static_w"`
			CoeffW   map[string]float64 `json:"coeff_w_per_thread"`
			R2       float64            `json:"r2"`
		} `json:"fit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doc.Fit.PStaticW-10) > 1e-6 {
		t.Errorf("P_static = %v, want 10 (planted)", doc.Fit.PStaticW)
	}
	if math.Abs(doc.Fit.CoeffW["int-alu"]-2) > 1e-6 || math.Abs(doc.Fit.CoeffW["dram"]-5) > 1e-6 {
		t.Errorf("coefficients = %v, want int-alu:2 dram:5 (planted)", doc.Fit.CoeffW)
	}
	if doc.Fit.R2 < 1-1e-9 {
		t.Errorf("R² = %v, want 1 for noiseless synthetic data", doc.Fit.R2)
	}
}

func TestCompareGolden(t *testing.T) {
	out := runOK(t, "compare", "--db=testdata/store.jsonl")
	checkGolden(t, out.Bytes(), filepath.Join("testdata", "compare.golden.json"))

	var infs []model.Interference
	if err := json.Unmarshal(out.Bytes(), &infs); err != nil {
		t.Fatal(err)
	}
	if len(infs) != 1 {
		t.Fatalf("got %d interference entries, want 1", len(infs))
	}
	if math.Abs(infs[0].SlowdownA-1.2) > 1e-9 || math.Abs(infs[0].SlowdownB-1.25) > 1e-9 {
		t.Errorf("slowdowns = %v/%v, want 1.2/1.25", infs[0].SlowdownA, infs[0].SlowdownB)
	}
	if math.Abs(infs[0].ExcessEnergyJ-0.5) > 1e-9 {
		t.Errorf("excess energy = %v, want 0.5", infs[0].ExcessEnergyJ)
	}
}

// TestRunStoreAnalyzePipeline is the acceptance-criteria test: a mock-meter
// run piped through `store --add` and then `analyze` must recover the mock's
// constant power as P_static within 1%, with near-zero per-component
// coefficients (a constant-power machine has no dynamic component).
func TestRunStoreAnalyzePipeline(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.jsonl")
	runJSON := filepath.Join(dir, "run.json")

	const watts = 42.0
	out := runOK(t, "run",
		"--meter=mock",
		"--specs=int-alu,chase-l1",
		"--threads=1,2",
		"--reps=2", "--warmup=1",
		"--iter-scale=0.5",
	)
	if err := os.WriteFile(runJSON, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var added struct {
		Added int `json:"added"`
	}
	addOut := runOK(t, "store", "--db="+db, "--add="+runJSON)
	if err := json.Unmarshal(addOut.Bytes(), &added); err != nil {
		t.Fatal(err)
	}
	if added.Added != 4 { // 2 specs × 2 thread counts
		t.Fatalf("stored %d results, want 4", added.Added)
	}

	var doc struct {
		Observations int `json:"observations"`
		Fit          struct {
			PStaticW float64            `json:"p_static_w"`
			CoeffW   map[string]float64 `json:"coeff_w_per_thread"`
		} `json:"fit"`
	}
	anOut := runOK(t, "analyze", "--db="+db)
	if err := json.Unmarshal(anOut.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Observations != 4 {
		t.Errorf("analyzed %d observations, want 4", doc.Observations)
	}
	if math.Abs(doc.Fit.PStaticW-watts) > 0.01*watts {
		t.Errorf("P_static = %v, want %v ± 1%%", doc.Fit.PStaticW, watts)
	}
	for comp, a := range doc.Fit.CoeffW {
		if math.Abs(a) > 0.05*watts {
			t.Errorf("coeff[%s] = %v, want ~0 for a constant-power meter", comp, a)
		}
	}
}

// TestCoRunComparePipeline is the co-run acceptance test: a sweep with a
// --corun pair plus solo baselines, stored and compared, must report
// interference metrics for the pair.
func TestCoRunComparePipeline(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	runOK(t, "run",
		"--meter=mock",
		"--specs=int-alu,chase-l1",
		"--corun=int-alu+chase-l1",
		"--threads=1",
		"--reps=2", "--warmup=0",
		"--iter-scale=0.2",
		"--store="+db,
	)
	var infs []model.Interference
	out := runOK(t, "compare", "--db="+db)
	if err := json.Unmarshal(out.Bytes(), &infs); err != nil {
		t.Fatal(err)
	}
	if len(infs) != 1 {
		t.Fatalf("got %d interference entries, want 1", len(infs))
	}
	inf := infs[0]
	if inf.SpecA != "int-alu" || inf.SpecB != "chase-l1" {
		t.Errorf("pair = %s+%s, want int-alu+chase-l1", inf.SpecA, inf.SpecB)
	}
	if inf.SlowdownA <= 0 || inf.SlowdownB <= 0 {
		t.Errorf("slowdowns = %v/%v, want both positive", inf.SlowdownA, inf.SlowdownB)
	}
	if inf.CorunEnergyJ <= 0 || inf.SoloEnergyJ <= 0 {
		t.Errorf("energies = %v/%v, want both positive", inf.CorunEnergyJ, inf.SoloEnergyJ)
	}
	if got := inf.CorunEnergyJ - inf.SoloEnergyJ; math.Abs(got-inf.ExcessEnergyJ) > 1e-9 {
		t.Errorf("excess energy %v inconsistent with corun−solo = %v", inf.ExcessEnergyJ, got)
	}
}

func TestStoreSubcommandListFilterCompact(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	runOK(t, "run", "--specs=int-alu", "--threads=1,2", "--reps=1", "--warmup=0",
		"--iter-scale=0.01", "--store="+db)
	// Re-run one configuration: the store accumulates a duplicate that list
	// dedups and compact physically removes.
	runOK(t, "run", "--specs=int-alu", "--threads=1", "--reps=1", "--warmup=0",
		"--iter-scale=0.01", "--store="+db)

	var listed []struct {
		Key    string `json:"key"`
		Result struct {
			Threads int `json:"threads"`
		} `json:"result"`
	}
	out := runOK(t, "store", "--db="+db)
	if err := json.Unmarshal(out.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d records, want 2 after dedup", len(listed))
	}

	out = runOK(t, "store", "--db="+db, "--threads=2")
	listed = nil
	if err := json.Unmarshal(out.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].Result.Threads != 2 {
		t.Fatalf("filtered listing = %+v, want only the t2 record", listed)
	}

	var compacted struct {
		Kept int `json:"kept"`
	}
	out = runOK(t, "store", "--db="+db, "--compact")
	if err := json.Unmarshal(out.Bytes(), &compacted); err != nil {
		t.Fatal(err)
	}
	if compacted.Kept != 2 {
		t.Errorf("compact kept %d, want 2", compacted.Kept)
	}
}

func TestAnalysisSubcommandErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing.jsonl")
	for _, args := range [][]string{
		{"store"},                      // no --db
		{"analyze"},                    // no --db
		{"compare"},                    // no --db
		{"analyze", "--db=" + missing}, // store does not exist
		{"compare", "--db=" + missing},
		{"store", "--db=" + missing, "--add=" + missing}, // unreadable input
		{"analyze", "--db=testdata/store.jsonl", "--placement=diagonal"},
		{"analyze", "--db=testdata/store.jsonl", "--threads=0"},
		{"analyze", "--db=testdata/store.jsonl", "--specs=int-alu", "--threads=1"}, // underdetermined fit
		{"compare", "--db=testdata/store.jsonl", "--specs=int-alu"},                // no complete co-run baselines
	} {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error, got nil", args)
		}
	}
}

func TestParseIntList(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"2,1,2,1,2", []int{2, 1}, false}, // duplicates dropped, order kept
		{"0", nil, true},
		{"-3", nil, true},
		{"1,0,2", nil, true},
		{"1,-1", nil, true},
		{"", nil, true},
		{"x", nil, true},
		{"1,,2", []int{1, 2}, false},
	}
	for _, tc := range tests {
		got, err := parseIntList(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseIntList(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseIntList(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseIntList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestAnalyzeCountersGolden fits the checked-in counter store, whose powers
// follow P = 10 + 2·act(int-alu) + 5·act(dram) with activities planted as
// measured event rates (activity = rate / 1e9), and freezes the output. The
// store also holds one v1 record without counters, which the counter-based
// fit must skip and report.
func TestAnalyzeCountersGolden(t *testing.T) {
	out := runOK(t, "analyze", "--db=testdata/store-counters.jsonl", "--activity=counters")
	checkGolden(t, out.Bytes(), filepath.Join("testdata", "analyze-counters.golden.json"))

	var doc struct {
		Activity          string `json:"activity"`
		Observations      int    `json:"observations"`
		SkippedNoCounters int    `json:"skipped_no_counters"`
		Fit               struct {
			PStaticW float64            `json:"p_static_w"`
			CoeffW   map[string]float64 `json:"coeff_w_per_thread"`
			R2       float64            `json:"r2"`
		} `json:"fit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Activity != "counters" {
		t.Errorf("activity = %q, want counters", doc.Activity)
	}
	if doc.Observations != 4 || doc.SkippedNoCounters != 1 {
		t.Errorf("observations/skipped = %d/%d, want 4/1", doc.Observations, doc.SkippedNoCounters)
	}
	if math.Abs(doc.Fit.PStaticW-10) > 1e-6 {
		t.Errorf("P_static = %v, want 10 (planted)", doc.Fit.PStaticW)
	}
	if math.Abs(doc.Fit.CoeffW["int-alu"]-2) > 1e-6 || math.Abs(doc.Fit.CoeffW["dram"]-5) > 1e-6 {
		t.Errorf("coefficients = %v, want int-alu:2 dram:5 (planted per GEvent/s)", doc.Fit.CoeffW)
	}
	if doc.Fit.R2 < 1-1e-9 {
		t.Errorf("R² = %v, want 1 for noiseless planted data", doc.Fit.R2)
	}
}

// TestAnalyzeActivityFlagErrors: a counter fit over a store with no counters
// must fail with guidance, and unknown activity sources are rejected.
func TestAnalyzeActivityFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"analyze", "--db=testdata/store.jsonl", "--activity=counters"},
		{"analyze", "--db=testdata/store.jsonl", "--activity=vibes"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v): want error, got nil", args)
		}
	}
}
