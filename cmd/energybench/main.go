// Command energybench sweeps a micro-benchmark exploration space
// (kernels × thread counts × placements, solo or co-run pairs), measures
// energy per configuration, persists results to a result store (single JSONL
// file or sharded segment directory), and derives the paper's analyses: a
// fitted linear power model and co-run interference.
//
//	energybench list
//	energybench run --meter=mock --reps=3 --threads=1,2 --store=results.jsonl
//	energybench store query --db=results.jsonl --where spec=daxpy
//	energybench store compact --db=results.jsonl --shard
//	energybench analyze --db=results.jsonl
//	energybench compare --db=results.jsonl
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"energybench/internal/adapt"
	"energybench/internal/bench"
	"energybench/internal/campaign"
	"energybench/internal/extwork"
	"energybench/internal/harness"
	"energybench/internal/model"
	"energybench/internal/perf"
	"energybench/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "energybench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList(args[1:], stdout, stderr)
	case "run":
		return cmdRun(ctx, args[1:], stdout, stderr)
	case "worker-trial":
		return cmdWorkerTrial(ctx, args[1:], os.Stdin, stdout, stderr)
	case "serve":
		return cmdServe(ctx, args[1:], stdout, stderr)
	case "agent":
		return cmdAgent(ctx, args[1:], stdout, stderr)
	case "submit":
		return cmdSubmit(ctx, args[1:], stdout, stderr)
	case "store":
		return cmdStore(args[1:], stdout, stderr)
	case "analyze":
		return cmdAnalyze(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  energybench list [flags]         print the benchmark catalog as JSON; with
                                   space flags, print the planned trial count instead
  energybench run [flags]          sweep the exploration space, print JSON results
  energybench store query [flags]    stream matching records (or --keys) out of a store
  energybench store add [flags]      append results to a store ('run' JSON, a
                                     record array, or an NDJSON record stream)
  energybench store compact [flags]  rewrite a store deduplicated; --shard migrates
                                     a single file to the sharded segment layout
  energybench store bench [flags]    synthesize a corpus, measure and verify the store
  energybench store [flags]        legacy flag form of the above (--add/--compact/filters)
  energybench analyze [flags]      fit the linear power model over a store
  energybench compare [flags]      report co-run interference vs solo baselines
  energybench serve [flags]        run the fleet coordinator daemon (HTTP API)
  energybench agent [flags]        run a fleet agent executing leased trial batches
  energybench submit [flags]       submit a campaign file to a coordinator

A store path is either a single JSONL file or a sharded segment-store
directory; every subcommand auto-detects the layout. 'run --store' creates a
single file for .jsonl/.json paths and a sharded store otherwise.

space flags (run, and list for sizing a sweep):
  --specs=a,b         comma-separated spec names (default: full catalog)
  --corun=a+b,c+d     co-run pairs: each runs both specs concurrently,
                      --threads counts threads per spec
  --threads=1,2       comma-separated thread counts (default 1,2)
  --placement=p,q     comma-separated placements: none|compact|scatter (default none)
  --reps=N            fixed repetitions per configuration (default 3)
  --min-reps=N        adaptive: minimum measured repetitions (default: --reps)
  --max-reps=N        adaptive: repetition hard cap; enables early stop when
                      the energy CV reaches --cv-target (default: fixed reps)
  --cv-target=F       energy-CV convergence target for early stop (default 0.05)
  --warmup=N          discarded warm-up repetitions (default 1)
  --iter-scale=F      scale every spec's default iteration count (default 1.0)
  --max-cv=F          CV threshold for outlier rejection, 0 disables (default 0.2)
  --sample-interval=D poll the energy meter (and counter sessions) on this Go
                      duration during each measured rep, storing a per-rep
                      time-resolved series on every sample (0 disables)

run flags:
  --campaign=FILE     run a declarative campaign file (YAML or JSON) naming
                      spaces, executor, parallelism, and store — plus
                      'workloads:' entries that run real external programs
                      as metered regions (see testdata/extern.yaml);
                      exclusive with the space/meter/store flags (--dry-run
                      and --progress still apply)
  --meter=mock|rapl   energy backend (default mock; rapl needs /sys/class/powercap read access)
  --mock-watts=N      constant power the mock meter models (default 42)
  --mock-schedule=S   piecewise-constant mock power schedule 'atS:watts,...'
                      (e.g. '0.05:60,0.1:20'); before the first boundary the
                      draw is --mock-watts; requires --meter=mock
  --mock-model=S      plant a linear mock power model 'component:watts,...'
                      added per active thread on top of --mock-watts (the
                      intercept), giving the mock configuration-dependent
                      power; requires --meter=mock, exclusive with
                      --mock-schedule
  --mock-noise=F      deterministic per-configuration noise amplitude (watts)
                      on a planted --mock-model, so fits see residual scatter
  --algo=NAME         campaign planning algorithm (default all): 'all' sweeps
                      the grid exhaustively; 'active' runs the adaptive
                      planner, dispatching the trials with the highest
                      expected information gain until every model
                      coefficient's relative standard error is below
                      --target-rse; 'bo' searches for the lowest-EDP
                      configuration by expected improvement. Adaptive runs
                      print a planner report (rounds, trials, final fit) on
                      stdout; results stream to --store
  --batch=N           adaptive: trials dispatched per planning round (default 8)
  --budget=N          adaptive: cap on newly executed trials (default: full grid)
  --target-rse=F      active: convergence target for the worst coefficient's
                      relative standard error (default 0.05)
  --seed=N            adaptive: seed for every random choice the planner
                      makes (default 1); same seed, same trial selections
  --executor=NAME     trial backend: inprocess (default) or subprocess —
                      each trial in a freshly exec'd worker child, so
                      pinning/warmup/metering run in a quiet process and a
                      crashed trial doesn't kill the sweep
  --parallel=N        max concurrently running trials under the core-leasing
                      scheduler (default 1; >1 requires --executor=subprocess)
  --trial-timeout=D   kill a worker child running longer than this Go
                      duration (subprocess executor only; default: no limit)
  --counters=EVENTS   meter hardware activity around every measured region:
                      a comma-separated event list, or 'default' for
                      instructions,cycles,l1d-misses,llc-misses,stalled-backend;
                      scaled counts ride on each result
  --counter-backend=perf|mock
                      activity backend (default perf: Linux perf_event_open,
                      needs perf_event_paranoid <= 2 or CAP_PERFMON; mock
                      plants deterministic per-component rates for CI)
  --store=PATH        also append results to the store at PATH (.jsonl/.json:
                      single file; otherwise a sharded segment directory),
                      flushed per configuration
  --resume            skip trials whose configuration key the --store already
                      holds (logs the skip count; reads only the key index)
  --dry-run           print the planned trials as JSON and exit without running
  --progress          log one line per completed trial to stderr

worker-trial:         internal: run one trial read from stdin and print a
                      result envelope (spawned by --executor=subprocess)

store flags:
  --db=PATH           store file or directory (required)
  --keys              (query) print the sorted configuration-key set instead
                      of records — the resume view; reads only the key index
  --from=FILE         (add) results to append ('-' for stdin): a 'run' JSON
                      array, a 'store query' record array, or an NDJSON
                      record stream (a coordinator's /jobs/{id}/results)
  --shard             (compact) convert a single-file store to the sharded
                      segment layout in place, compacting as it goes
  --records=N         (bench) synthetic corpus size, duplicates included (default 50000)
  --where f=v,...     filter: spec|threads|placement|meter|host|workload|key
                      pairs; repeatable, same-field values OR, distinct
                      fields AND
  --specs, --threads, --placement   legacy spellings of the same filters
  legacy flag form:   --add=FILE appends, --compact rewrites deduplicated,
                      filters alone list matching records

fleet flags (see docs/ARCHITECTURE.md and docs/WIRE.md):
  serve:
  --listen=ADDR       coordinator API address (default 127.0.0.1:7979; :0 for
                      an ephemeral port)
  --data=DIR          coordinator data directory: submitted campaigns, job
                      metadata, and each job's merged store (required)
  --lease-ttl=D       batch lease duration before reclaim + re-dispatch (default 30s)
  --batch=N           max trials per agent lease (default 4)
  --resume            replay existing jobs under --data on startup (default true)
  --addr-file=FILE    write the bound base URL to FILE (for --listen=:0 scripts)
  agent:
  --coordinator=URL   coordinator base URL (required)
  --name=NAME         host name to register as (default: hostname; must be
                      unique across the fleet)
  --max-batch=N       max trials requested per lease (0: coordinator's default)
  --poll=D            idle poll interval when no work is assignable (default 2s)
  --cpus=N            CPU count to advertise (default: detected); trials wider
                      than this are never routed here
  submit:
  --coordinator=URL   coordinator base URL (required)
  --campaign=FILE     campaign file to submit (required); a 'hosts:' list in
                      the file restricts which agents may execute it
  --wait              poll until the job finishes, print the final status JSON
  --analyze           after the job finishes, fetch GET /jobs/{id}/analyze and
                      print the analysis report instead of the raw status
                      (implies --wait)
  --activity=SRC      activity source forwarded to --analyze (nominal|counters)
  --timeout=D         give up waiting after this long (requires --wait)

analyze / compare flags:
  --db=PATH           store file or directory (required)
  --where f=v,...     filter the results used (plus the legacy spellings)
  --activity=nominal|counters   (analyze) derive per-component activity from
                      workload labels × thread counts (nominal, default) or
                      from measured hardware event rates (counters; needs a
                      store written by 'run --counters')
  --phases            (analyze) segment stored time-resolved series into power
                      phases (change-point detection with per-phase error
                      bars) and flag sustained power declines (throttling);
                      needs a store written by 'run --sample-interval'
  --validate          (analyze) compare the fitted model's predictions against
                      stored external-workload measurements (per-workload
                      power/energy error plus aggregate MAPE); fails when the
                      store holds no workload results. Workload sections also
                      appear automatically whenever workload results exist
  --roofline          (analyze) place stored external workloads on the
                      roofline derived from the chase kernels' measured
                      bandwidth ceilings (needs a store with counters)`)
}

// spaceFlags registers the exploration-space flags shared by run and list,
// returning a builder that assembles the Space after fs.Parse.
func spaceFlags(fs *flag.FlagSet) func() (harness.Space, error) {
	var (
		specsFlag = fs.String("specs", "", "comma-separated spec names (default: full catalog)")
		corunFlag = fs.String("corun", "", "comma-separated co-run pairs, each 'specA+specB'")
		threads   = fs.String("threads", "1,2", "comma-separated thread counts")
		placement = fs.String("placement", "none", "comma-separated placements: none|compact|scatter")
		reps      = fs.Int("reps", 3, "fixed repetitions per configuration")
		minReps   = fs.Int("min-reps", 0, "adaptive: minimum measured repetitions (0: use --reps)")
		maxReps   = fs.Int("max-reps", 0, "adaptive: repetition hard cap (0: fixed at the minimum)")
		cvTarget  = fs.Float64("cv-target", 0.05, "energy-CV convergence target for adaptive early stop")
		warmup    = fs.Int("warmup", 1, "discarded warm-up repetitions")
		iterScale = fs.Float64("iter-scale", 1.0, "scale factor applied to every spec's iteration count")
		maxCV     = fs.Float64("max-cv", 0.2, "CV threshold for outlier rejection (0 disables)")
		sampleInt = fs.Duration("sample-interval", 0, "poll the meter on this period during each measured rep, recording a time-resolved series (0 disables)")
	)
	return func() (harness.Space, error) {
		space := harness.Space{
			Reps:           *reps,
			MinReps:        *minReps,
			MaxReps:        *maxReps,
			CVTarget:       *cvTarget,
			Warmup:         *warmup,
			IterScale:      *iterScale,
			MaxCV:          *maxCV,
			SampleInterval: *sampleInt,
		}
		if *iterScale <= 0 {
			return space, fmt.Errorf("--iter-scale must be positive, got %v", *iterScale)
		}
		var err error
		if *specsFlag == "" && *corunFlag == "" {
			space.Specs = bench.Catalog()
		} else if space.Specs, err = campaign.LookupSpecs(splitNonEmpty(*specsFlag)); err != nil {
			return space, err
		}
		if space.Pairs, err = campaign.ParsePairs(splitNonEmpty(*corunFlag)); err != nil {
			return space, fmt.Errorf("--corun: %w", err)
		}
		if space.ThreadCounts, err = parseIntList(*threads); err != nil {
			return space, fmt.Errorf("--threads: %w", err)
		}
		for _, p := range splitNonEmpty(*placement) {
			pl, err := harness.ParsePlacement(p)
			if err != nil {
				return space, err
			}
			space.Placements = append(space.Placements, pl)
		}
		return space, nil
	}
}

// planDoc sizes a planned sweep before it burns hours: the trial count and
// the repetition bounds (plus warm-up work, which costs wall clock too).
type planDoc struct {
	Trials       int             `json:"trials"`
	Skipped      int             `json:"skipped,omitempty"`
	MinTotalReps int             `json:"min_total_reps"`
	MaxTotalReps int             `json:"max_total_reps"`
	WarmupReps   int             `json:"warmup_reps"`
	Plan         []harness.Trial `json:"plan"`
}

func newPlanDoc(trials []harness.Trial, skipped int) planDoc {
	doc := planDoc{Trials: len(trials), Skipped: skipped, Plan: trials}
	for _, t := range trials {
		doc.MinTotalReps += t.MinReps
		doc.MaxTotalReps += t.MaxReps
		doc.WarmupReps += t.Warmup
	}
	return doc
}

// cmdList prints the benchmark catalog; with any space flag set it instead
// performs a planner dry-run and prints the estimated trial count, so users
// can size a sweep without running it.
func cmdList(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	buildSpace := spaceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NFlag() == 0 {
		return writeJSON(stdout, bench.Catalog())
	}
	space, err := buildSpace()
	if err != nil {
		return err
	}
	trials, err := harness.Plan(space)
	if err != nil {
		return err
	}
	return writeJSON(stdout, newPlanDoc(trials, 0))
}

// sweepConfig is everything executeSweep needs, assembled either from the
// run flags or from a campaign file — both routes share one execution path
// so campaigns and flag-driven sweeps can never drift apart.
type sweepConfig struct {
	trials    []harness.Trial
	meterName string
	mockWatts float64
	// mockSchedule is the piecewise-constant mock power schedule in
	// 'atS:watts,...' form; empty for a constant draw.
	mockSchedule string
	// mockModel plants a linear power model ('component:watts,...') on the
	// mock meter, with mockNoise the deterministic per-configuration noise
	// amplitude; both empty/zero for a constant draw.
	mockModel string
	mockNoise float64
	// adapt, when non-nil, replaces the exhaustive sweep with the adaptive
	// planner: stdout gets the planner report instead of the result array
	// (results stream to the store sink).
	adapt     *adapt.Config
	executor  string // campaign.ExecutorInProcess | campaign.ExecutorSubprocess
	parallel  int
	timeout   time.Duration
	storePath string
	resume    bool
	dryRun    bool
	progress  bool
	// counters is the normalized activity-metering spec the trials carry;
	// nil when counters are off. Kept here so the sweep can probe the perf
	// backend once up front instead of failing per trial.
	counters *perf.Spec
}

func cmdRun(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	buildSpace := spaceFlags(fs)
	var (
		campaignPath   = fs.String("campaign", "", "run a declarative campaign file (YAML or JSON)")
		meterName      = fs.String("meter", "mock", "energy backend: mock|rapl")
		mockWatts      = fs.Float64("mock-watts", 42, "constant power modeled by the mock meter")
		mockSchedule   = fs.String("mock-schedule", "", "piecewise-constant mock power schedule 'atS:watts,...' (requires --meter=mock)")
		mockModel      = fs.String("mock-model", "", "planted linear mock power model 'component:watts,...' added per active thread (requires --meter=mock)")
		mockNoise      = fs.Float64("mock-noise", 0, "deterministic per-configuration noise amplitude for a planted mock model (watts)")
		algo           = fs.String("algo", adapt.AlgoAll, "campaign planning algorithm: all (exhaustive) | active (D-optimal model convergence) | bo (expected-improvement EDP search)")
		batch          = fs.Int("batch", 0, "adaptive planner: trials dispatched per round (default 8; requires --algo=active|bo)")
		budget         = fs.Int("budget", 0, "adaptive planner: cap on newly executed trials (default: full grid; requires --algo=active|bo)")
		targetRSE      = fs.Float64("target-rse", 0, "adaptive planner: stop once every coefficient's relative standard error is at or below this (default 0.05; requires --algo=active)")
		seed           = fs.Int64("seed", 0, "adaptive planner: seed for every random choice (default 1; requires --algo=active|bo)")
		executor       = fs.String("executor", campaign.ExecutorInProcess, "trial backend: inprocess|subprocess")
		parallel       = fs.Int("parallel", 1, "max concurrently running trials (requires --executor=subprocess when above 1)")
		timeout        = fs.Duration("trial-timeout", 0, "kill a subprocess worker running longer than this (0: no limit)")
		countersFlag   = fs.String("counters", "", "meter hardware activity: comma-separated event names, or 'default'")
		counterBackend = fs.String("counter-backend", "", "activity backend: perf (default) or mock (requires --counters)")
		storePath      = fs.String("store", "", "append results to the JSONL store at this path, flushed per configuration")
		resume         = fs.Bool("resume", false, "skip trials already present in the --store file")
		dryRun         = fs.Bool("dry-run", false, "print the planned trials as JSON without executing them")
		progress       = fs.Bool("progress", false, "log one line per completed trial to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg sweepConfig
	if *campaignPath != "" {
		// A campaign file owns the whole sweep definition; mixing it with
		// ad-hoc flags would make the checked-in artifact lie about what
		// ran. Only observation flags stay usable.
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "campaign", "dry-run", "progress":
			default:
				conflicting = append(conflicting, "--"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("--campaign is exclusive with %s: the campaign file declares the sweep", strings.Join(conflicting, ", "))
		}
		c, err := campaign.Load(*campaignPath)
		if err != nil {
			return err
		}
		if len(c.Hosts) > 0 {
			return fmt.Errorf("campaign declares hosts (%s): it is fleet-scoped — submit it to a coordinator with 'energybench submit' instead of running it locally", strings.Join(c.Hosts, ", "))
		}
		trials, err := c.Plan()
		if err != nil {
			return err
		}
		ctimeout, err := c.Timeout()
		if err != nil {
			return err
		}
		ccounters, err := c.CounterSpec()
		if err != nil {
			return err
		}
		cfg = sweepConfig{
			trials:    trials,
			meterName: c.Meter,
			mockWatts: *c.MockWatts,
			mockModel: c.MockModel,
			executor:  c.Executor,
			parallel:  *c.Parallel,
			timeout:   ctimeout,
			storePath: c.Store,
			resume:    c.Resume,
			dryRun:    *dryRun,
			progress:  *progress,
			counters:  ccounters,
		}
		if c.MockNoiseW != nil {
			cfg.mockNoise = *c.MockNoiseW
		}
		if ac, ok := c.AdaptConfig(); ok {
			cfg.adapt = &ac
		}
		if c.Name != "" {
			fmt.Fprintf(stderr, "campaign %q: %d planned trials across %d spaces\n", c.Name, len(trials), len(c.Spaces))
		}
	} else {
		if err := campaign.ValidateMeter(*meterName); err != nil {
			return err
		}
		// Fail fast on meter/executor/parallelism combinations that would
		// otherwise silently misbehave (e.g. --parallel > 1 quietly
		// serializing under the in-process executor, or corrupting rapl
		// energies); the same shared check guards campaign files.
		if err := campaign.ValidateExec(*meterName, *executor, *parallel, *timeout); err != nil {
			return err
		}
		// The planner knobs share the campaign-file validator; a flag left at
		// its default counts as unset (nil) there, so e.g. --batch without
		// --algo=active|bo is rejected the same way a campaign file's would be.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		var batchP, budgetP *int
		var rseP *float64
		var seedP *int64
		if set["batch"] {
			batchP = batch
		}
		if set["budget"] {
			budgetP = budget
		}
		if set["target-rse"] {
			rseP = targetRSE
		}
		if set["seed"] {
			seedP = seed
		}
		if err := campaign.ValidatePlanner(*algo, batchP, budgetP, rseP, seedP); err != nil {
			return err
		}
		space, err := buildSpace()
		if err != nil {
			return err
		}
		var counters *perf.Spec
		if *countersFlag != "" {
			spec, err := perf.Spec{Backend: *counterBackend, Events: splitNonEmpty(*countersFlag)}.Normalize()
			if err != nil {
				return err
			}
			counters = &spec
			space.Counters = counters
		} else if *counterBackend != "" {
			return fmt.Errorf("--counter-backend requires --counters (name an event set, or 'default')")
		}
		trials, err := harness.Plan(space)
		if err != nil {
			return err
		}
		cfg = sweepConfig{
			trials:       trials,
			meterName:    *meterName,
			mockWatts:    *mockWatts,
			mockSchedule: *mockSchedule,
			mockModel:    *mockModel,
			mockNoise:    *mockNoise,
			executor:     *executor,
			parallel:     *parallel,
			timeout:      *timeout,
			storePath:    *storePath,
			resume:       *resume,
			dryRun:       *dryRun,
			progress:     *progress,
			counters:     counters,
		}
		if *algo == adapt.AlgoActive || *algo == adapt.AlgoBO {
			cfg.adapt = &adapt.Config{Algo: *algo, Batch: *batch, Budget: *budget, TargetRSE: *targetRSE, Seed: *seed}
		}
	}
	return executeSweep(ctx, cfg, stdout, stderr)
}

func executeSweep(ctx context.Context, cfg sweepConfig, stdout, stderr io.Writer) error {
	trials := cfg.trials
	skipped := 0
	var prior []harness.Result
	if cfg.resume {
		if cfg.storePath == "" {
			return fmt.Errorf("--resume requires --store")
		}
		// Trial keys only need the backend's name, so resume filtering (and
		// its dry run) works without constructing the meter.
		keys, err := store.Keys(cfg.storePath)
		if err != nil {
			return err
		}
		var priorKeys []string
		trials, skipped = harness.FilterTrials(trials, func(t harness.Trial) bool {
			if !keys[t.Key(cfg.meterName)] {
				return false
			}
			priorKeys = append(priorKeys, t.Key(cfg.meterName))
			return true
		})
		fmt.Fprintf(stderr, "resume: skipped %d already-stored trials, %d to run\n", skipped, len(trials))
		if cfg.adapt != nil && len(priorKeys) > 0 {
			// The adaptive planner resumes more than the trial list: the
			// already-stored results of this plan seed its fitted state, so
			// an interrupted campaign continues converging instead of
			// re-spreading from scratch.
			if prior, err = loadPriorResults(cfg.storePath, priorKeys); err != nil {
				return err
			}
		}
	}
	if cfg.dryRun {
		return writeJSON(stdout, newPlanDoc(trials, skipped))
	}

	// Probe the perf backend once up front: a host that refuses
	// perf_event_open (paranoid kernel, non-Linux, missing PMU) should fail
	// with one actionable error before any trial runs, not once per trial.
	if cfg.counters != nil && cfg.counters.Backend == perf.BackendPerf {
		if err := perf.Available(); err != nil {
			return fmt.Errorf("%w (use --counter-backend=mock for a functional run without PMU access)", err)
		}
	}

	var log func(format string, args ...any)
	if cfg.progress {
		log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	// Results stream through the sink pipeline as each trial completes: the
	// JSON array on stdout stays well-formed even if the sweep is
	// interrupted, and the store (when configured) has already flushed every
	// finished configuration, so a SIGINT mid-sweep loses nothing. The
	// store sink comes first — durability before presentation — so a
	// stdout write failure can never drop a measured trial from the store.
	var sinks harness.MultiSink
	var storeSink *store.Sink
	if cfg.storePath != "" {
		storeSink = store.NewSink(cfg.storePath)
		sinks = append(sinks, storeSink)
	}
	if cfg.adapt == nil {
		// An adaptive run prints the planner report on stdout instead of the
		// result array; its results reach the store sink only.
		sinks = append(sinks, harness.NewJSONArraySink(stdout))
	}

	var dispatch adapt.Dispatcher
	if cfg.executor == campaign.ExecutorSubprocess {
		// Probe the meter once up front so a systematically broken backend
		// (e.g. rapl without powercap read access) fails fast, instead of
		// spawning one doomed worker per trial and reporting the same
		// error hundreds of times. The probe instance doubles as the
		// parent-side meter external workloads are measured with: their
		// children are metered from this process, not from a worker.
		m, err := newMeter(cfg.meterName, cfg.mockWatts, cfg.mockSchedule, cfg.mockModel, cfg.mockNoise)
		if err != nil {
			return err
		}
		subExec, err := newSubprocessExecutor(cfg.meterName, cfg.mockWatts, cfg.mockSchedule, cfg.mockModel, cfg.mockNoise, cfg.timeout)
		if err != nil {
			return err
		}
		var exec harness.Executor = subExec
		if hasExternTrials(trials) {
			exec = &extwork.ExternExecutor{Meter: m, Fallback: subExec, Timeout: cfg.timeout, Log: log}
		}
		dispatch = &harness.Scheduler{Executor: exec, Parallel: cfg.parallel, Log: log}
	} else {
		m, err := newMeter(cfg.meterName, cfg.mockWatts, cfg.mockSchedule, cfg.mockModel, cfg.mockNoise)
		if err != nil {
			return err
		}
		var exec harness.Executor = &harness.InProcess{Meter: m}
		if hasExternTrials(trials) {
			exec = &extwork.ExternExecutor{Meter: m, Fallback: exec, Timeout: cfg.timeout, Log: log}
		}
		dispatch = &harness.Runner{Executor: exec, Log: log}
	}

	var runErr error
	if cfg.adapt != nil {
		planner := &adapt.Planner{Cfg: *cfg.adapt, Dispatch: dispatch, Log: log}
		rep, err := planner.Run(ctx, trials, prior, sinks)
		runErr = err
		if rep != nil {
			if werr := writeJSON(stdout, rep); werr != nil {
				runErr = errors.Join(runErr, werr)
			}
		}
	} else {
		runErr = dispatch.RunPlan(ctx, trials, sinks)
	}
	if err := sinks.Close(); err != nil {
		runErr = errors.Join(runErr, err)
	}
	if storeSink != nil && storeSink.Count() > 0 {
		fmt.Fprintf(stderr, "stored %d results in %s\n", storeSink.Count(), cfg.storePath)
	}
	return runErr
}

// hasExternTrials reports whether any planned trial runs an external
// workload; only those sweeps pay for the extern executor wrapper.
func hasExternTrials(trials []harness.Trial) bool {
	for _, t := range trials {
		if t.Extern != nil {
			return true
		}
	}
	return false
}

// loadPriorResults reads the already-stored results of a resumed adaptive
// plan back out of the store, sorted by configuration key so the planner's
// seeded state (and therefore its selections) is deterministic regardless of
// store layout or write order.
func loadPriorResults(path string, keys []string) ([]harness.Result, error) {
	st, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []harness.Result
	for rec, err := range st.Query(store.Filter{Keys: keys}) {
		if err != nil {
			return nil, err
		}
		out = append(out, rec.Result)
	}
	sort.Slice(out, func(i, j int) bool {
		return harness.ResultKey(out[i]) < harness.ResultKey(out[j])
	})
	return out, nil
}

// cmdStore dispatches the store subcommand: explicit verbs (query, compact,
// add, bench) plus the historical flag-driven form (`store --db=... [--add
// |--compact|filters]`), which keeps its exact surface and output.
func cmdStore(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "query":
			return cmdStoreQuery(args[1:], stdout, stderr)
		case "compact":
			return cmdStoreCompact(args[1:], stdout, stderr)
		case "add":
			return cmdStoreAdd(args[1:], stdout, stderr)
		case "bench":
			return cmdStoreBench(args[1:], stdout, stderr)
		default:
			return fmt.Errorf("unknown store subcommand %q (want query|compact|add|bench, or flags)", args[0])
		}
	}
	fs := flag.NewFlagSet("store", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		db      = fs.String("db", "", "store file or directory")
		add     = fs.String("add", "", "append results from this 'run' JSON file ('-' for stdin)")
		compact = fs.Bool("compact", false, "rewrite the store deduplicated")
	)
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("--db is required")
	}
	if *add != "" {
		return storeAdd(*db, *add, stdout)
	}
	if *compact {
		kept, err := store.Compact(*db)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{"db": *db, "kept": kept})
	}
	return storeQuery(*db, filter, false, stdout)
}

// cmdStoreQuery streams matching records out of a store of either layout.
func cmdStoreQuery(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file or directory")
	keysOnly := fs.Bool("keys", false, "print the sorted configuration-key set instead of records (the resume view; index-only, no filters)")
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("--db is required")
	}
	return storeQuery(*db, filter, *keysOnly, stdout)
}

func storeQuery(db string, filter func() (store.Filter, error), keysOnly bool, stdout io.Writer) error {
	f, err := filter()
	if err != nil {
		return err
	}
	st, err := store.Open(db)
	if err != nil {
		return err
	}
	defer st.Close()
	if keysOnly {
		if !f.IsZero() {
			return fmt.Errorf("--keys lists the full resume key set and takes no filters")
		}
		set, err := st.Keys()
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return writeJSON(stdout, keys)
	}
	out := []store.Record{}
	for rec, err := range st.Query(f) {
		if err != nil {
			return err
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		out = nil // match the legacy listing's `null` for an empty result
	}
	return writeJSON(stdout, out)
}

// cmdStoreCompact rewrites a store deduplicated; --shard additionally
// migrates a single-file store to the sharded segment layout in place.
func cmdStoreCompact(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store compact", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file or directory")
	shard := fs.Bool("shard", false, "convert a single-file store to the sharded segment layout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("--db is required")
	}
	if *shard {
		kept, err := store.Shard(*db)
		if err != nil {
			return err
		}
		st, err := store.Open(*db)
		if err != nil {
			return err
		}
		defer st.Close()
		return writeJSON(stdout, map[string]any{"db": *db, "kept": kept, "sharded": true, "segments": st.Segments()})
	}
	kept, err := store.Compact(*db)
	if err != nil {
		return err
	}
	return writeJSON(stdout, map[string]any{"db": *db, "kept": kept})
}

// cmdStoreAdd appends a 'run' JSON result file to a store.
func cmdStoreAdd(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store add", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file or directory")
	from := fs.String("from", "", "results JSON file from 'run' ('-' for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" || *from == "" {
		return fmt.Errorf("--db and --from are required")
	}
	return storeAdd(*db, *from, stdout)
}

func storeAdd(db, from string, stdout io.Writer) error {
	var r io.Reader = os.Stdin
	if from != "-" {
		f, err := os.Open(from)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := decodeAddInput(r, from)
	if err != nil {
		return err
	}
	n, err := store.Append(db, results)
	if err != nil {
		return err
	}
	return writeJSON(stdout, map[string]any{"db": db, "added": n})
}

// decodeAddInput accepts any of the result serializations the toolchain
// emits: the JSON array `run` prints, the JSON array of store records
// `store query` prints, or an NDJSON stream of store records (what a fleet
// coordinator's GET /jobs/{id}/results emits) — so merged fleet output
// pipes straight into a local store.
func decodeAddInput(r io.Reader, from string) ([]harness.Result, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("reading results from %s: %w", from, err)
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.Discard(1)
			continue
		}
		if b[0] != '[' {
			return decodeAddNDJSON(br, from)
		}
		break
	}
	var raws []json.RawMessage
	if err := json.NewDecoder(br).Decode(&raws); err != nil {
		return nil, fmt.Errorf("decoding results from %s: %w", from, err)
	}
	results := make([]harness.Result, 0, len(raws))
	for i, raw := range raws {
		res, err := decodeResultOrRecord(raw)
		if err != nil {
			return nil, fmt.Errorf("entry %d from %s: %w", i+1, from, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func decodeAddNDJSON(br *bufio.Reader, from string) ([]harness.Result, error) {
	var results []harness.Result
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		res, err := decodeResultOrRecord(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("record %d from %s: %w", line, from, err)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading records from %s: %w", from, err)
	}
	return results, nil
}

// decodeResultOrRecord decodes one JSON document as either a bare
// harness.Result or a store.Record wrapping one, distinguished by which
// shape yields a spec name.
func decodeResultOrRecord(raw []byte) (harness.Result, error) {
	var res harness.Result
	if err := json.Unmarshal(raw, &res); err == nil && res.Spec != "" {
		return res, nil
	}
	var rec store.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return harness.Result{}, err
	}
	if rec.V > store.SchemaVersion {
		return harness.Result{}, fmt.Errorf("schema v%d, this build reads up to v%d", rec.V, store.SchemaVersion)
	}
	if rec.Result.Spec == "" {
		return harness.Result{}, fmt.Errorf("neither a result nor a store record")
	}
	return rec.Result, nil
}

func cmdAnalyze(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file")
	activity := fs.String("activity", model.ActivityNominal,
		"activity source for the fit: nominal (thread counts) or counters (measured event rates)")
	phases := fs.Bool("phases", false,
		"segment stored time-resolved series into power phases and detect throttling instead of fitting the model")
	validate := fs.Bool("validate", false,
		"validate the fit against stored external-workload results (predicted vs measured power/energy); fails when the store holds none")
	roofline := fs.Bool("roofline", false,
		"place stored external-workload results on the roofline derived from the chase kernels; fails when that is impossible")
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *phases && (*validate || *roofline) {
		return fmt.Errorf("--phases is exclusive with --validate/--roofline")
	}
	results, err := queryFiltered(*db, filter)
	if err != nil {
		return err
	}
	if *phases {
		return analyzePhases(results, stdout, stderr)
	}
	rep, err := model.BuildReport(results, model.ReportOptions{
		Activity: *activity,
		Validate: *validate,
		Roofline: *roofline,
	})
	if err != nil {
		return err
	}
	if rep.SkippedNoCounters > 0 {
		fmt.Fprintf(stderr, "analyze: skipped %d stored results without counters\n", rep.SkippedNoCounters)
	}
	return writeJSON(stdout, rep)
}

// phaseReport is the per-repetition phase/throttle analysis of one stored
// time-resolved series.
type phaseReport struct {
	Key        string           `json:"key"`
	Spec       string           `json:"spec"`
	SpecB      string           `json:"spec_b,omitempty"`
	Threads    int              `json:"threads"`
	Placement  string           `json:"placement"`
	Rep        int              `json:"rep"`
	IntervalS  float64          `json:"interval_s"`
	Points     int              `json:"points"`
	MeanPowerW float64          `json:"mean_power_w"`
	Phases     []model.Phase    `json:"phases"`
	Throttles  []model.Throttle `json:"throttles,omitempty"`
}

// phaseAnalysis is the analyze --phases output document.
type phaseAnalysis struct {
	SchemaVersion int           `json:"schema_version"`
	Reports       []phaseReport `json:"reports"`
	// SkippedNoSeries counts stored results dropped because they carry no
	// time-resolved series (written without --sample-interval, or pre-v3).
	SkippedNoSeries int `json:"skipped_no_series,omitempty"`
}

// analyzePhases runs phase segmentation and throttle detection over every
// stored repetition that carries a time-resolved series.
func analyzePhases(results []harness.Result, stdout, stderr io.Writer) error {
	doc := phaseAnalysis{SchemaVersion: store.SchemaVersion, Reports: []phaseReport{}}
	for _, r := range results {
		hasSeries := false
		for rep, s := range r.Samples {
			if s.Series == nil || len(s.Series.Points) == 0 {
				continue
			}
			hasSeries = true
			times := make([]float64, len(s.Series.Points))
			powers := make([]float64, len(s.Series.Points))
			var sum float64
			for i, pt := range s.Series.Points {
				times[i] = pt.TS
				powers[i] = pt.PowerW
				sum += pt.PowerW
			}
			doc.Reports = append(doc.Reports, phaseReport{
				Key:        harness.ResultKey(r),
				Spec:       r.Spec,
				SpecB:      r.SpecB,
				Threads:    r.Threads,
				Placement:  string(r.Placement),
				Rep:        rep,
				IntervalS:  s.Series.IntervalS,
				Points:     len(times),
				MeanPowerW: sum / float64(len(powers)),
				Phases:     model.SegmentPhases(times, powers, model.PhaseConfig{}),
				Throttles:  model.DetectThrottles(times, powers, model.ThrottleConfig{}),
			})
		}
		if !hasSeries {
			doc.SkippedNoSeries++
		}
	}
	if len(doc.Reports) == 0 {
		return fmt.Errorf("no stored results carry a time-resolved series (run a sweep with --sample-interval to record them)")
	}
	if doc.SkippedNoSeries > 0 {
		fmt.Fprintf(stderr, "analyze: skipped %d stored results without series\n", doc.SkippedNoSeries)
	}
	return writeJSON(stdout, doc)
}

func cmdCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file")
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := queryFiltered(*db, filter)
	if err != nil {
		return err
	}
	infs := model.Interferences(results)
	if len(infs) == 0 {
		return fmt.Errorf("no co-run results with complete solo baselines in the store (run a --corun sweep plus solo sweeps of both specs at the same --threads and --iter-scale)")
	}
	return writeJSON(stdout, infs)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
