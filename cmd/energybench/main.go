// Command energybench sweeps a micro-benchmark exploration space
// (kernels × thread counts × placements, solo or co-run pairs), measures
// energy per configuration, persists results to a JSONL store, and derives
// the paper's analyses: a fitted linear power model and co-run interference.
//
//	energybench list
//	energybench run --meter=mock --reps=3 --threads=1,2 --store=results.jsonl
//	energybench store --db=results.jsonl
//	energybench analyze --db=results.jsonl
//	energybench compare --db=results.jsonl
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/model"
	"energybench/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "energybench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList(stdout)
	case "run":
		return cmdRun(ctx, args[1:], stdout, stderr)
	case "store":
		return cmdStore(args[1:], stdout, stderr)
	case "analyze":
		return cmdAnalyze(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  energybench list                 print the benchmark catalog as JSON
  energybench run [flags]          sweep the exploration space, print JSON results
  energybench store [flags]        append results to / inspect a JSONL result store
  energybench analyze [flags]      fit the linear power model over a store
  energybench compare [flags]      report co-run interference vs solo baselines

run flags:
  --meter=mock|rapl   energy backend (default mock; rapl needs /sys/class/powercap read access)
  --mock-watts=N      constant power the mock meter models (default 42)
  --specs=a,b         comma-separated spec names (default: full catalog)
  --corun=a+b,c+d     co-run pairs: each runs both specs concurrently,
                      --threads counts threads per spec
  --threads=1,2       comma-separated thread counts (default 1,2)
  --placement=p,q     comma-separated placements: none|compact|scatter (default none)
  --reps=N            measured repetitions per configuration (default 3)
  --warmup=N          discarded warm-up repetitions (default 1)
  --iter-scale=F      scale every spec's default iteration count (default 1.0)
  --max-cv=F          CV threshold for outlier rejection, 0 disables (default 0.2)
  --store=PATH        also append results to the JSONL store at PATH
  --progress          log one line per configuration to stderr

store flags:
  --db=PATH           store file (required)
  --add=FILE          append results from a 'run' JSON file ('-' for stdin)
  --compact           rewrite the store deduplicated
  --specs, --threads, --placement   filter listed records

analyze / compare flags:
  --db=PATH           store file (required)
  --specs, --threads, --placement   filter the results used`)
}

func cmdList(stdout io.Writer) error {
	return writeJSON(stdout, bench.Catalog())
}

func cmdRun(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		meterName = fs.String("meter", "mock", "energy backend: mock|rapl")
		mockWatts = fs.Float64("mock-watts", 42, "constant power modeled by the mock meter")
		specsFlag = fs.String("specs", "", "comma-separated spec names (default: full catalog)")
		corunFlag = fs.String("corun", "", "comma-separated co-run pairs, each 'specA+specB'")
		threads   = fs.String("threads", "1,2", "comma-separated thread counts")
		placement = fs.String("placement", "none", "comma-separated placements: none|compact|scatter")
		reps      = fs.Int("reps", 3, "measured repetitions per configuration")
		warmup    = fs.Int("warmup", 1, "discarded warm-up repetitions")
		iterScale = fs.Float64("iter-scale", 1.0, "scale factor applied to every spec's iteration count")
		maxCV     = fs.Float64("max-cv", 0.2, "CV threshold for outlier rejection (0 disables)")
		storePath = fs.String("store", "", "append results to the JSONL store at this path")
		progress  = fs.Bool("progress", false, "log one line per configuration to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iterScale <= 0 {
		return fmt.Errorf("--iter-scale must be positive, got %v", *iterScale)
	}

	space := harness.Space{
		Reps:      *reps,
		Warmup:    *warmup,
		IterScale: *iterScale,
		MaxCV:     *maxCV,
	}

	if *specsFlag == "" && *corunFlag == "" {
		space.Specs = bench.Catalog()
	} else {
		for _, name := range splitNonEmpty(*specsFlag) {
			s, err := bench.Lookup(name)
			if err != nil {
				return err
			}
			space.Specs = append(space.Specs, s)
		}
	}
	for _, pair := range splitNonEmpty(*corunFlag) {
		nameA, nameB, ok := strings.Cut(pair, "+")
		if !ok {
			return fmt.Errorf("--corun: pair %q is not of the form specA+specB", pair)
		}
		a, err := bench.Lookup(strings.TrimSpace(nameA))
		if err != nil {
			return err
		}
		b, err := bench.Lookup(strings.TrimSpace(nameB))
		if err != nil {
			return err
		}
		space.Pairs = append(space.Pairs, harness.Pair{A: a, B: b})
	}
	var err error
	if space.ThreadCounts, err = parseIntList(*threads); err != nil {
		return fmt.Errorf("--threads: %w", err)
	}
	for _, p := range splitNonEmpty(*placement) {
		pl, err := harness.ParsePlacement(p)
		if err != nil {
			return err
		}
		space.Placements = append(space.Placements, pl)
	}

	var m meter.EnergyMeter
	switch *meterName {
	case "mock":
		m = meter.NewMock(*mockWatts)
	case "rapl":
		if m, err = meter.NewRAPL(meter.DefaultPowercapRoot); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown meter %q (want mock|rapl)", *meterName)
	}

	runner := &harness.Runner{Meter: m}
	if *progress {
		runner.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	// On cancellation mid-sweep the harness still returns the completed
	// configurations: store and emit them so a long interrupted sweep is
	// resumable instead of losing everything, then surface the error.
	results, runErr := runner.Run(ctx, space)
	if len(results) > 0 {
		if *storePath != "" {
			n, err := store.Append(*storePath, results)
			if err != nil {
				return errors.Join(runErr, err)
			}
			fmt.Fprintf(stderr, "stored %d results in %s\n", n, *storePath)
		}
		if err := writeJSON(stdout, results); err != nil {
			return errors.Join(runErr, err)
		}
	}
	return runErr
}

// filterFlags registers the store filter flags on fs and returns a builder
// that parses them after fs.Parse.
func filterFlags(fs *flag.FlagSet) func() (store.Filter, error) {
	specs := fs.String("specs", "", "comma-separated spec names to keep")
	threads := fs.String("threads", "", "comma-separated thread counts to keep")
	placement := fs.String("placement", "", "comma-separated placements to keep")
	return func() (store.Filter, error) {
		f := store.Filter{
			Specs:      splitNonEmpty(*specs),
			Placements: splitNonEmpty(*placement),
		}
		for _, p := range f.Placements {
			if _, err := harness.ParsePlacement(p); err != nil {
				return f, err
			}
		}
		if *threads != "" {
			var err error
			if f.Threads, err = parseIntList(*threads); err != nil {
				return f, fmt.Errorf("--threads: %w", err)
			}
		}
		return f, nil
	}
}

// loadFiltered loads a store and applies the filter flags.
func loadFiltered(db string, filter func() (store.Filter, error)) ([]harness.Result, error) {
	if db == "" {
		return nil, fmt.Errorf("--db is required")
	}
	f, err := filter()
	if err != nil {
		return nil, err
	}
	recs, err := store.Load(db)
	if err != nil {
		return nil, err
	}
	return store.Results(recs, f), nil
}

func cmdStore(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		db      = fs.String("db", "", "store file")
		add     = fs.String("add", "", "append results from this 'run' JSON file ('-' for stdin)")
		compact = fs.Bool("compact", false, "rewrite the store deduplicated")
	)
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("--db is required")
	}
	if *add != "" {
		var r io.Reader = os.Stdin
		if *add != "-" {
			f, err := os.Open(*add)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		var results []harness.Result
		if err := json.NewDecoder(r).Decode(&results); err != nil {
			return fmt.Errorf("decoding results from %s: %w", *add, err)
		}
		n, err := store.Append(*db, results)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{"db": *db, "added": n})
	}
	if *compact {
		kept, err := store.Compact(*db)
		if err != nil {
			return err
		}
		return writeJSON(stdout, map[string]any{"db": *db, "kept": kept})
	}
	f, err := filter()
	if err != nil {
		return err
	}
	recs, err := store.Load(*db)
	if err != nil {
		return err
	}
	var out []store.Record
	for _, rec := range recs {
		if f.Match(rec.Result) {
			out = append(out, rec)
		}
	}
	return writeJSON(stdout, out)
}

// analysis is the analyze subcommand's output document.
type analysis struct {
	SchemaVersion int              `json:"schema_version"`
	Observations  int              `json:"observations"`
	Fit           *model.Fit       `json:"fit"`
	Marginals     []model.Marginal `json:"marginals"`
}

func cmdAnalyze(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file")
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := loadFiltered(*db, filter)
	if err != nil {
		return err
	}
	obs := model.FromResults(results)
	fit, err := model.FitPower(obs)
	if err != nil {
		return err
	}
	return writeJSON(stdout, analysis{
		SchemaVersion: store.SchemaVersion,
		Observations:  len(obs),
		Fit:           fit,
		Marginals:     model.Marginals(results),
	})
}

func cmdCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store file")
	filter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := loadFiltered(*db, filter)
	if err != nil {
		return err
	}
	infs := model.Interferences(results)
	if len(infs) == 0 {
		return fmt.Errorf("no co-run results with complete solo baselines in the store (run a --corun sweep plus solo sweeps of both specs at the same --threads and --iter-scale)")
	}
	return writeJSON(stdout, infs)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseIntList parses a comma-separated list of strictly positive integers,
// rejecting zero/negative values and silently dropping duplicates (order of
// first appearance is kept).
func parseIntList(s string) ([]int, error) {
	parts := splitNonEmpty(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	seen := make(map[int]bool, len(parts))
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be a positive integer", v)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}
