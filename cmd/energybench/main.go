// Command energybench sweeps a micro-benchmark exploration space
// (kernels × thread counts × placements), measures energy per configuration,
// and emits JSON results.
//
//	energybench list
//	energybench run --meter=mock --reps=3 --threads=1,2 --placement=none
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/meter"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "energybench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList(stdout)
	case "run":
		return cmdRun(ctx, args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  energybench list                 print the benchmark catalog as JSON
  energybench run [flags]          sweep the exploration space, print JSON results

run flags:
  --meter=mock|rapl   energy backend (default mock; rapl needs /sys/class/powercap read access)
  --mock-watts=N      constant power the mock meter models (default 42)
  --specs=a,b         comma-separated spec names (default: full catalog)
  --threads=1,2       comma-separated thread counts (default 1,2)
  --placement=p,q     comma-separated placements: none|compact|scatter (default none)
  --reps=N            measured repetitions per configuration (default 3)
  --warmup=N          discarded warm-up repetitions (default 1)
  --iter-scale=F      scale every spec's default iteration count (default 1.0)
  --max-cv=F          CV threshold for outlier rejection, 0 disables (default 0.2)
  --progress          log one line per configuration to stderr`)
}

func cmdList(stdout io.Writer) error {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(bench.Catalog())
}

func cmdRun(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		meterName = fs.String("meter", "mock", "energy backend: mock|rapl")
		mockWatts = fs.Float64("mock-watts", 42, "constant power modeled by the mock meter")
		specsFlag = fs.String("specs", "", "comma-separated spec names (default: full catalog)")
		threads   = fs.String("threads", "1,2", "comma-separated thread counts")
		placement = fs.String("placement", "none", "comma-separated placements: none|compact|scatter")
		reps      = fs.Int("reps", 3, "measured repetitions per configuration")
		warmup    = fs.Int("warmup", 1, "discarded warm-up repetitions")
		iterScale = fs.Float64("iter-scale", 1.0, "scale factor applied to every spec's iteration count")
		maxCV     = fs.Float64("max-cv", 0.2, "CV threshold for outlier rejection (0 disables)")
		progress  = fs.Bool("progress", false, "log one line per configuration to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iterScale <= 0 {
		return fmt.Errorf("--iter-scale must be positive, got %v", *iterScale)
	}

	space := harness.Space{
		Reps:      *reps,
		Warmup:    *warmup,
		IterScale: *iterScale,
		MaxCV:     *maxCV,
	}

	if *specsFlag == "" {
		space.Specs = bench.Catalog()
	} else {
		for _, name := range splitNonEmpty(*specsFlag) {
			s, err := bench.Lookup(name)
			if err != nil {
				return err
			}
			space.Specs = append(space.Specs, s)
		}
	}
	var err error
	if space.ThreadCounts, err = parseIntList(*threads); err != nil {
		return fmt.Errorf("--threads: %w", err)
	}
	for _, p := range splitNonEmpty(*placement) {
		pl, err := harness.ParsePlacement(p)
		if err != nil {
			return err
		}
		space.Placements = append(space.Placements, pl)
	}

	var m meter.EnergyMeter
	switch *meterName {
	case "mock":
		m = meter.NewMock(*mockWatts)
	case "rapl":
		if m, err = meter.NewRAPL(meter.DefaultPowercapRoot); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown meter %q (want mock|rapl)", *meterName)
	}

	runner := &harness.Runner{Meter: m}
	if *progress {
		runner.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	results, err := runner.Run(ctx, space)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseIntList(s string) ([]int, error) {
	parts := splitNonEmpty(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
