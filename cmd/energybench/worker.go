package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"energybench/internal/bench"
	"energybench/internal/campaign"
	"energybench/internal/harness"
	"energybench/internal/meter"
)

// workerEnvMarker is set in every worker child's environment. The production
// binary ignores it (the worker-trial argv is what selects worker mode), but
// it lets a `go test` binary re-exec itself as the CLI: TestMain sees the
// marker and dispatches to run() instead of the test runner.
const workerEnvMarker = "ENERGYBENCH_WORKER"

// newSubprocessExecutor builds the executor that re-execs this binary as a
// `worker-trial` child for every trial, forwarding the meter configuration
// as child flags so the parent never has to construct the meter itself
// (RAPL sysfs access stays confined to the measuring process).
func newSubprocessExecutor(meterName string, mockWatts float64, mockSchedule, mockModel string, mockNoise float64, timeout time.Duration) (*harness.Subprocess, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for worker re-exec: %w", err)
	}
	args := []string{"worker-trial", "--meter=" + meterName}
	if meterName == "mock" {
		args = append(args, fmt.Sprintf("--mock-watts=%g", mockWatts))
		if mockSchedule != "" {
			args = append(args, "--mock-schedule="+mockSchedule)
		}
		if mockModel != "" {
			args = append(args, "--mock-model="+mockModel)
			if mockNoise > 0 {
				args = append(args, fmt.Sprintf("--mock-noise=%g", mockNoise))
			}
		}
	}
	return &harness.Subprocess{
		Binary:  self,
		Args:    args,
		Env:     []string{workerEnvMarker + "=1"},
		Timeout: timeout,
	}, nil
}

// cmdWorkerTrial is the child half of the subprocess executor: it reads one
// serialized harness.Trial from stdin, runs it in-process (pinning, warm-up,
// metering — in this quiet single-purpose address space), and writes exactly
// one WorkerEnvelope to stdout. All failures are reported through the
// envelope so the parent gets a structured per-trial error; the nonzero exit
// is just a secondary signal.
func cmdWorkerTrial(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("worker-trial", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		meterName    = fs.String("meter", "mock", "energy backend: mock|rapl")
		mockWatts    = fs.Float64("mock-watts", 42, "constant power modeled by the mock meter")
		mockSchedule = fs.String("mock-schedule", "", "piecewise-constant mock power schedule 'atS:watts,...'")
		mockModel    = fs.String("mock-model", "", "planted linear mock power model 'component:watts,...'")
		mockNoise    = fs.Float64("mock-noise", 0, "deterministic per-configuration noise amplitude for a planted model (watts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := runWorkerTrial(ctx, *meterName, *mockWatts, *mockSchedule, *mockModel, *mockNoise, stdin)
	env := harness.WorkerEnvelope{V: harness.WorkerProtocolVersion}
	if err != nil {
		env.Error = err.Error()
	} else {
		env.Result = &res
	}
	if encErr := json.NewEncoder(stdout).Encode(env); encErr != nil {
		return fmt.Errorf("worker-trial: writing envelope: %w", encErr)
	}
	if err != nil {
		return fmt.Errorf("worker-trial: %w", err)
	}
	return nil
}

func runWorkerTrial(ctx context.Context, meterName string, mockWatts float64, mockSchedule, mockModel string, mockNoise float64, stdin io.Reader) (harness.Result, error) {
	var t harness.Trial
	if err := json.NewDecoder(stdin).Decode(&t); err != nil {
		return harness.Result{}, fmt.Errorf("decoding trial from stdin: %w", err)
	}
	// External workloads are run and metered by the parent's extern
	// executor, which only delegates kernel trials to worker children;
	// an extern trial arriving here means a mis-wired dispatcher.
	if t.Extern != nil {
		return harness.Result{}, fmt.Errorf("trial runs external workload %q: extern trials are executed by the parent process, not worker children", t.Extern.Workload)
	}
	// Kernels are function pointers and don't survive serialization; graft
	// them back from the catalog by spec name.
	if err := graftKernel(&t.Spec); err != nil {
		return harness.Result{}, err
	}
	if t.SpecB != nil {
		if err := graftKernel(t.SpecB); err != nil {
			return harness.Result{}, err
		}
	}
	m, err := newMeter(meterName, mockWatts, mockSchedule, mockModel, mockNoise)
	if err != nil {
		return harness.Result{}, err
	}
	exec := &harness.InProcess{Meter: m}
	return exec.Execute(ctx, t)
}

// newMeter constructs the energy backend. It is the single construction
// path shared by the in-process sweep and the worker child, so a new
// backend only needs wiring here.
func newMeter(name string, mockWatts float64, mockSchedule, mockModel string, mockNoise float64) (meter.EnergyMeter, error) {
	if mockSchedule != "" && name != "mock" {
		return nil, fmt.Errorf("--mock-schedule requires --meter=mock, got meter %q", name)
	}
	if mockModel != "" && name != "mock" {
		return nil, fmt.Errorf("--mock-model requires --meter=mock, got meter %q", name)
	}
	if mockModel != "" && mockSchedule != "" {
		return nil, fmt.Errorf("--mock-model and --mock-schedule are exclusive: a planted model already defines the draw over time")
	}
	if mockNoise != 0 && mockModel == "" {
		return nil, fmt.Errorf("--mock-noise requires --mock-model")
	}
	switch name {
	case "mock":
		m := meter.NewMock(mockWatts)
		steps, err := parseMockSchedule(mockSchedule)
		if err != nil {
			return nil, err
		}
		m.Steps = steps
		if mockModel != "" {
			planted, err := meter.ParseMockModel(mockModel)
			if err != nil {
				return nil, err
			}
			m.ModelW = planted
			if mockNoise < 0 {
				return nil, fmt.Errorf("--mock-noise must be non-negative, got %v", mockNoise)
			}
			m.NoiseW = mockNoise
		}
		return m, nil
	case "rapl":
		return meter.NewRAPL(meter.DefaultPowercapRoot)
	default:
		if err := campaign.ValidateMeter(name); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("meter %q is known but has no constructor wired here", name)
	}
}

// parseMockSchedule decodes the 'atS:watts,...' flag syntax into mock meter
// schedule steps, requiring strictly increasing offsets so the piecewise
// integral is well defined.
func parseMockSchedule(s string) ([]meter.MockStep, error) {
	if s == "" {
		return nil, nil
	}
	var steps []meter.MockStep
	for _, part := range strings.Split(s, ",") {
		atStr, wattsStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("--mock-schedule: step %q is not of the form atS:watts", part)
		}
		at, err := strconv.ParseFloat(atStr, 64)
		if err != nil {
			return nil, fmt.Errorf("--mock-schedule: bad offset in %q: %w", part, err)
		}
		watts, err := strconv.ParseFloat(wattsStr, 64)
		if err != nil {
			return nil, fmt.Errorf("--mock-schedule: bad watts in %q: %w", part, err)
		}
		if at < 0 || watts < 0 {
			return nil, fmt.Errorf("--mock-schedule: step %q must have non-negative offset and watts", part)
		}
		if len(steps) > 0 && at <= steps[len(steps)-1].AtS {
			return nil, fmt.Errorf("--mock-schedule: offsets must be strictly increasing, got %g after %g", at, steps[len(steps)-1].AtS)
		}
		steps = append(steps, meter.MockStep{AtS: at, Watts: watts})
	}
	return steps, nil
}

// graftKernel restores what a serialized spec cannot carry: the kernel
// function pointer, plus any catalog parameter the JSON left zero. A
// hand-written worker-trial may name just the spec ("chase-dram"); without
// its catalog working set the chase kernel would run on an empty workspace
// and panic.
func graftKernel(spec *bench.Spec) error {
	cat, err := bench.Lookup(spec.Name)
	if err != nil {
		return err
	}
	spec.Kernel = cat.Kernel
	if spec.Component == "" {
		spec.Component = cat.Component
	}
	if spec.WorkingSet == 0 {
		spec.WorkingSet = cat.WorkingSet
	}
	if spec.Unroll == 0 {
		spec.Unroll = cat.Unroll
	}
	if spec.Iters == 0 {
		spec.Iters = cat.Iters
	}
	return nil
}
