package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"energybench/internal/harness"
	"energybench/internal/stats"
	"energybench/internal/store"
)

// storeBenchDoc is the metrics document `store bench` emits — the
// BENCH_store.json artifact CI publishes from the scale smoke job.
type storeBenchDoc struct {
	SchemaVersion int    `json:"schema_version"`
	DB            string `json:"db"`
	Sharded       bool   `json:"sharded"`
	Records       int    `json:"records"`
	UniqueKeys    int    `json:"unique_keys"`
	Segments      int    `json:"segments"`

	AppendSeconds    float64 `json:"append_seconds"`
	AppendPerSecond  float64 `json:"append_records_per_second"`
	KeysSeconds      float64 `json:"keys_seconds"`
	QueryAllSeconds  float64 `json:"query_all_seconds"`
	QueryWhereMillis float64 `json:"query_where_millis"`
	QueryWhereHits   int     `json:"query_where_hits"`
	PointGetMillis   float64 `json:"point_get_millis"`
	CompactSeconds   float64 `json:"compact_seconds"`
	CompactPerSecond float64 `json:"compact_records_per_second"`
	CompactKept      int     `json:"compact_kept"`
}

// cmdStoreBench synthesizes a deterministic result corpus, drives it through
// the store's append → keys → query → compact lifecycle, asserts correctness
// at each step (dedup cardinality, last-wins values, key-set stability across
// compaction), and prints a JSON metrics document. It is both the scale smoke
// test and the source of the BENCH_store.json artifact.
func cmdStoreBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	db := fs.String("db", "", "store path to create (must not already exist)")
	records := fs.Int("records", 50000, "number of records to append (duplicates included)")
	batch := fs.Int("batch", 512, "append batch size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("--db is required")
	}
	if *records <= 0 || *batch <= 0 {
		return fmt.Errorf("--records and --batch must be positive")
	}
	if _, err := os.Stat(*db); err == nil {
		return fmt.Errorf("%s already exists; store bench needs a fresh path", *db)
	}

	doc := storeBenchDoc{SchemaVersion: store.SchemaVersion, DB: *db, Records: *records}

	st, err := store.Create(*db)
	if err != nil {
		return err
	}
	defer st.Close()
	doc.Sharded = st.Sharded()

	// Deterministic synthesis: cycle a configuration grid smaller than the
	// record count so later records overwrite earlier ones and dedup does
	// real work. PowerW.Mean carries the record's sequence number, which
	// makes last-wins verifiable: the surviving value for a key must be the
	// highest sequence number that mapped to it.
	unique := uniqueGridSize(*records)
	want := make(map[string]float64, unique)
	start := time.Now()
	buf := make([]harness.Result, 0, *batch)
	for i := 0; i < *records; i++ {
		r := synthResult(i % unique)
		r.PowerW.Mean = float64(i)
		want[harness.ResultKey(r)] = float64(i)
		buf = append(buf, r)
		if len(buf) == *batch {
			if _, err := st.Append(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := st.Append(buf); err != nil {
			return err
		}
	}
	doc.AppendSeconds = time.Since(start).Seconds()
	doc.AppendPerSecond = float64(*records) / doc.AppendSeconds
	doc.UniqueKeys = len(want)
	doc.Segments = st.Segments()

	// Keys: the resume view must see exactly the unique configurations.
	start = time.Now()
	keys, err := st.Keys()
	if err != nil {
		return err
	}
	doc.KeysSeconds = time.Since(start).Seconds()
	if len(keys) != len(want) {
		return fmt.Errorf("store bench: Keys() saw %d configurations, want %d", len(keys), len(want))
	}

	// Full query: every unique key once, carrying its last-written value.
	start = time.Now()
	n := 0
	for rec, err := range st.Query(store.Filter{}) {
		if err != nil {
			return err
		}
		key := store.Key(rec.Result)
		wantMean, ok := want[key]
		if !ok {
			return fmt.Errorf("store bench: query returned unknown key %s", key)
		}
		if rec.Result.PowerW.Mean != wantMean {
			return fmt.Errorf("store bench: key %s resolved to sequence %.0f, want %.0f (last write must win)",
				key, rec.Result.PowerW.Mean, wantMean)
		}
		n++
	}
	doc.QueryAllSeconds = time.Since(start).Seconds()
	if n != len(want) {
		return fmt.Errorf("store bench: full query yielded %d records, want %d", n, len(want))
	}

	// Filtered query: the index should narrow a --where style filter to one
	// spec without touching the rest of the corpus.
	start = time.Now()
	hits := 0
	for _, err := range st.Query(store.Filter{Specs: []string{benchSpecName(0)}}) {
		if err != nil {
			return err
		}
		hits++
	}
	doc.QueryWhereMillis = float64(time.Since(start).Microseconds()) / 1e3
	doc.QueryWhereHits = hits
	if hits == 0 || hits >= len(want) {
		return fmt.Errorf("store bench: spec filter matched %d of %d keys; expected a strict subset", hits, len(want))
	}

	// Point lookup by exact key — the path `run --resume` key checks take.
	probe := harness.ResultKey(synthResult(0))
	start = time.Now()
	rec, ok, err := st.Get(probe)
	doc.PointGetMillis = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store bench: Get(%s) found nothing", probe)
	}
	if got := store.Key(rec.Result); got != probe {
		return fmt.Errorf("store bench: Get(%s) returned key %s", probe, got)
	}

	// Compaction drops every superseded duplicate and must preserve the key
	// set and surviving values exactly.
	start = time.Now()
	kept, err := st.Compact()
	if err != nil {
		return err
	}
	doc.CompactSeconds = time.Since(start).Seconds()
	doc.CompactPerSecond = float64(*records) / doc.CompactSeconds
	doc.CompactKept = kept
	if kept != len(want) {
		return fmt.Errorf("store bench: compact kept %d records, want %d", kept, len(want))
	}
	after, err := st.Keys()
	if err != nil {
		return err
	}
	if len(after) != len(keys) {
		return fmt.Errorf("store bench: compact changed the key count from %d to %d", len(keys), len(after))
	}
	for k := range keys {
		if !after[k] {
			return fmt.Errorf("store bench: compact lost key %s", k)
		}
	}
	for rec, err := range st.Query(store.Filter{}) {
		if err != nil {
			return err
		}
		if rec.Result.PowerW.Mean != want[store.Key(rec.Result)] {
			return fmt.Errorf("store bench: compact corrupted key %s", store.Key(rec.Result))
		}
	}
	doc.Segments = st.Segments()

	return writeJSON(stdout, doc)
}

// uniqueGridSize picks the synthetic configuration-grid cardinality: about a
// quarter of the record count (so each key is written ~4 times), capped to
// keep index memory proportional to unique keys, floored at one.
func uniqueGridSize(records int) int {
	u := records / 4
	if u > 16384 {
		u = 16384
	}
	if u < 1 {
		u = 1
	}
	return u
}

func benchSpecName(i int) string { return fmt.Sprintf("synth%02d", i%16) }

// synthResult deterministically maps a grid slot to a distinct configuration:
// 16 specs × 8 thread counts × 2 placements × varying iteration counts.
func synthResult(slot int) harness.Result {
	placements := []harness.Placement{harness.PlaceCompact, harness.PlaceScatter}
	return harness.Result{
		Spec:      benchSpecName(slot),
		Threads:   1 + (slot/16)%8,
		Iters:     1000 + 128*(slot/(16*8*len(placements))),
		Placement: placements[(slot/(16*8))%len(placements)],
		Meter:     "synthetic",
		EnergyJ:   stats.Summary{N: 1, Mean: 1.0},
		TimeS:     stats.Summary{N: 1, Mean: 1.0},
		PowerW:    stats.Summary{N: 1, Mean: 1.0},
	}
}
