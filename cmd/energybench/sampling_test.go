package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/stats"
	"energybench/internal/store"
)

// mkStoreResult is a minimal stored result for analyze-level tests.
func mkStoreResult(spec string, threads int) harness.Result {
	return harness.Result{
		Spec:      spec,
		Component: "int-alu",
		Threads:   threads,
		Iters:     1000,
		Placement: harness.PlaceNone,
		Meter:     "mock",
		Samples:   []harness.Sample{{EnergyJ: 10, TimeS: 1, PowerW: 10}},
		EnergyJ:   stats.Summary{N: 1, Mean: 10},
		TimeS:     stats.Summary{N: 1, Mean: 1},
		PowerW:    stats.Summary{N: 1, Mean: 10},
	}
}

// TestRunSampleIntervalStoresSeries is the acceptance-criteria pipeline test:
// a `run --sample-interval --meter=mock --store` sweep must persist schema-v3
// records whose samples each carry a time-resolved series, with a point count
// consistent with the repetition's meter window over the interval. Bounds are
// generous — on a loaded single-CPU CI host the sampler goroutine competes
// with the spinning kernel and ticks coalesce — but the structure is exact.
func TestRunSampleIntervalStoresSeries(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "sampled.jsonl")
	var stdout, stderr bytes.Buffer
	args := []string{
		"run",
		"--meter=mock", "--mock-watts=42",
		"--specs=int-alu", "--threads=1", "--reps=2", "--warmup=0",
		"--iter-scale=10", // ~75 ms per rep: several 10 ms ticks
		"--sample-interval=10ms",
		"--store=" + dbPath,
	}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run failed: %v\nstderr: %s", err, stderr.String())
	}
	recs, err := store.Load(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("stored %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.V != store.SchemaVersion {
		t.Errorf("record schema = %d, want %d", rec.V, store.SchemaVersion)
	}
	if rec.Result.SampleInterval != 10*time.Millisecond {
		t.Errorf("SampleInterval = %v, want 10ms", rec.Result.SampleInterval)
	}
	if len(rec.Result.Samples) != 2 {
		t.Fatalf("stored %d samples, want 2", len(rec.Result.Samples))
	}
	for i, s := range rec.Result.Samples {
		if s.Series == nil {
			t.Fatalf("sample %d has no series", i)
		}
		if s.Series.IntervalS != 0.01 {
			t.Errorf("sample %d IntervalS = %v, want 0.01", i, s.Series.IntervalS)
		}
		n := len(s.Series.Points)
		if n < 1 {
			t.Fatalf("sample %d series is empty", i)
		}
		// Upper bound: one point per interval plus the final flush and slack.
		if maxPts := int(s.MeterTimeS/0.01) + 2; n > maxPts {
			t.Errorf("sample %d has %d points over a %.3fs window, want at most %d", i, n, s.MeterTimeS, maxPts)
		}
		for j, pt := range s.Series.Points {
			if pt.TS <= 0 || pt.TS > s.MeterTimeS+0.01 {
				t.Errorf("sample %d point %d TS = %v outside (0, %v]", i, j, pt.TS, s.MeterTimeS+0.01)
			}
			if math.Abs(pt.PowerW-42) > 42*0.05 {
				t.Errorf("sample %d point %d power = %v W, want ~42 (constant mock)", i, j, pt.PowerW)
			}
		}
	}
}

// plantedSeriesResult builds a result whose single sample carries a
// deterministic two-regime series: highW for the first half of the points,
// lowW after, on a fixed interval.
func plantedSeriesResult(points int, intervalS, highW, lowW float64) harness.Result {
	pts := make([]meter.SeriesPoint, points)
	for i := range pts {
		w := highW
		if i >= points/2 {
			w = lowW
		}
		ts := float64(i+1) * intervalS
		pts[i] = meter.SeriesPoint{TS: ts, DomainUJ: []uint64{uint64(w * intervalS * 1e6)}, PowerW: w}
	}
	r := mkStoreResult("int-alu", 1)
	r.SampleInterval = time.Duration(intervalS * float64(time.Second))
	r.Samples = []harness.Sample{{
		EnergyJ: (highW + lowW) / 2 * float64(points) * intervalS,
		TimeS:   float64(points) * intervalS,
		PowerW:  (highW + lowW) / 2,
		Series: &meter.Series{
			StartAt:   time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
			IntervalS: intervalS,
			Points:    pts,
		},
	}}
	return r
}

// TestAnalyzePhasesFindsPlantedBoundary is the acceptance-criteria analysis
// test: a stored series switching 42 W → 20 W exactly halfway must segment
// into two phases whose boundary lands within one interval of the plant.
func TestAnalyzePhasesFindsPlantedBoundary(t *testing.T) {
	const (
		points   = 20
		interval = 0.01
	)
	dbPath := filepath.Join(t.TempDir(), "planted.jsonl")
	if _, err := store.Append(dbPath, []harness.Result{plantedSeriesResult(points, interval, 42, 20)}); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"analyze", "--db=" + dbPath, "--phases"}, &stdout, &stderr); err != nil {
		t.Fatalf("analyze --phases failed: %v\nstderr: %s", err, stderr.String())
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Reports       []struct {
			Rep    int `json:"rep"`
			Points int `json:"points"`
			Phases []struct {
				StartS float64 `json:"start_s"`
				EndS   float64 `json:"end_s"`
				MeanW  float64 `json:"mean_w"`
			} `json:"phases"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\noutput: %.500s", err, stdout.String())
	}
	if doc.SchemaVersion != store.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, store.SchemaVersion)
	}
	if len(doc.Reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(doc.Reports))
	}
	rep := doc.Reports[0]
	if rep.Points != points {
		t.Errorf("report covers %d points, want %d", rep.Points, points)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("segmented into %d phases, want 2: %+v", len(rep.Phases), rep.Phases)
	}
	// Planted boundary: last 42 W point at t = 10·interval, first 20 W point
	// at t = 11·interval.
	wantBoundary := float64(points/2+1) * interval
	if diff := math.Abs(rep.Phases[1].StartS - wantBoundary); diff > interval {
		t.Errorf("phase boundary at %v s, want within one interval of %v s", rep.Phases[1].StartS, wantBoundary)
	}
	if math.Abs(rep.Phases[0].MeanW-42) > 1e-9 || math.Abs(rep.Phases[1].MeanW-20) > 1e-9 {
		t.Errorf("phase means = %v/%v W, want 42/20", rep.Phases[0].MeanW, rep.Phases[1].MeanW)
	}
}

// TestAnalyzePhasesErrorsWithoutSeries: a store with no time-resolved series
// must produce an actionable error, not an empty document.
func TestAnalyzePhasesErrorsWithoutSeries(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "noseries.jsonl")
	if _, err := store.Append(dbPath, []harness.Result{mkStoreResult("int-alu", 1)}); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"analyze", "--db=" + dbPath, "--phases"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "sample-interval") {
		t.Errorf("err = %v, want a hint to rerun with --sample-interval", err)
	}
}

// TestMockScheduleRequiresMockMeter: a power schedule only makes sense on the
// mock backend; pairing it with rapl must fail fast.
func TestMockScheduleRequiresMockMeter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"run", "--meter=rapl", "--mock-schedule=0.1:20", "--specs=int-alu", "--threads=1"}
	err := run(context.Background(), args, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "--mock-schedule requires --meter=mock") {
		t.Errorf("err = %v, want a --mock-schedule/--meter mismatch error", err)
	}
}

func TestParseMockSchedule(t *testing.T) {
	cases := []struct {
		name, in string
		want     []meter.MockStep
		wantErr  bool
	}{
		{"empty", "", nil, false},
		{"single", "0.05:20", []meter.MockStep{{AtS: 0.05, Watts: 20}}, false},
		{"multi", "0.05:60,0.1:20", []meter.MockStep{{AtS: 0.05, Watts: 60}, {AtS: 0.1, Watts: 20}}, false},
		{"spaces", " 0.05:60 , 0.1:20 ", []meter.MockStep{{AtS: 0.05, Watts: 60}, {AtS: 0.1, Watts: 20}}, false},
		{"no colon", "0.05", nil, true},
		{"bad offset", "x:20", nil, true},
		{"bad watts", "0.05:y", nil, true},
		{"negative watts", "0.05:-3", nil, true},
		{"non-increasing", "0.1:20,0.1:30", nil, true},
		{"decreasing", "0.2:20,0.1:30", nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseMockSchedule(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseMockSchedule(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseMockSchedule(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("step %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
