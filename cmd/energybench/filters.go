package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"energybench/internal/harness"
	"energybench/internal/store"
)

// whereList collects repeated --where flags.
type whereList []string

func (w *whereList) String() string { return strings.Join(*w, ";") }

func (w *whereList) Set(v string) error {
	*w = append(*w, v)
	return nil
}

// filterFlags registers the shared result-filter flag set — the unified
// `--where field=value,...` form plus the legacy `--specs/--threads/
// --placement` spellings — and returns a builder that assembles the
// store.Filter after fs.Parse. Every store-consuming subcommand (store,
// store query, analyze, compare) goes through this one builder, so the
// filter surface cannot drift between them.
func filterFlags(fs *flag.FlagSet) func() (store.Filter, error) {
	specs := fs.String("specs", "", "comma-separated spec names to keep")
	threads := fs.String("threads", "", "comma-separated thread counts to keep")
	placement := fs.String("placement", "", "comma-separated placements to keep")
	var where whereList
	fs.Var(&where, "where", "comma-separated field=value filter pairs (spec|threads|placement|meter|host|workload|key); repeatable, same-field values OR together")
	return func() (store.Filter, error) {
		f := store.Filter{
			Specs:      splitNonEmpty(*specs),
			Placements: splitNonEmpty(*placement),
		}
		if *threads != "" {
			var err error
			if f.Threads, err = parseIntList(*threads); err != nil {
				return f, fmt.Errorf("--threads: %w", err)
			}
		}
		for _, clause := range where {
			if err := applyWhere(&f, clause); err != nil {
				return f, fmt.Errorf("--where %q: %w", clause, err)
			}
		}
		for _, p := range f.Placements {
			if _, err := harness.ParsePlacement(p); err != nil {
				return f, err
			}
		}
		return f, nil
	}
}

// applyWhere merges one --where clause ("field=value,field=value,...") into
// the filter. Values for the same field accumulate (OR); distinct fields
// intersect (AND), mirroring the legacy flags.
func applyWhere(f *store.Filter, clause string) error {
	for _, pair := range splitNonEmpty(clause) {
		field, value, ok := strings.Cut(pair, "=")
		// Trim both sides of the '=': values are compared verbatim against
		// stored fields, so an untrimmed "spec = chase-l1" would filter on
		// " chase-l1" and silently match nothing.
		value = strings.TrimSpace(value)
		if !ok || value == "" {
			return fmt.Errorf("pair %q is not of the form field=value", pair)
		}
		switch strings.TrimSpace(field) {
		case "spec", "specs":
			f.Specs = append(f.Specs, value)
		case "threads", "thread":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 {
				return fmt.Errorf("threads value %q is not a positive integer", value)
			}
			f.Threads = append(f.Threads, n)
		case "placement":
			f.Placements = append(f.Placements, value)
		case "meter":
			f.Meters = append(f.Meters, value)
		case "host":
			f.Hosts = append(f.Hosts, value)
		case "workload":
			f.Workloads = append(f.Workloads, value)
		case "key":
			f.Keys = append(f.Keys, value)
		default:
			return fmt.Errorf("unknown field %q (want spec|threads|placement|meter|host|workload|key)", field)
		}
	}
	return nil
}

// queryFiltered streams the filtered results out of the store at db
// through the unified query API — no full-corpus load, and for sharded
// stores no deserialization of non-matching records.
func queryFiltered(db string, filter func() (store.Filter, error)) ([]harness.Result, error) {
	if db == "" {
		return nil, fmt.Errorf("--db is required")
	}
	f, err := filter()
	if err != nil {
		return nil, err
	}
	st, err := store.Open(db)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []harness.Result
	for rec, err := range st.Query(f) {
		if err != nil {
			return nil, err
		}
		out = append(out, rec.Result)
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseIntList parses a comma-separated list of strictly positive integers,
// rejecting zero/negative values and silently dropping duplicates (order of
// first appearance is kept).
func parseIntList(s string) ([]int, error) {
	parts := splitNonEmpty(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	seen := make(map[int]bool, len(parts))
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be a positive integer", v)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}
