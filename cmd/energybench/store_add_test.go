package main

import (
	"fmt"
	"strings"
	"testing"

	"energybench/internal/store"
)

func TestDecodeAddInputShapes(t *testing.T) {
	resultJSON := `{"spec":"int-alu","component":"alu","threads":2,"placement":"none","meter":"mock","iters":1000}`
	recordJSON := fmt.Sprintf(`{"v":%d,"key":"int-alu||t2+0|none|mock|i1000+0","saved_at":"2026-08-08T00:00:00Z","result":%s}`,
		store.SchemaVersion, resultJSON)

	cases := []struct {
		name, in string
		want     int
	}{
		{"run result array", "[" + resultJSON + "]", 1},
		{"store query record array", "  [" + recordJSON + "," + recordJSON + "]", 2},
		{"fleet NDJSON record stream", recordJSON + "\n" + recordJSON + "\n\n" + recordJSON + "\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, err := decodeAddInput(strings.NewReader(tc.in), "test")
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != tc.want {
				t.Fatalf("decoded %d results, want %d", len(results), tc.want)
			}
			for _, r := range results {
				if r.Spec != "int-alu" || r.Threads != 2 {
					t.Fatalf("decoded result %+v", r)
				}
			}
		})
	}
}

func TestDecodeAddInputRejects(t *testing.T) {
	newer := fmt.Sprintf(`{"v":%d,"key":"k","result":{"spec":"int-alu"}}`, store.SchemaVersion+1)
	if _, err := decodeAddInput(strings.NewReader(newer+"\n"), "test"); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("newer-schema record: err = %v", err)
	}
	if _, err := decodeAddInput(strings.NewReader(`{"neither":true}`+"\n"), "test"); err == nil {
		t.Fatal("shapeless document accepted")
	}
	if _, err := decodeAddInput(strings.NewReader("not json\n"), "test"); err == nil {
		t.Fatal("malformed line accepted")
	}
}
