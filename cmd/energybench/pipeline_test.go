package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"energybench/internal/store"
)

// planOut mirrors the planDoc JSON for decoding in tests.
type planOut struct {
	Trials       int `json:"trials"`
	Skipped      int `json:"skipped"`
	MinTotalReps int `json:"min_total_reps"`
	MaxTotalReps int `json:"max_total_reps"`
	Plan         []struct {
		Spec struct {
			Name string `json:"name"`
		} `json:"spec"`
		Threads int `json:"threads"`
	} `json:"plan"`
}

// TestRunResumeSkipsStoredTrials is the acceptance-criteria integration
// test: `run --resume` against a pre-populated store must execute zero
// trials for already-stored configurations.
func TestRunResumeSkipsStoredTrials(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	base := []string{"run", "--specs=int-alu", "--threads=1,2", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store=" + db}
	runOK(t, base...)

	// Identical space, resumed: every trial is already stored, so nothing
	// may execute and the output must be an empty (but valid) JSON array.
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), append(base, "--resume"), &stdout, &stderr); err != nil {
		t.Fatalf("resumed run failed: %v\nstderr: %s", err, stderr.String())
	}
	var results []cliResult
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatalf("resumed output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(results) != 0 {
		t.Fatalf("resumed run executed %d trials, want 0", len(results))
	}
	if !strings.Contains(stderr.String(), "skipped 2 already-stored trials") {
		t.Errorf("stderr missing skip count: %s", stderr.String())
	}
	recs, err := store.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("store grew to %d records after a fully-skipped resume, want 2", len(recs))
	}

	// Widening the space and resuming runs only the new configuration.
	widened := []string{"run", "--specs=int-alu", "--threads=1,2,4", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store=" + db, "--resume"}
	stdout.Reset()
	stderr.Reset()
	if err := run(context.Background(), widened, &stdout, &stderr); err != nil {
		t.Fatalf("widened resume failed: %v\nstderr: %s", err, stderr.String())
	}
	results = nil
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Threads != 4 {
		t.Fatalf("widened resume executed %+v, want only the t4 trial", results)
	}
	if recs, err = store.Load(db); err != nil || len(recs) != 3 {
		t.Errorf("store holds %d records (err %v), want 3", len(recs), err)
	}
}

func TestRunResumeRequiresStore(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"run", "--resume", "--specs=int-alu"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "--store") {
		t.Errorf("err = %v, want --resume-requires---store error", err)
	}
}

// TestRunDryRunPrintsPlan: --dry-run sizes the sweep without executing it
// (and without constructing a meter).
func TestRunDryRunPrintsPlan(t *testing.T) {
	out := runOK(t, "run", "--dry-run", "--specs=int-alu,chase-l1",
		"--threads=1,2", "--reps=2", "--max-reps=8")
	var doc planOut
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trials != 4 || len(doc.Plan) != 4 {
		t.Fatalf("planned %d trials (%d listed), want 4", doc.Trials, len(doc.Plan))
	}
	if doc.MinTotalReps != 8 || doc.MaxTotalReps != 32 {
		t.Errorf("rep totals = %d/%d, want 8/32", doc.MinTotalReps, doc.MaxTotalReps)
	}
}

// TestListEstimatesTrialCount: list with space flags performs a planner dry
// run instead of printing the catalog.
func TestListEstimatesTrialCount(t *testing.T) {
	out := runOK(t, "list", "--threads=1,2,4", "--placement=none,compact")
	var doc planOut
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trials != 42 { // 7 catalog specs × 3 thread counts × 2 placements
		t.Errorf("estimated %d trials, want 42", doc.Trials)
	}
	if doc.MinTotalReps != 42*3 {
		t.Errorf("min total reps = %d, want %d at the default 3 reps", doc.MinTotalReps, 42*3)
	}
}

// cancelOnFirstWrite cancels a context the first time anything is written,
// standing in for a user hitting Ctrl-C right as the first progress line
// appears.
type cancelOnFirstWrite struct {
	cancel context.CancelFunc
	fired  bool
	buf    bytes.Buffer
}

func (w *cancelOnFirstWrite) Write(p []byte) (int, error) {
	if !w.fired {
		w.fired = true
		w.cancel()
	}
	return w.buf.Write(p)
}

// TestRunStoreFlushedBeforeInterrupt is the SIGINT-durability regression
// test: interrupting a sweep right after its first trial completes must
// leave that trial in the store (flushed per configuration) and the stdout
// JSON array well-formed.
func TestRunStoreFlushedBeforeInterrupt(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stderr := &cancelOnFirstWrite{cancel: cancel}
	var stdout bytes.Buffer

	err := run(ctx, []string{"run", "--specs=int-alu", "--threads=1,2", "--reps=1",
		"--warmup=0", "--iter-scale=0.01", "--store=" + db, "--progress"}, &stdout, stderr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	recs, err := store.Load(db)
	if err != nil {
		t.Fatalf("store unreadable after interrupt: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("store holds %d records after interrupt following trial 1, want exactly 1", len(recs))
	}
	var results []cliResult
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatalf("interrupted stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(results) != 1 {
		t.Errorf("interrupted output carries %d results, want the 1 completed trial", len(results))
	}
}
