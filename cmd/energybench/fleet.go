package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"energybench/internal/campaign"
	"energybench/internal/extwork"
	"energybench/internal/fleet"
	"energybench/internal/harness"
)

// cmdServe runs the fleet coordinator daemon: it accepts campaign
// submissions over HTTP, leases trial batches to registered agents, and
// merges their results into per-job stores under --data.
func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:7979", "address to serve the coordinator API on (use :0 for an ephemeral port)")
		dataDir  = fs.String("data", "", "coordinator data directory: campaigns, job metadata, and merged stores live here (required)")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second, "how long an agent holds a trial batch before it is reclaimed and re-dispatched")
		batch    = fs.Int("batch", 4, "maximum trials granted per agent lease")
		resume   = fs.Bool("resume", true, "replay existing jobs under --data on startup, resuming unfinished ones from their stores")
		addrFile = fs.String("addr-file", "", "write the bound base URL to this file once listening (for scripts using --listen=:0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("--data is required")
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	coord, err := fleet.NewCoordinator(fleet.Options{
		DataDir:   *dataDir,
		LeaseTTL:  *leaseTTL,
		BatchSize: *batch,
		Resume:    *resume,
		Log:       logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	baseURL := "http://" + ln.Addr().String()
	logf("fleet: coordinator listening on %s (data %s)", baseURL, *dataDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(baseURL+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	// Reclaim expired leases on a timer, so a dead agent's work is
	// re-dispatched even when no other agent traffic triggers a reap.
	reapCtx, stopReap := context.WithCancel(ctx)
	defer stopReap()
	go func() {
		t := time.NewTicker(*leaseTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-reapCtx.Done():
				return
			case <-t.C:
				coord.Reap()
			}
		}
	}()

	srv := &http.Server{Handler: coord.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		logf("fleet: coordinator shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shctx)
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// cmdAgent runs a fleet agent daemon: it registers this machine with the
// coordinator and loops leasing trial batches, executing them through the
// same scheduler/executor stack a local sweep uses, and posting the results
// back.
func cmdAgent(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordURL = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:7979 (required)")
		name     = fs.String("name", "", "host name to register as (default: the machine hostname); must be unique across the fleet")
		maxBatch = fs.Int("max-batch", 0, "maximum trials to request per lease (0: coordinator's default)")
		poll     = fs.Duration("poll", 2*time.Second, "idle poll interval when no work is assignable")
		cpus     = fs.Int("cpus", 0, "CPU count to advertise to the coordinator (0: detected); trials wider than this are never routed here, so raising it opportunistically oversubscribes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return fmt.Errorf("--coordinator is required")
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	host := fleet.LocalHost(*name)
	if *cpus > 0 {
		host.CPUs = *cpus
	}
	a := &fleet.Agent{
		Coordinator: strings.TrimRight(*coordURL, "/"),
		Host:        host,
		Runner:      localBatchRunner(logf),
		MaxBatch:    *maxBatch,
		Poll:        *poll,
		Log:         logf,
	}
	return a.Run(ctx)
}

// localBatchRunner executes leased batches through the ordinary trial
// pipeline: the core-leasing Scheduler over either the subprocess executor
// (worker children, exactly like `run --executor=subprocess`) or the
// in-process executor (kernels grafted back from the catalog after their
// trip over the wire, exactly like a worker child does).
func localBatchRunner(logf func(string, ...any)) fleet.BatchRunner {
	return fleet.BatchRunnerFunc(func(ctx context.Context, b fleet.Batch, sink harness.ResultSink) error {
		ec := b.Exec
		var exec harness.Executor
		if ec.Executor == campaign.ExecutorSubprocess {
			e, err := newSubprocessExecutor(ec.Meter, ec.MockWatts, "", ec.MockModel, ec.MockNoiseW, ec.TrialTimeout)
			if err != nil {
				return err
			}
			exec = e
		} else {
			for i := range b.Trials {
				// Extern trials name a workload, not a catalog kernel — the
				// extern executor runs their child process directly, so there
				// is nothing to graft.
				if b.Trials[i].Extern != nil {
					continue
				}
				if err := graftKernel(&b.Trials[i].Spec); err != nil {
					return err
				}
				if b.Trials[i].SpecB != nil {
					if err := graftKernel(b.Trials[i].SpecB); err != nil {
						return err
					}
				}
			}
			m, err := newMeter(ec.Meter, ec.MockWatts, "", ec.MockModel, ec.MockNoiseW)
			if err != nil {
				return err
			}
			exec = &harness.InProcess{Meter: m}
		}
		if hasExternTrials(b.Trials) {
			// External workloads are always metered from the agent process
			// itself, whichever executor runs the kernel trials.
			m, err := newMeter(ec.Meter, ec.MockWatts, "", ec.MockModel, ec.MockNoiseW)
			if err != nil {
				return err
			}
			exec = &extwork.ExternExecutor{Meter: m, Fallback: exec, Timeout: ec.TrialTimeout, Log: logf}
		}
		sched := &harness.Scheduler{Executor: exec, Parallel: ec.Parallel, Log: logf}
		return sched.RunPlan(ctx, b.Trials, sink)
	})
}

// cmdSubmit posts a campaign file to a coordinator and optionally waits for
// the job to finish, printing the final job status as JSON.
func cmdSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordURL = fs.String("coordinator", "", "coordinator base URL (required)")
		path     = fs.String("campaign", "", "campaign file to submit (YAML or JSON; required)")
		wait     = fs.Bool("wait", false, "poll the job until it finishes and print the final status")
		analyze  = fs.Bool("analyze", false, "after the job finishes, fetch and print its analysis report instead of the raw status (implies --wait)")
		activity = fs.String("activity", "", "activity source for --analyze: nominal (default) or counters")
		timeout  = fs.Duration("timeout", 0, "give up waiting after this long (0: no limit; requires --wait)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" || *path == "" {
		return fmt.Errorf("--coordinator and --campaign are required")
	}
	if *analyze {
		*wait = true
	}
	if *activity != "" && !*analyze {
		return fmt.Errorf("--activity requires --analyze")
	}
	if *timeout != 0 && !*wait {
		return fmt.Errorf("--timeout requires --wait")
	}
	base := strings.TrimRight(*coordURL, "/")
	raw, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var sub struct {
		JobID    string `json:"job_id"`
		Trials   int    `json:"trials"`
		Adaptive bool   `json:"adaptive"`
	}
	if err := doJSON(client, req, &sub); err != nil {
		return fmt.Errorf("submitting campaign: %w", err)
	}
	fmt.Fprintf(stderr, "submitted job %s: %d trials\n", sub.JobID, sub.Trials)
	if !*wait {
		return writeJSON(stdout, sub)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	for {
		st, err := fetchJobStatus(ctx, client, base, sub.JobID)
		if err != nil {
			return err
		}
		if st.Finished {
			if *analyze {
				// The status document still lands on stderr so failures stay
				// visible; stdout carries the analysis JSON alone, pipeable.
				fmt.Fprintf(stderr, "job %s finished: %d/%d done, %d failed\n", st.ID, st.Done, st.Trials, st.Failed)
				if err := fetchJobAnalysis(ctx, client, base, sub.JobID, *activity, stdout); err != nil {
					return err
				}
			} else if err := writeJSON(stdout, st); err != nil {
				return err
			}
			if st.PlannerErr != "" {
				return fmt.Errorf("job %s planner failed: %s", st.ID, st.PlannerErr)
			}
			if st.Failed > 0 {
				return fmt.Errorf("job %s finished with %d failed trials", st.ID, st.Failed)
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for job %s: %w (last: %d/%d done)", sub.JobID, ctx.Err(), st.Done, st.Trials)
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// fetchJobAnalysis retrieves the coordinator's analysis report for a finished
// job — the same document a local `analyze` over the downloaded store would
// produce — and writes it to out verbatim.
func fetchJobAnalysis(ctx context.Context, client *http.Client, base, id, activity string, out io.Writer) error {
	url := base + "/jobs/" + id + "/analyze"
	if activity != "" {
		url += "?activity=" + activity
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	var rep json.RawMessage
	if err := doJSON(client, req, &rep); err != nil {
		return fmt.Errorf("fetching job %s analysis: %w", id, err)
	}
	var pretty any
	if err := json.Unmarshal(rep, &pretty); err != nil {
		return err
	}
	return writeJSON(out, pretty)
}

func fetchJobStatus(ctx context.Context, client *http.Client, base, id string) (fleet.JobStatus, error) {
	var st fleet.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	if err := doJSON(client, req, &st); err != nil {
		return st, fmt.Errorf("fetching job %s status: %w", id, err)
	}
	return st, nil
}

// doJSON performs the request and decodes a JSON response, surfacing the
// coordinator's structured {"error": ...} body on non-2xx statuses.
func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, ae.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
