#!/usr/bin/env python3
"""Assertions for the external-workload smoke (make smoke-extern / CI).

Usage: extern_smoke_check.py ANALYSIS.json BENCH_OUT.json

The smoke (testdata/extern-smoke.yaml) fits the power model on kernel sweeps
against a planted mock model, runs the bundled externstress binary as an
external workload under the same meter, and analyzes the store with
--validate --roofline. This script asserts the PR's acceptance criterion —
the model predicts every workload configuration's power within 5% aggregate
MAPE — plus the structural invariants (every workload row predicted, the
roofline placed every point), and writes the comparison as the BENCH_extern
artifact CI publishes.
"""
import json
import sys

MAPE_LIMIT_PCT = 5.0


def main(analysis_path, bench_out):
    analysis = json.load(open(analysis_path))

    v = analysis.get("validation")
    assert v, f"analysis carries no validation section: {sorted(analysis)}"
    rows = v["workloads"]
    assert rows, "validation has no workload rows"
    failed = [w for w in rows if w.get("error")]
    assert not failed, f"workload rows failed to predict: {failed}"
    assert v["predicted"] == len(rows), (v["predicted"], len(rows))
    assert v["mape_pct"] < MAPE_LIMIT_PCT, (
        f"power MAPE {v['mape_pct']:.3f}% is not below {MAPE_LIMIT_PCT}%"
    )
    assert v["energy_mape_pct"] < MAPE_LIMIT_PCT, (
        f"energy MAPE {v['energy_mape_pct']:.3f}% is not below {MAPE_LIMIT_PCT}%"
    )
    for w in rows:
        assert w["measured_w"] > 0 and w["predicted_w"] > 0, w

    rf = analysis.get("roofline")
    assert rf, f"analysis carries no roofline section: {sorted(analysis)}"
    points = rf["points"]
    assert len(points) == len(rows), (len(points), len(rows))
    unplaced = [p for p in points if p.get("error")]
    assert not unplaced, f"roofline points failed to place: {unplaced}"
    assert rf.get("peak_instr_per_sec", 0) > 0, rf
    assert rf.get("ceilings_bytes_per_sec", {}).get("dram", 0) > 0, rf
    for p in points:
        assert p.get("bound") in ("compute", "memory"), p

    summary = {
        "workloads": len(rows),
        "power_mape_pct": round(v["mape_pct"], 4),
        "energy_mape_pct": round(v["energy_mape_pct"], 4),
        "mape_limit_pct": MAPE_LIMIT_PCT,
        "per_workload": [
            {
                "label": w["label"],
                "measured_w": round(w["measured_w"], 3),
                "predicted_w": round(w["predicted_w"], 3),
                "power_err_pct": round(w["power_err_pct"], 4),
                "energy_err_pct": round(w.get("energy_err_pct", 0), 4),
                "bound": p.get("bound"),
                "intensity_instr_per_byte": round(
                    p.get("intensity_instr_per_byte", 0), 2
                ),
            }
            for w, p in zip(rows, points)
        ],
        "roofline": {
            "ceilings_bytes_per_sec": rf["ceilings_bytes_per_sec"],
            "peak_instr_per_sec": rf["peak_instr_per_sec"],
            "ridge_instr_per_byte": rf.get("ridge_instr_per_byte"),
        },
    }
    with open(bench_out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print(
        f"extern smoke OK: {len(rows)} workload configurations predicted, "
        f"power MAPE {summary['power_mape_pct']}% / energy MAPE "
        f"{summary['energy_mape_pct']}% (< {MAPE_LIMIT_PCT}%; wrote {bench_out})"
    )


if __name__ == "__main__":
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    main(*sys.argv[1:])
