#!/usr/bin/env python3
"""Assertions for the adaptive-planner smoke (make smoke-planner / CI).

Usage: planner_smoke_check.py ACTIVE_REPORT.json ALL_ANALYSIS.json BENCH_OUT.json

The smoke runs the same planted-mock-model grid twice: adaptively
(testdata/planner-active.yaml, whose planner report is the first argument)
and exhaustively (testdata/planner-all.yaml, analyzed into the second). This
script asserts the PR's acceptance criterion — the active planner converged
using at most half of the exhaustive grid's trials with every coefficient
(and the intercept) within 5% of the exhaustive fit — and writes the
trials-to-convergence / coefficient-error comparison as the BENCH_planner
artifact CI publishes.
"""
import json
import sys

TOLERANCE = 0.05  # max relative deviation from the exhaustive fit


def main(report_path, analysis_path, bench_out):
    report = json.load(open(report_path))
    analysis = json.load(open(analysis_path))

    assert report["algo"] == "active", report["algo"]
    assert report["converged"], f"planner did not converge: {report}"
    grid = report["grid_trials"]
    ran = report["ran_trials"]
    assert analysis["observations"] == grid, (
        f"exhaustive leg fitted {analysis['observations']} observations, grid is {grid}"
    )
    assert 2 * ran <= grid, f"planner ran {ran} of {grid} trials, more than half the grid"

    active_fit = report["fit"]
    full_fit = analysis["fit"]
    errors = {}

    def check(name, got, want):
        assert want != 0, f"{name}: exhaustive estimate is 0"
        rel = abs(got - want) / abs(want)
        errors[name] = rel
        assert rel <= TOLERANCE, (
            f"{name}: adaptive {got} vs exhaustive {want} differs by {rel:.2%} (> {TOLERANCE:.0%})"
        )

    check("p_static", active_fit["p_static_w"], full_fit["p_static_w"])
    full_coeffs = full_fit["coeff_w_per_thread"]
    active_coeffs = active_fit["coeff_w_per_thread"]
    assert set(active_coeffs) == set(full_coeffs), (
        f"coefficient sets differ: {sorted(active_coeffs)} vs {sorted(full_coeffs)}"
    )
    for comp, want in full_coeffs.items():
        check(comp, active_coeffs[comp], want)

    summary = {
        "grid_trials": grid,
        "active_trials": ran,
        "trial_reduction_pct": round(100 * (1 - ran / grid), 1),
        "rounds": len(report["rounds"]),
        "converged": report["converged"],
        "max_rse": report.get("max_rse"),
        "target_rse": report.get("target_rse"),
        "worst_coeff_error_pct": round(100 * max(errors.values()), 3),
        "coeff_errors_pct": {k: round(100 * v, 3) for k, v in sorted(errors.items())},
        "active_fit": {"p_static_w": active_fit["p_static_w"], **active_coeffs},
        "exhaustive_fit": {"p_static_w": full_fit["p_static_w"], **full_coeffs},
    }
    with open(bench_out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print(
        f"planner smoke OK: converged in {ran}/{grid} trials "
        f"({summary['trial_reduction_pct']}% fewer), worst coefficient error "
        f"{summary['worst_coeff_error_pct']}% (wrote {bench_out})"
    )


if __name__ == "__main__":
    if len(sys.argv) != 4:
        sys.exit(__doc__.strip())
    main(*sys.argv[1:])
