#!/bin/sh
# Fleet smoke: the distributed tier end to end, on one machine.
#
# A coordinator (`energybench serve`) and two local agents run the same
# checked-in campaign the single-host CI smoke uses (testdata/smoke.yaml).
# The acceptance criterion is exactness, not just liveness: the merged
# fleet store's key set, with the |h:host|u:microarch suffix stripped,
# must equal the key set a serial single-host run of the same campaign
# produces — no trial lost, none duplicated, none invented. The job's
# dispatch-latency stats are published as BENCH_fleet.json.
#
# Run from the repo root after `go build -o bin/energybench ./cmd/energybench`
# (or via `make smoke-fleet`, which builds first).
set -eu

BIN=${BIN:-./bin/energybench}
SCRATCH=.scratch
FLEET=$SCRATCH/fleet
rm -rf "$FLEET"
mkdir -p "$FLEET"

# Serial reference leg: the same campaign, one host, no fleet. Its store
# path is fixed by the campaign file (.scratch/smoke-results.jsonl); remove
# any previous run so resume can't skew the reference key set.
rm -f "$SCRATCH/smoke-results.jsonl"
"$BIN" run --campaign testdata/smoke.yaml > /dev/null
"$BIN" store query --db="$SCRATCH/smoke-results.jsonl" --keys > "$FLEET/serial-keys.json"

COORD_PID=
AGENT_A=
AGENT_B=
cleanup() {
	for pid in $COORD_PID $AGENT_A $AGENT_B; do
		kill "$pid" 2>/dev/null || true
	done
}
trap cleanup EXIT INT TERM

# Coordinator on an ephemeral port; --addr-file tells us where it landed.
"$BIN" serve --listen=127.0.0.1:0 --data="$FLEET/coord" \
	--addr-file="$FLEET/addr" --lease-ttl=15s --batch=3 \
	2> "$FLEET/coord.log" &
COORD_PID=$!
i=0
while [ ! -s "$FLEET/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "coordinator never wrote $FLEET/addr" >&2
		cat "$FLEET/coord.log" >&2
		exit 1
	fi
	sleep 0.1
done
URL=$(cat "$FLEET/addr")
echo "fleet smoke: coordinator at $URL"

# Two agents under distinct host names, polling fast so the smoke is quick.
# --cpus=8 overrides the detected CPU count so the campaign's widest trials
# (the 2+2-thread co-run) stay routable even on a small CI runner.
"$BIN" agent --coordinator="$URL" --name=fleet-a --poll=100ms --cpus=8 2> "$FLEET/agent-a.log" &
AGENT_A=$!
"$BIN" agent --coordinator="$URL" --name=fleet-b --poll=100ms --cpus=8 2> "$FLEET/agent-b.log" &
AGENT_B=$!

# Submit the campaign and block until the job finishes (submit exits
# non-zero if any trial permanently failed or the planner errored).
"$BIN" submit --coordinator="$URL" --campaign testdata/smoke.yaml \
	--wait --timeout=120s > "$FLEET/status.json" || {
	echo "fleet job failed; coordinator log:" >&2
	cat "$FLEET/coord.log" >&2
	exit 1
}

# The merged store is the job's store under the coordinator's data dir.
"$BIN" store query --db="$FLEET/coord/jobs/j0001/store" --keys > "$FLEET/fleet-keys.json"

python3 scripts/fleet_smoke_check.py \
	"$FLEET/fleet-keys.json" "$FLEET/serial-keys.json" "$FLEET/status.json" \
	BENCH_fleet.json
