#!/usr/bin/env python3
"""Assertions for the time-resolved sampling smoke (make smoke-sampling / CI).

Usage: sampling_smoke_check.py STORE.jsonl PHASES.json BENCH_OUT.json

The smoke sweep runs the mock meter with a planted power schedule (42 W until
0.1 s after the meter epoch, 20 W after) and --sample-interval=10ms. This
script verifies the stored records are schema v3 with a non-empty series on
every sample, that the phase analysis found the planted regime change in the
first repetition (the only one whose window spans the schedule boundary — the
mock epoch is rep 0's before-read), and writes a small machine-readable
summary for the CI artifact.

Bounds are deliberately generous on point counts: on a loaded or single-CPU
runner the sampler goroutine competes with the spinning kernel and ticker
ticks coalesce.
"""
import json
import sys


def main(store_path, phases_path, bench_out):
    records = [json.loads(line) for line in open(store_path)]
    assert records, "store is empty"
    total_points = 0
    for rec in records:
        assert rec["v"] == 3, f"record schema v{rec['v']}, want 3"
        result = rec["result"]
        assert result.get("sample_interval_ns") == 10_000_000, result.get("sample_interval_ns")
        samples = result["samples"]
        assert samples, "no samples stored"
        for i, s in enumerate(samples):
            series = s.get("series")
            assert series, f"sample {i} has no series"
            assert series["interval_s"] == 0.01, series["interval_s"]
            points = series["points"]
            assert points, f"sample {i} series is empty"
            total_points += len(points)
            for pt in points:
                assert pt["t_s"] > 0, pt
                assert pt["domain_uj"], pt
                assert pt["power_w"] >= 0, pt

    phases_doc = json.load(open(phases_path))
    assert phases_doc["schema_version"] == 3, phases_doc["schema_version"]
    reports = phases_doc["reports"]
    assert reports, "phase analysis produced no reports"
    rep0 = next(r for r in reports if r["rep"] == 0)
    phases = rep0["phases"]
    assert len(phases) >= 2, f"rep 0 segmented into {len(phases)} phases, want >= 2 (planted 42W->20W)"
    first, last = phases[0], phases[-1]
    assert abs(first["mean_w"] - 42) < 4, f"first phase mean {first['mean_w']} W, want ~42"
    assert abs(last["mean_w"] - 20) < 4, f"last phase mean {last['mean_w']} W, want ~20"
    assert first["end_s"] <= last["start_s"], (first, last)

    summary = {
        "records": len(records),
        "total_series_points": total_points,
        "rep0_points": rep0["points"],
        "rep0_phases": len(phases),
        "rep0_phase_means_w": [round(p["mean_w"], 2) for p in phases],
        "rep0_boundary_s": round(last["start_s"], 4),
    }
    with open(bench_out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print("sampling smoke OK:", json.dumps(summary))


if __name__ == "__main__":
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    main(sys.argv[1], sys.argv[2], sys.argv[3])
