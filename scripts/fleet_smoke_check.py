#!/usr/bin/env python3
"""Acceptance checks for the fleet smoke (scripts/fleet_smoke.sh).

Usage: fleet_smoke_check.py FLEET_KEYS.json SERIAL_KEYS.json STATUS.json OUT.json

Asserts that the coordinator's merged store covers exactly the key set a
serial single-host run of the same campaign produces (after stripping the
fleet store's |h:host|u:microarch key suffix), that the job finished with
zero failed trials, and writes the job's dispatch-latency stats to OUT.json
(the BENCH_fleet.json artifact CI publishes).
"""

import json
import sys


def strip_host(key: str) -> str:
    """Drop the optional |h:host|u:microarch tail of a configuration key."""
    return key.split("|h:", 1)[0]


def main() -> None:
    fleet_keys_path, serial_keys_path, status_path, out_path = sys.argv[1:5]
    fleet_keys = json.load(open(fleet_keys_path))
    serial_keys = json.load(open(serial_keys_path))
    status = json.load(open(status_path))

    stripped = sorted({strip_host(k) for k in fleet_keys})
    serial = sorted(serial_keys)
    if stripped != serial:
        missing = sorted(set(serial) - set(stripped))
        extra = sorted(set(stripped) - set(serial))
        raise AssertionError(
            f"fleet key set != serial key set: missing={missing} extra={extra}"
        )

    hosts = sorted(
        {k.split("|h:", 1)[1].split("|", 1)[0] for k in fleet_keys if "|h:" in k}
    )
    assert hosts, "no host-stamped keys in the fleet store"
    assert status["finished"], f"job not finished: {status}"
    assert status["failed"] == 0, f"job has failed trials: {status.get('failures')}"
    assert status["done"] == status["trials"], status
    assert status["trials"] == len(serial), (
        f"planned {status['trials']} trials but serial run stored {len(serial)} keys"
    )

    doc = {
        "trials": status["trials"],
        "unique_keys": len(fleet_keys),
        "hosts": hosts,
        "batches": status.get("batches", 0),
        "redispatched": status.get("redispatched", 0),
        "duplicates": status.get("duplicates", 0),
        "dispatch_mean_ms": status.get("dispatch_mean_ms", 0.0),
        "dispatch_max_ms": status.get("dispatch_max_ms", 0.0),
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(
        f"fleet smoke OK: {doc['trials']} trials over hosts {hosts} in "
        f"{doc['batches']} batches, dispatch mean {doc['dispatch_mean_ms']:.1f} ms "
        f"(max {doc['dispatch_max_ms']:.1f} ms); wrote {out_path}"
    )


if __name__ == "__main__":
    main()
