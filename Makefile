# Targets mirror .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go
COVER_PKGS := ./internal/stats/... ./internal/meter/... ./internal/perf/... ./internal/model/... ./internal/store/... ./internal/harness/... ./internal/campaign/...
COVER_FLOOR := 70

# All transient outputs (coverage profiles, smoke stores, analysis JSON) land
# under this gitignored directory, so a full `make ci` leaves `git status`
# clean.
SCRATCH := .scratch

.PHONY: all ci build test lint staticcheck cover fuzz bench bench-json bench-store smoke smoke-sampling smoke-planner smoke-fleet smoke-extern docs-check clean

all: lint build test

# ci runs the same gates as the GitHub workflow; it must finish with a clean
# working tree (all droppings confined to $(SCRATCH)/ and other ignored paths).
ci: lint staticcheck docs-check build test fuzz cover smoke smoke-sampling smoke-planner smoke-fleet smoke-extern
	@dirty=$$(git status --porcelain); if [ -n "$$dirty" ]; then \
		echo "make ci left the tree dirty:" >&2; echo "$$dirty" >&2; exit 1; fi
	@echo "ci OK (tree clean)"

build:
	$(GO) build ./...
	$(GO) build -o bin/energybench ./cmd/energybench

test:
	$(GO) test -race -count=1 ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it); skip with a notice when
# the binary isn't on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

cover:
	@mkdir -p $(SCRATCH)
	$(GO) test -coverprofile=$(SCRATCH)/cover.out $(COVER_PKGS)
	$(GO) tool cover -func=$(SCRATCH)/cover.out
	@pct=$$($(GO) tool cover -func=$(SCRATCH)/cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$pct%"; \
	awk -v p="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { exit !(p + 0 >= floor) }' || { \
		echo "coverage $$pct% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s ./internal/bench

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/bench

# Machine-readable bench results, same artifact CI publishes per PR.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/bench | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@echo "wrote BENCH_kernels.json"

# The CI store scale smoke: a 50k-record synthetic corpus through the
# sharded store's append/query/compact lifecycle, self-verified, with the
# measured throughput written to BENCH_store.json (the artifact CI publishes).
bench-store: build
	@mkdir -p $(SCRATCH)
	rm -rf $(SCRATCH)/scale-store
	./bin/energybench store bench --db=$(SCRATCH)/scale-store --records=50000 > BENCH_store.json
	@echo "wrote BENCH_store.json"

# The CI campaign smoke: subprocess executor, core-leasing scheduler,
# --parallel 4, store + resume, then the analysis pipeline over the store —
# plus the mock-counter leg (run --counters → analyze --activity=counters).
smoke: build
	@mkdir -p $(SCRATCH)
	rm -f $(SCRATCH)/smoke-results.jsonl $(SCRATCH)/counter-smoke.jsonl
	./bin/energybench run --campaign testdata/smoke.yaml --progress > /dev/null
	./bin/energybench analyze --db=$(SCRATCH)/smoke-results.jsonl > /dev/null
	./bin/energybench compare --db=$(SCRATCH)/smoke-results.jsonl > /dev/null
	./bin/energybench run --specs=int-alu,chase-dram --threads=1,2 \
		--reps=2 --warmup=0 --iter-scale=0.05 \
		--counters=default --counter-backend=mock \
		--store=$(SCRATCH)/counter-smoke.jsonl > /dev/null
	./bin/energybench analyze --db=$(SCRATCH)/counter-smoke.jsonl --activity=counters > /dev/null
	@echo "smoke campaign OK ($$(wc -l < $(SCRATCH)/smoke-results.jsonl) stored results, $$(wc -l < $(SCRATCH)/counter-smoke.jsonl) with counters)"

# The CI sampling smoke: a time-resolved sweep against the mock meter with a
# planted two-phase power schedule, then the phase/throttle analysis over the
# stored series. Mirrors the sampling-smoke CI job; assertions live in
# scripts/sampling_smoke_check.py.
smoke-sampling: build
	@mkdir -p $(SCRATCH)
	rm -f $(SCRATCH)/sampling-smoke.jsonl
	./bin/energybench run --meter=mock --mock-watts=42 --mock-schedule=0.1:20 \
		--specs=int-alu --threads=1 --reps=2 --warmup=0 --iter-scale=60 \
		--sample-interval=10ms \
		--store=$(SCRATCH)/sampling-smoke.jsonl > /dev/null
	./bin/energybench analyze --db=$(SCRATCH)/sampling-smoke.jsonl --phases > $(SCRATCH)/sampling-phases.json
	python3 scripts/sampling_smoke_check.py $(SCRATCH)/sampling-smoke.jsonl $(SCRATCH)/sampling-phases.json BENCH_sampling.json
	@echo "sampling smoke OK (wrote BENCH_sampling.json)"

# The CI planner smoke: the adaptive (algo active) campaign vs the
# exhaustive sweep of the same planted-model grid. Mirrors the planner-smoke
# CI job; the acceptance assertions (≤ half the grid's trials, every
# coefficient within 5% of the exhaustive fit) live in
# scripts/planner_smoke_check.py, which writes BENCH_planner.json.
smoke-planner: build
	@mkdir -p $(SCRATCH)
	rm -f $(SCRATCH)/planner-active.jsonl $(SCRATCH)/planner-all.jsonl
	./bin/energybench run --campaign testdata/planner-active.yaml > $(SCRATCH)/planner-report.json
	./bin/energybench run --campaign testdata/planner-all.yaml > /dev/null
	./bin/energybench analyze --db=$(SCRATCH)/planner-all.jsonl > $(SCRATCH)/planner-all-analysis.json
	python3 scripts/planner_smoke_check.py $(SCRATCH)/planner-report.json $(SCRATCH)/planner-all-analysis.json BENCH_planner.json

# The CI extern smoke: fit the model on kernels against a planted mock
# model, run the bundled externstress binary as an external workload under
# the same meter (built into $(SCRATCH) by the campaign's build step), then
# analyze with --validate --roofline. scripts/extern_smoke_check.py asserts
# aggregate MAPE < 5% and writes BENCH_extern.json (the artifact CI
# publishes).
smoke-extern: build
	@mkdir -p $(SCRATCH)
	rm -f $(SCRATCH)/extern-smoke.jsonl
	./bin/energybench run --campaign testdata/extern-smoke.yaml --progress > /dev/null
	./bin/energybench analyze --db=$(SCRATCH)/extern-smoke.jsonl --validate --roofline > $(SCRATCH)/extern-analysis.json
	python3 scripts/extern_smoke_check.py $(SCRATCH)/extern-analysis.json BENCH_extern.json

# The CI fleet smoke: a coordinator plus two local agents run the same
# campaign the single-host smoke uses, and the merged store's key set
# (host-stripped) must equal the serial run's key set exactly. Assertions
# live in scripts/fleet_smoke_check.py, which writes BENCH_fleet.json.
smoke-fleet: build
	@mkdir -p $(SCRATCH)
	./scripts/fleet_smoke.sh

# Every internal package must carry its package comment in a doc.go, so
# `go doc` has one canonical place to find it (CI runs the same check).
docs-check:
	@missing=""; for d in internal/*/; do \
		[ -f "$$d/doc.go" ] || missing="$$missing $$d"; done; \
	if [ -n "$$missing" ]; then \
		echo "internal packages missing doc.go:$$missing" >&2; exit 1; fi
	@echo "docs-check OK (every internal package has a doc.go)"

clean:
	rm -rf bin $(SCRATCH) cover.out BENCH_kernels.json BENCH_store.json BENCH_sampling.json BENCH_planner.json BENCH_fleet.json BENCH_extern.json scale-store smoke-results.jsonl counter-smoke.jsonl counter-analysis.json
