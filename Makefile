# Targets mirror .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go
COVER_PKGS := ./internal/stats/... ./internal/meter/... ./internal/perf/... ./internal/model/... ./internal/store/... ./internal/harness/... ./internal/campaign/...
COVER_FLOOR := 70

.PHONY: all build test lint staticcheck cover fuzz bench bench-json bench-store smoke clean

all: lint build test

build:
	$(GO) build ./...
	$(GO) build -o bin/energybench ./cmd/energybench

test:
	$(GO) test -race -count=1 ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it); skip with a notice when
# the binary isn't on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	$(GO) tool cover -func=cover.out
	@pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$pct%"; \
	awk -v p="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { exit !(p + 0 >= floor) }' || { \
		echo "coverage $$pct% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s ./internal/bench

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/bench

# Machine-readable bench results, same artifact CI publishes per PR.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/bench | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@echo "wrote BENCH_kernels.json"

# The CI store scale smoke: a 50k-record synthetic corpus through the
# sharded store's append/query/compact lifecycle, self-verified, with the
# measured throughput written to BENCH_store.json (the artifact CI publishes).
bench-store: build
	rm -rf scale-store
	./bin/energybench store bench --db=scale-store --records=50000 > BENCH_store.json
	@echo "wrote BENCH_store.json"

# The CI campaign smoke: subprocess executor, core-leasing scheduler,
# --parallel 4, store + resume, then the analysis pipeline over the store —
# plus the mock-counter leg (run --counters → analyze --activity=counters).
smoke: build
	rm -f smoke-results.jsonl counter-smoke.jsonl
	./bin/energybench run --campaign testdata/smoke.yaml --progress > /dev/null
	./bin/energybench analyze --db=smoke-results.jsonl > /dev/null
	./bin/energybench compare --db=smoke-results.jsonl > /dev/null
	./bin/energybench run --specs=int-alu,chase-dram --threads=1,2 \
		--reps=2 --warmup=0 --iter-scale=0.05 \
		--counters=default --counter-backend=mock \
		--store=counter-smoke.jsonl > /dev/null
	./bin/energybench analyze --db=counter-smoke.jsonl --activity=counters > /dev/null
	@echo "smoke campaign OK ($$(wc -l < smoke-results.jsonl) stored results, $$(wc -l < counter-smoke.jsonl) with counters)"

clean:
	rm -rf bin cover.out BENCH_kernels.json BENCH_store.json scale-store smoke-results.jsonl counter-smoke.jsonl counter-analysis.json
