# Targets mirror .github/workflows/ci.yml so local runs and CI stay in sync.

GO ?= go
COVER_PKGS := ./internal/stats/... ./internal/meter/... ./internal/model/... ./internal/store/... ./internal/harness/...
COVER_FLOOR := 70

.PHONY: all build test lint cover fuzz bench clean

all: lint build test

build:
	$(GO) build ./...
	$(GO) build -o bin/energybench ./cmd/energybench

test:
	$(GO) test -race -count=1 ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	$(GO) tool cover -func=cover.out
	@pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$pct%"; \
	awk -v p="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { exit !(p + 0 >= floor) }' || { \
		echo "coverage $$pct% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s ./internal/bench

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/bench

clean:
	rm -rf bin cover.out
