module energybench

go 1.22
