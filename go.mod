module energybench

go 1.23
