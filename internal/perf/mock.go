package perf

import (
	"fmt"
	"sync"
	"time"
)

// mockRates plants per-component event rates in events/second. The rows are
// keyed by the workload hint OpenThread receives (the benchmark kernel's
// component name), so every kernel in the catalog produces a distinct,
// physically plausible activity signature: compute kernels retire many
// instructions and miss no caches, the DRAM chase retires few instructions
// and turns almost every one into an LLC miss. Rates are per thread;
// downstream rate-based activity therefore scales linearly with thread
// count, exactly like the nominal model's thread-count activity.
var mockRates = map[string]map[string]float64{
	"int-alu": {"instructions": 3.2e9, "l1d-loads": 1e7, "l1d-misses": 1e4, "cache-refs": 5e3, "llc-misses": 1e3, "stalled-backend": 1e7},
	"fpu":     {"instructions": 2.8e9, "l1d-loads": 1e7, "l1d-misses": 1e4, "cache-refs": 5e3, "llc-misses": 1e3, "stalled-backend": 5e7},
	"l1":      {"instructions": 2.4e9, "l1d-loads": 2.4e9, "l1d-misses": 1e5, "cache-refs": 1e4, "llc-misses": 2e3, "stalled-backend": 1e8},
	"l2":      {"instructions": 9e8, "l1d-loads": 9e8, "l1d-misses": 8.5e8, "cache-refs": 1e5, "llc-misses": 1e4, "stalled-backend": 1.4e9},
	"l3":      {"instructions": 3.5e8, "l1d-loads": 3.5e8, "l1d-misses": 3.3e8, "cache-refs": 3.3e8, "llc-misses": 1e6, "stalled-backend": 1.7e9},
	"dram":    {"instructions": 6e7, "l1d-loads": 6e7, "l1d-misses": 5.8e7, "cache-refs": 5.8e7, "llc-misses": 5.5e7, "stalled-backend": 1.9e9},
	"mixed":   {"instructions": 1.8e9, "l1d-loads": 9e8, "l1d-misses": 4e8, "cache-refs": 1e5, "llc-misses": 1e4, "stalled-backend": 6e8},
}

// mockDefaultRates backs events (or workloads) the table above does not
// name, so every catalog event always counts something.
var mockDefaultRates = map[string]float64{
	"instructions":     1.0e9,
	"cycles":           2.5e9,
	"cache-refs":       2e6,
	"llc-misses":       1e5,
	"branches":         1e8,
	"branch-misses":    1e6,
	"stalled-frontend": 1e8,
	"stalled-backend":  2e8,
	"l1d-loads":        5e8,
	"l1d-misses":       1e6,
	"llc-loads":        2e6,
	"llc-load-misses":  1e5,
}

// MockRate returns the planted events/second rate the mock backend counts
// for one event under one workload. Planted-rate tests use it as the ground
// truth the pipeline must recover.
func MockRate(workload, event string) float64 {
	if r, ok := mockRates[workload][event]; ok {
		return r
	}
	// Every workload runs at the same mock clock frequency.
	return mockDefaultRates[event]
}

// Mock is a deterministic ActivityMeter: a session's counts are exactly
// MockRate(workload, event) × elapsed wall time, so measured event *rates*
// reproduce the planted table no matter how long a repetition runs.
type Mock struct {
	// RunningFraction simulates counter multiplexing: sessions report
	// time_running = fraction × time_enabled with raw counts shrunk to
	// match, so only multiplex *scaling* recovers the planted rate. Values
	// outside (0, 1] mean no multiplexing.
	RunningFraction float64

	events []string
	now    func() time.Time
}

// NewMock returns a mock meter counting the given (already normalized)
// event names.
func NewMock(events []string) *Mock {
	return &Mock{events: events, now: time.Now}
}

// NewMockWithClock returns a mock meter driven by an explicit clock for
// fully deterministic tests.
func NewMockWithClock(events []string, clock func() time.Time) *Mock {
	return &Mock{events: events, now: clock}
}

func (m *Mock) Name() string     { return BackendMock }
func (m *Mock) Events() []string { return m.events }

// OpenThread opens a deterministic session for the workload. cpu is
// recorded only for symmetry with the perf backend.
func (m *Mock) OpenThread(_ int, workload string) (Session, error) {
	return &mockSession{
		m:        m,
		workload: workload,
		last:     Counts{Values: make([]EventCount, len(m.events))},
	}, nil
}

// OpenTask opens a deterministic session for an external workload's task.
// The mock has no real process to attach to, so the session behaves exactly
// like an OpenThread session: planted rate × elapsed time under the workload
// hint (the external workload's dominant component name).
func (m *Mock) OpenTask(_, _ int, workload string) (Session, error) {
	return m.OpenThread(-1, workload)
}

type mockSession struct {
	m        *Mock
	workload string

	mu      sync.Mutex
	start   time.Time
	running bool
	closed  bool
	last    Counts // most recent full reading, served by Poll when stopped
}

func (s *mockSession) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("perf: mock session is closed")
	}
	s.start = s.m.now()
	s.running = true
	return nil
}

func (s *mockSession) Stop() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Counts{}, fmt.Errorf("perf: mock session is closed")
	}
	if !s.running {
		return Counts{}, fmt.Errorf("perf: mock session stopped without a start")
	}
	s.running = false
	c := s.countsLocked(s.m.now().Sub(s.start))
	s.last = c
	return c, nil
}

// Poll returns the counts accumulated so far in the current repetition
// without stopping the session; on a stopped or closed session it returns
// the last full reading, mirroring the perf backend's frozen counters.
func (s *mockSession) Poll() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return s.last, nil
	}
	return s.countsLocked(s.m.now().Sub(s.start)), nil
}

// countsLocked computes the planted-rate counts for one elapsed window.
// Callers hold s.mu.
func (s *mockSession) countsLocked(elapsed time.Duration) Counts {
	enabledNS := uint64(elapsed.Nanoseconds())
	frac := s.m.RunningFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	runningNS := uint64(float64(enabledNS) * frac)
	c := Counts{Values: make([]EventCount, len(s.m.events))}
	for i, ev := range s.m.events {
		full := MockRate(s.workload, ev) * elapsed.Seconds()
		raw := uint64(full * frac)
		c.Values[i] = EventCount{
			Raw:           raw,
			Scaled:        scaleCount(raw, enabledNS, runningNS),
			TimeEnabledNS: enabledNS,
			TimeRunningNS: runningNS,
		}
	}
	return c
}

func (s *mockSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
