package perf

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	got, err := Spec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != BackendPerf {
		t.Errorf("default backend = %q, want %q", got.Backend, BackendPerf)
	}
	if !reflect.DeepEqual(got.Events, DefaultEvents()) {
		t.Errorf("default events = %v, want %v", got.Events, DefaultEvents())
	}
}

func TestSpecNormalizeExpandsDefaultToken(t *testing.T) {
	got, err := Spec{Backend: BackendMock, Events: []string{"branches", "default", "instructions"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{"branches"}, DefaultEvents()...)
	if !reflect.DeepEqual(got.Events, want) {
		t.Errorf("events = %v, want %v (default expanded in place, duplicates dropped)", got.Events, want)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Backend: "rdpmc"},
		{Events: []string{"tlb-misses"}},
		{Backend: BackendMock, Events: []string{""}},
	}
	for _, spec := range cases {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("Normalize(%+v): want error", spec)
		}
	}
}

func TestSpecNormalizeDedups(t *testing.T) {
	got, err := Spec{Backend: BackendMock, Events: []string{"cycles", "instructions", "cycles"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"cycles", "instructions"}; !reflect.DeepEqual(got.Events, want) {
		t.Errorf("events = %v, want %v", got.Events, want)
	}
}

func TestScaleCount(t *testing.T) {
	if got := scaleCount(100, 1000, 500); got != 200 {
		t.Errorf("scaleCount(100, 1000, 500) = %v, want 200", got)
	}
	if got := scaleCount(100, 1000, 1000); got != 100 {
		t.Errorf("unmultiplexed scaleCount = %v, want 100", got)
	}
	if got := scaleCount(100, 1000, 0); got != 0 {
		t.Errorf("never-scheduled scaleCount = %v, want 0", got)
	}
	c := EventCount{TimeEnabledNS: 1000, TimeRunningNS: 500}
	if !c.Multiplexed() {
		t.Error("partially-run count should report Multiplexed")
	}
	c.TimeRunningNS = 1000
	if c.Multiplexed() {
		t.Error("fully-run count should not report Multiplexed")
	}
}

// TestMockDeterministicCounts drives a mock session with an explicit clock:
// counts must be exactly planted rate × elapsed and rates recover the table.
func TestMockDeterministicCounts(t *testing.T) {
	clock := time.Unix(0, 0)
	m := NewMockWithClock([]string{"instructions", "llc-misses"}, func() time.Time { return clock })
	sess, err := m.OpenThread(3, "dram")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(250 * time.Millisecond)
	counts, err := sess.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts.Values) != 2 {
		t.Fatalf("got %d values, want 2", len(counts.Values))
	}
	wantInstr := MockRate("dram", "instructions") * 0.25
	if got := counts.Values[0].Scaled; math.Abs(got-wantInstr) > 1 {
		t.Errorf("instructions = %v, want %v", got, wantInstr)
	}
	wantMiss := MockRate("dram", "llc-misses") * 0.25
	if got := counts.Values[1].Scaled; math.Abs(got-wantMiss) > 1 {
		t.Errorf("llc-misses = %v, want %v", got, wantMiss)
	}
	if counts.Values[0].Multiplexed() {
		t.Error("unmultiplexed mock count reported Multiplexed")
	}
}

// TestMockMultiplexScalingRecoversRate: with RunningFraction set the raw
// counts shrink, the session reports partial running time, and only the
// scaling correction recovers the planted rate — the same arithmetic the
// perf backend applies to genuinely multiplexed counters.
func TestMockMultiplexScalingRecoversRate(t *testing.T) {
	clock := time.Unix(100, 0)
	m := NewMockWithClock([]string{"instructions"}, func() time.Time { return clock })
	m.RunningFraction = 0.25
	sess, err := m.OpenThread(-1, "int-alu")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	counts, err := sess.Stop()
	if err != nil {
		t.Fatal(err)
	}
	v := counts.Values[0]
	if !v.Multiplexed() {
		t.Fatal("fractional running time should report Multiplexed")
	}
	full := MockRate("int-alu", "instructions")
	if got := float64(v.Raw); math.Abs(got-full*0.25) > 1 {
		t.Errorf("raw = %v, want %v (a quarter of the planted rate)", got, full*0.25)
	}
	if math.Abs(v.Scaled-full) > full*1e-6 {
		t.Errorf("scaled = %v, want %v (planted rate recovered)", v.Scaled, full)
	}
}

func TestMockSessionMisuse(t *testing.T) {
	m := NewMock([]string{"cycles"})
	sess, err := m.OpenThread(-1, "l1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stop(); err == nil {
		t.Error("Stop before Start should fail")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err == nil {
		t.Error("Start after Close should fail")
	}
}

func TestMockRateFallbacks(t *testing.T) {
	if MockRate("int-alu", "cycles") != mockDefaultRates["cycles"] {
		t.Error("event missing from a workload row should use the default rate")
	}
	if MockRate("no-such-workload", "instructions") != mockDefaultRates["instructions"] {
		t.Error("unknown workload should use the default rates")
	}
	// Every cataloged event has a default rate, so the mock always counts.
	for name := range eventDefs {
		if MockRate("unknown", name) <= 0 {
			t.Errorf("event %s has no positive default mock rate", name)
		}
	}
}

func TestNewMeterMockAndUnknown(t *testing.T) {
	m, err := NewMeter(Spec{Backend: BackendMock})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != BackendMock {
		t.Errorf("backend = %q, want mock", m.Name())
	}
	if !reflect.DeepEqual(m.Events(), DefaultEvents()) {
		t.Errorf("events = %v, want defaults", m.Events())
	}
	if _, err := NewMeter(Spec{Backend: "quantum"}); err == nil {
		t.Error("unknown backend should fail")
	}
}

// TestPerfBackendCountsInstructions exercises the real perf_event_open path
// when the host allows self-profiling; elsewhere it verifies the probe
// reports a useful error and skips.
func TestPerfBackendCountsInstructions(t *testing.T) {
	if err := Available(); err != nil {
		t.Skipf("perf backend unavailable on this host: %v", err)
	}
	m, err := NewMeter(Spec{Backend: BackendPerf, Events: []string{"instructions", "cycles"}})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.OpenThread(-1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	// Any nontrivial user-space loop retires instructions.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i * i
	}
	counts, err := sess.Stop()
	if err != nil {
		t.Fatal(err)
	}
	_ = sum
	if len(counts.Values) != 2 {
		t.Fatalf("got %d values, want 2", len(counts.Values))
	}
	if counts.Values[0].Scaled <= 0 {
		t.Errorf("instructions = %v, want > 0 after a million-iteration loop", counts.Values[0].Scaled)
	}
	if counts.Values[0].TimeEnabledNS == 0 {
		t.Error("time_enabled should be nonzero")
	}

	// A second Start/Stop pair on the same session must reset cleanly.
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	counts2, err := sess.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if counts2.Values[0].Scaled > counts.Values[0].Scaled {
		t.Errorf("near-empty second region counted %v instructions, more than the loop's %v — reset failed",
			counts2.Values[0].Scaled, counts.Values[0].Scaled)
	}
}

// TestMockPollMidRepetition: Poll observes counts accumulating while the
// session runs, and freezes at the Stop value afterwards — the contract the
// in-trial sampler depends on.
func TestMockPollMidRepetition(t *testing.T) {
	clock := time.Unix(0, 0)
	m := NewMockWithClock([]string{"instructions"}, func() time.Time { return clock })
	sess, err := m.OpenThread(0, "int-alu")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p, ok := sess.(Poller)
	if !ok {
		t.Fatal("mock session does not implement Poller")
	}

	// Before any Start: zeros, not an error.
	c, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Values[0].Scaled; got != 0 {
		t.Errorf("pre-start Poll = %v, want 0", got)
	}

	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(100 * time.Millisecond)
	c, err = p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	want := MockRate("int-alu", "instructions") * 0.1
	if got := c.Values[0].Scaled; math.Abs(got-want) > 1 {
		t.Errorf("mid-rep Poll = %v, want %v", got, want)
	}

	clock = clock.Add(100 * time.Millisecond)
	stopC, err := sess.Stop()
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Hour) // time after Stop must not count
	c, err = p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Values[0].Scaled, stopC.Values[0].Scaled; got != want {
		t.Errorf("post-stop Poll = %v, want frozen Stop value %v", got, want)
	}
	sess.Close()
	if c, err = p.Poll(); err != nil {
		t.Fatalf("Poll after Close: %v", err)
	}
	if got, want := c.Values[0].Scaled, stopC.Values[0].Scaled; got != want {
		t.Errorf("post-close Poll = %v, want frozen Stop value %v", got, want)
	}
}

// TestMockOpenTask pins the TaskMeter extension the external-workload
// executor attaches with: an OpenTask session must be a full mock session —
// planted rate × elapsed time under the workload hint — so extern trials
// against the mock backend recover the same rates kernel trials do.
func TestMockOpenTask(t *testing.T) {
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	m := NewMockWithClock([]string{"instructions", "llc-misses"}, clock)

	var tm TaskMeter = m // the mock must satisfy the extension
	s, err := tm.OpenTask(4321, -1, "int-alu")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(250 * time.Millisecond)
	counts, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts.Values) != 2 {
		t.Fatalf("counted %d events, want 2", len(counts.Values))
	}
	for i, ev := range []string{"instructions", "llc-misses"} {
		want := MockRate("int-alu", ev) * 0.25
		if got := counts.Values[i].Scaled; math.Abs(got-want) > want*1e-9+1 {
			t.Errorf("%s = %g, want %g (planted rate × 0.25 s)", ev, got, want)
		}
	}
}
