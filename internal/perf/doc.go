// Package perf measures per-thread hardware activity with performance
// counters, turning "this trial ran kernel X" into "this trial retired N
// instructions and missed the L1 M times per second". The source paper's
// power model regresses energy against *measured* per-component activity
// factors, not workload labels; this package supplies those measurements.
//
// Two backends implement the ActivityMeter interface: a Linux
// perf_event_open backend (raw syscall, one grouped FD set per worker
// thread, counts read with time_enabled/time_running so multiplexed
// counters are scaled) and a deterministic mock whose planted per-component
// event rates let CI and non-Linux hosts exercise the entire
// counters-to-coefficients pipeline.
package perf
