//go:build !linux

package perf

import (
	"fmt"
	"runtime"
)

// newPlatformMeter on non-Linux hosts always fails: perf_event_open is a
// Linux syscall. The mock backend remains available everywhere.
func newPlatformMeter([]string) (ActivityMeter, error) {
	return nil, fmt.Errorf("perf: the %q backend requires Linux perf_event_open (running on %s); use the mock backend", BackendPerf, runtime.GOOS)
}
