package perf

import (
	"fmt"
	"sort"
)

// Backend names for Spec.Backend.
const (
	// BackendPerf is the Linux perf_event_open backend. Requires Linux with
	// kernel.perf_event_paranoid <= 2 (self-profiling) or CAP_PERFMON.
	BackendPerf = "perf"
	// BackendMock is the deterministic mock backend: planted per-component
	// event rates, available everywhere.
	BackendMock = "mock"
)

// eventDef describes one hardware event in perf_event_open terms.
type eventDef struct {
	typ    uint32 // perf_event_attr.type
	config uint64 // perf_event_attr.config
	desc   string
}

// perf_event_open type and config constants (uapi/linux/perf_event.h).
const (
	perfTypeHardware uint32 = 0
	perfTypeHWCache  uint32 = 3

	hwCPUCycles            uint64 = 0
	hwInstructions         uint64 = 1
	hwCacheReferences      uint64 = 2
	hwCacheMisses          uint64 = 3
	hwBranchInstructions   uint64 = 4
	hwBranchMisses         uint64 = 5
	hwStalledCyclesFront   uint64 = 7
	hwStalledCyclesBackend uint64 = 8

	// HW_CACHE config = cache | (op << 8) | (result << 16); L1D = 0, LL = 2,
	// read op = 0, access result = 0, miss result = 1.
	hwCacheL1DReadAccess uint64 = 0x0
	hwCacheL1DReadMiss   uint64 = 0x10000
	hwCacheLLReadAccess  uint64 = 0x2
	hwCacheLLReadMiss    uint64 = 0x10002
)

// eventDefs is the event catalog: every name Spec.Events may use. The L2 has
// no generic perf event; L2 traffic is observed as L1D misses (L2 accesses)
// and LLC references (L2 misses that reach the LLC).
var eventDefs = map[string]eventDef{
	"instructions":     {perfTypeHardware, hwInstructions, "retired instructions"},
	"cycles":           {perfTypeHardware, hwCPUCycles, "CPU cycles"},
	"cache-refs":       {perfTypeHardware, hwCacheReferences, "last-level cache references (≈ L2 misses)"},
	"llc-misses":       {perfTypeHardware, hwCacheMisses, "last-level cache misses (DRAM accesses)"},
	"branches":         {perfTypeHardware, hwBranchInstructions, "retired branch instructions"},
	"branch-misses":    {perfTypeHardware, hwBranchMisses, "mispredicted branches"},
	"stalled-frontend": {perfTypeHardware, hwStalledCyclesFront, "cycles with no uops issued"},
	"stalled-backend":  {perfTypeHardware, hwStalledCyclesBackend, "cycles stalled on execution resources"},
	"l1d-loads":        {perfTypeHWCache, hwCacheL1DReadAccess, "L1D read accesses"},
	"l1d-misses":       {perfTypeHWCache, hwCacheL1DReadMiss, "L1D read misses (L2 accesses)"},
	"llc-loads":        {perfTypeHWCache, hwCacheLLReadAccess, "LLC read accesses"},
	"llc-load-misses":  {perfTypeHWCache, hwCacheLLReadMiss, "LLC read misses"},
}

// DefaultEvents is the event set used when a Spec names none: the paper's
// activity drivers — work retired, clock, cache-miss traffic per level, and
// backend stalls. Sized to fit one hardware counter group on typical x86
// PMUs (instructions and cycles land on fixed counters).
func DefaultEvents() []string {
	return []string{"instructions", "cycles", "l1d-misses", "llc-misses", "stalled-backend"}
}

// EventNames returns every known event name, sorted, for error messages and
// help text.
func EventNames() []string {
	names := make([]string, 0, len(eventDefs))
	for n := range eventDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec configures activity metering for a trial: which backend counts and
// which events it counts. The zero value is "no counters"; a Spec attached
// to a trial is normalized first, so serialized trials always carry the
// explicit backend and event list.
type Spec struct {
	// Backend is BackendPerf (default) or BackendMock.
	Backend string `json:"backend"`
	// Events are event-catalog names; the name "default" expands to
	// DefaultEvents(). Empty means DefaultEvents().
	Events []string `json:"events"`
}

// Normalize applies defaults ("perf" backend, default event set, "default"
// expansion), validates backend and event names, and drops duplicate events
// keeping first-appearance order.
func (s Spec) Normalize() (Spec, error) {
	out := Spec{Backend: s.Backend}
	if out.Backend == "" {
		out.Backend = BackendPerf
	}
	switch out.Backend {
	case BackendPerf, BackendMock:
	default:
		return out, fmt.Errorf("perf: unknown counter backend %q (want %s|%s)", out.Backend, BackendPerf, BackendMock)
	}
	names := s.Events
	if len(names) == 0 {
		names = []string{"default"}
	}
	seen := map[string]bool{}
	for _, n := range names {
		expanded := []string{n}
		if n == "default" {
			expanded = DefaultEvents()
		}
		for _, e := range expanded {
			if _, ok := eventDefs[e]; !ok {
				return out, fmt.Errorf("perf: unknown event %q (known: %v)", e, EventNames())
			}
			if seen[e] {
				continue
			}
			seen[e] = true
			out.Events = append(out.Events, e)
		}
	}
	return out, nil
}

// EventCount is one event's reading from one counting session. Raw is what
// the hardware counted while the event was actually scheduled on a counter;
// Scaled extrapolates it over the whole enabled window
// (raw × time_enabled / time_running), the standard correction for
// multiplexed counters.
type EventCount struct {
	Raw           uint64  `json:"raw"`
	Scaled        float64 `json:"scaled"`
	TimeEnabledNS uint64  `json:"time_enabled_ns"`
	TimeRunningNS uint64  `json:"time_running_ns"`
}

// Multiplexed reports whether the event was counter-multiplexed (scheduled
// for only part of the enabled window), i.e. Scaled is an extrapolation.
func (c EventCount) Multiplexed() bool {
	return c.TimeRunningNS < c.TimeEnabledNS
}

// scaleCount computes the multiplex-corrected count. An event that was never
// scheduled (running time zero) yields zero: there is nothing to extrapolate
// from, and callers see Multiplexed() == true when enabled time elapsed.
func scaleCount(raw, enabledNS, runningNS uint64) float64 {
	if runningNS == 0 {
		return 0
	}
	return float64(raw) * float64(enabledNS) / float64(runningNS)
}

// Counts is one session's readings, Values[i] corresponding to the meter's
// Events()[i].
type Counts struct {
	Values []EventCount `json:"values"`
}

// ActivityMeter opens per-thread counting sessions. One meter serves many
// concurrent sessions; all state lives in the Session.
type ActivityMeter interface {
	// Name identifies the backend ("perf", "mock").
	Name() string
	// Events lists the counted events in the order Counts reports them.
	Events() []string
	// OpenThread opens a counting session bound to the calling OS thread
	// (which should be locked with runtime.LockOSThread). cpu additionally
	// restricts counting to one logical CPU (-1: wherever the thread runs) —
	// for a pinned worker this yields one counter group per pinned CPU.
	// workload hints the mock backend at the planted rate row to use
	// (the kernel's component name); the perf backend ignores it.
	OpenThread(cpu int, workload string) (Session, error)
}

// TaskMeter is an optional ActivityMeter extension implemented by backends
// that can attach counters to *another* process's task (thread) instead of
// the calling thread — how the external-workload executor meters a launched
// child. tid is the kernel task id to count (a TID from /proc/<pid>/task, or
// the child's PID for process-wide counting); cpu restricts counting to one
// logical CPU (-1: wherever the task runs); workload hints the mock backend
// exactly as in OpenThread. Sessions count the task's descendants too
// (threads spawned after the session opens), so attaching to the stopped
// child's initial task is enough to cover whatever it forks once resumed.
type TaskMeter interface {
	OpenTask(tid, cpu int, workload string) (Session, error)
}

// Session counts events around one measured region. Start resets and
// enables the counters; Stop disables them and reads the scaled counts.
// Start/Stop may be called repeatedly (one pair per repetition); Close
// releases the underlying resources.
type Session interface {
	Start() error
	Stop() (Counts, error)
	Close() error
}

// Poller is an optional Session extension: Poll reads the session's
// cumulative counts for the current repetition without disabling the
// counters, so an in-trial sampler can observe event deltas while the
// measured region runs. After Stop (or Close) Poll returns the repetition's
// final counts, making it safe to race a trailing sampler tick against the
// worker's own Stop. Both shipped backends implement it.
type Poller interface {
	Poll() (Counts, error)
}

// NewMeter constructs the backend a normalized Spec names. The perf backend
// fails on non-Linux hosts and on kernels that refuse self-profiling; use
// Available to probe before planning a long sweep.
func NewMeter(spec Spec) (ActivityMeter, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	switch spec.Backend {
	case BackendMock:
		return NewMock(spec.Events), nil
	default:
		return newPlatformMeter(spec.Events)
	}
}

// Available probes whether the perf backend can count on this host: it
// opens and closes one instructions counter on the calling thread. The
// error, when non-nil, explains what is missing (platform, syscall number,
// or perf_event_paranoid/CAP_PERFMON permissions).
func Available() error {
	m, err := newPlatformMeter([]string{"instructions"})
	if err != nil {
		return err
	}
	sess, err := m.OpenThread(-1, "probe")
	if err != nil {
		return err
	}
	return sess.Close()
}
