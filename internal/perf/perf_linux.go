//go:build linux

package perf

import (
	"fmt"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// perfEventOpenNR maps GOARCH to the perf_event_open syscall number; the
// number is architecture-specific and the Go standard library does not
// export it.
var perfEventOpenNR = map[string]uintptr{
	"amd64":   298,
	"386":     336,
	"arm":     364,
	"arm64":   241,
	"riscv64": 241,
	"loong64": 241,
	"ppc64":   319,
	"ppc64le": 319,
	"s390x":   331,
}

// perf_event_attr flag bits and ioctl/flag constants
// (uapi/linux/perf_event.h).
const (
	attrBitDisabled      = 1 << 0
	attrBitInherit       = 1 << 1
	attrBitExcludeKernel = 1 << 5
	attrBitExcludeHV     = 1 << 6

	formatTotalTimeEnabled = 1 << 0
	formatTotalTimeRunning = 1 << 1
	formatGroup            = 1 << 3

	perfFlagFDCloexec = 1 << 3

	perfIOCEnable    = 0x2400
	perfIOCDisable   = 0x2401
	perfIOCReset     = 0x2403
	perfIOCFlagGroup = 1

	// PERF_ATTR_SIZE_VER5: the attr layout below, through aux_watermark /
	// sample_max_stack. Older kernels accept smaller sizes; newer ones
	// zero-fill.
	attrSize = 112
)

// perfEventAttr mirrors struct perf_event_attr through VER5.
type perfEventAttr struct {
	Type               uint32
	Size               uint32
	Config             uint64
	SamplePeriodOrFreq uint64
	SampleType         uint64
	ReadFormat         uint64
	Bits               uint64
	WakeupEvents       uint32
	BPType             uint32
	Config1            uint64
	Config2            uint64
	BranchSampleType   uint64
	SampleRegsUser     uint64
	SampleStackUser    uint32
	ClockID            int32
	SampleRegsIntr     uint64
	AuxWatermark       uint32
	SampleMaxStack     uint16
	_                  uint16
}

// linuxMeter opens grouped perf_event FDs on the calling thread. The meter
// itself is pure configuration; every FD lives in a session.
type linuxMeter struct {
	events []string
	defs   []eventDef
}

func newPlatformMeter(events []string) (ActivityMeter, error) {
	if _, ok := perfEventOpenNR[runtime.GOARCH]; !ok {
		return nil, fmt.Errorf("perf: perf_event_open syscall number unknown for %s/%s", runtime.GOOS, runtime.GOARCH)
	}
	m := &linuxMeter{events: events}
	for _, e := range events {
		def, ok := eventDefs[e]
		if !ok {
			return nil, fmt.Errorf("perf: unknown event %q (known: %v)", e, EventNames())
		}
		m.defs = append(m.defs, def)
	}
	if len(m.defs) == 0 {
		return nil, fmt.Errorf("perf: no events to count")
	}
	return m, nil
}

func (m *linuxMeter) Name() string     { return BackendPerf }
func (m *linuxMeter) Events() []string { return m.events }

// OpenThread opens one counter group for the calling thread: the first event
// is the group leader, the rest attach to it, so the whole set schedules
// onto the PMU (and multiplexes off it) as a unit and a single read returns
// consistent counts plus the shared time_enabled/time_running pair.
func (m *linuxMeter) OpenThread(cpu int, _ string) (Session, error) {
	s := &linuxSession{n: len(m.defs), last: Counts{Values: make([]EventCount, len(m.defs))}}
	for i, def := range m.defs {
		attr := perfEventAttr{
			Type:       def.typ,
			Size:       attrSize,
			Config:     def.config,
			ReadFormat: formatGroup | formatTotalTimeEnabled | formatTotalTimeRunning,
			// Counters start disabled and are enabled per repetition via
			// ioctl, so setup work between Open and Start is never counted.
			// Kernel and hypervisor exclusion keeps the measurement to the
			// benchmark's own user-space work and lets the open succeed at
			// perf_event_paranoid = 2, the common unprivileged default.
			Bits: attrBitDisabled | attrBitExcludeKernel | attrBitExcludeHV,
		}
		group := -1
		if i > 0 {
			group = s.fds[0]
		}
		fd, err := perfEventOpen(&attr, 0, cpu, group, perfFlagFDCloexec)
		if err != nil {
			s.Close()
			return nil, openError(m.events[i], err)
		}
		s.fds = append(s.fds, fd)
	}
	return s, nil
}

// OpenTask opens counters attached to another process's task (TID). The
// inherit bit makes threads the task spawns later count too — essential for
// an external workload attached before SIGCONT, whose worker threads don't
// exist yet. The kernel rejects inherit combined with PERF_FORMAT_GROUP, so
// unlike OpenThread each event gets its own ungrouped FD carrying its own
// time_enabled/time_running pair and multiplex-scales independently.
func (m *linuxMeter) OpenTask(tid, cpu int, _ string) (Session, error) {
	if tid <= 0 {
		return nil, fmt.Errorf("perf: OpenTask needs a positive tid, got %d", tid)
	}
	s := &linuxTaskSession{n: len(m.defs), last: Counts{Values: make([]EventCount, len(m.defs))}}
	for i, def := range m.defs {
		attr := perfEventAttr{
			Type:       def.typ,
			Size:       attrSize,
			Config:     def.config,
			ReadFormat: formatTotalTimeEnabled | formatTotalTimeRunning,
			Bits:       attrBitDisabled | attrBitInherit | attrBitExcludeKernel | attrBitExcludeHV,
		}
		fd, err := perfEventOpen(&attr, tid, cpu, -1, perfFlagFDCloexec)
		if err != nil {
			s.Close()
			return nil, openError(m.events[i], err)
		}
		s.fds = append(s.fds, fd)
	}
	return s, nil
}

// openError wraps a perf_event_open failure with the likely remedy.
func openError(event string, err error) error {
	switch {
	case err == syscall.EACCES || err == syscall.EPERM:
		return fmt.Errorf("perf: opening %q: %w (self-profiling needs kernel.perf_event_paranoid <= 2 or CAP_PERFMON; check /proc/sys/kernel/perf_event_paranoid)", event, err)
	case err == syscall.ENOENT || err == syscall.ENODEV || err == syscall.EOPNOTSUPP:
		return fmt.Errorf("perf: opening %q: %w (event not supported by this CPU/PMU — try a smaller --counters set)", event, err)
	}
	return fmt.Errorf("perf: opening %q: %w", event, err)
}

func perfEventOpen(attr *perfEventAttr, pid, cpu, groupFD int, flags uintptr) (int, error) {
	nr := perfEventOpenNR[runtime.GOARCH]
	fd, _, errno := syscall.Syscall6(nr,
		uintptr(unsafe.Pointer(attr)),
		uintptr(pid), uintptr(cpu), uintptr(groupFD), flags, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

// linuxSession is one thread's counter group: fds[0] is the leader.
// baseEnabled/baseRunning snapshot the group's cumulative time pair at the
// last Start: PERF_EVENT_IOC_RESET zeroes only the counts, so per-repetition
// times must be taken as deltas against this baseline or a reused session
// would scale one repetition's counts over every previous repetition's
// enabled window. The mutex serializes the worker thread's Start/Stop/Close
// against Poll calls from a sampling goroutine; last caches the most recent
// full reading so Poll stays answerable after Close.
type linuxSession struct {
	mu          sync.Mutex
	fds         []int
	n           int
	baseEnabled uint64
	baseRunning uint64
	last        Counts
}

func (s *linuxSession) ioctlGroup(req uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(s.fds[0]), req, perfIOCFlagGroup)
	if errno != 0 {
		return fmt.Errorf("perf: ioctl %#x: %w", req, errno)
	}
	return nil
}

// readGroup reads every member of the group in one syscall. The read format
// is PERF_FORMAT_GROUP: {nr, time_enabled, time_running, value...}, all u64
// in host byte order.
func (s *linuxSession) readGroup() (enabled, running uint64, raws []uint64, err error) {
	words := make([]uint64, 3+s.n)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	n, err := syscall.Read(s.fds[0], buf)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("perf: reading counter group: %w", err)
	}
	if n != len(buf) {
		return 0, 0, nil, fmt.Errorf("perf: short counter read: %d bytes, want %d", n, len(buf))
	}
	if got := int(words[0]); got != s.n {
		return 0, 0, nil, fmt.Errorf("perf: counter group read reports %d members, want %d", got, s.n)
	}
	return words[1], words[2], words[3:], nil
}

// Start zeroes the group's counts, snapshots its cumulative
// time_enabled/time_running as the repetition baseline (still disabled, so
// the snapshot is exact), and enables it.
func (s *linuxSession) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return fmt.Errorf("perf: session is closed")
	}
	if err := s.ioctlGroup(perfIOCReset); err != nil {
		return err
	}
	enabled, running, _, err := s.readGroup()
	if err != nil {
		return err
	}
	s.baseEnabled, s.baseRunning = enabled, running
	return s.ioctlGroup(perfIOCEnable)
}

// Stop disables the group and reads it, reporting counts with times taken
// relative to the Start baseline.
func (s *linuxSession) Stop() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return Counts{}, fmt.Errorf("perf: session is closed")
	}
	if err := s.ioctlGroup(perfIOCDisable); err != nil {
		return Counts{}, err
	}
	c, err := s.readCounts()
	if err != nil {
		return Counts{}, err
	}
	s.last = c
	return c, nil
}

// Poll reads the group without disabling it: counts keep accumulating while
// the measured region runs. On a closed session it returns the last full
// reading, so a sampler tick racing session teardown sees frozen counts
// instead of an error.
func (s *linuxSession) Poll() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return s.last, nil
	}
	c, err := s.readCounts()
	if err != nil {
		return Counts{}, err
	}
	s.last = c
	return c, nil
}

// readCounts reads the group and scales it against the Start baseline.
// Callers hold s.mu.
func (s *linuxSession) readCounts() (Counts, error) {
	enabled, running, raws, err := s.readGroup()
	if err != nil {
		return Counts{}, err
	}
	enabled -= s.baseEnabled
	running -= s.baseRunning
	c := Counts{Values: make([]EventCount, s.n)}
	for i, raw := range raws {
		c.Values[i] = EventCount{
			Raw:           raw,
			Scaled:        scaleCount(raw, enabled, running),
			TimeEnabledNS: enabled,
			TimeRunningNS: running,
		}
	}
	return c, nil
}

func (s *linuxSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, fd := range s.fds {
		if err := syscall.Close(fd); err != nil && first == nil {
			first = err
		}
	}
	s.fds = nil
	return first
}

// linuxTaskSession is one attached task's counters: per-event ungrouped FDs
// (the inherit bit forbids group reads), each read yielding its own
// {value, time_enabled, time_running} triple. Counters open disabled and
// the session is used for one Start/Stop cycle around one child run, so no
// reset/baseline bookkeeping is needed: values and times start at zero and,
// with inherit, aggregate over the task and every descendant it spawns.
type linuxTaskSession struct {
	mu   sync.Mutex
	fds  []int
	n    int
	last Counts
}

func (s *linuxTaskSession) ioctlAll(req uintptr) error {
	for _, fd := range s.fds {
		// Flag 0, not PERF_IOC_FLAG_GROUP: each fd stands alone.
		if _, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, 0); errno != 0 {
			return fmt.Errorf("perf: ioctl %#x: %w", req, errno)
		}
	}
	return nil
}

// Start enables the counters. Inherited instances created afterwards (the
// task's new threads) start enabled, so enabling while the child is still
// stopped covers its whole lifetime.
func (s *linuxTaskSession) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return fmt.Errorf("perf: task session is closed")
	}
	return s.ioctlAll(perfIOCEnable)
}

// Stop disables the counters and reads the aggregated counts.
func (s *linuxTaskSession) Stop() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return Counts{}, fmt.Errorf("perf: task session is closed")
	}
	if err := s.ioctlAll(perfIOCDisable); err != nil {
		return Counts{}, err
	}
	c, err := s.readCounts()
	if err != nil {
		return Counts{}, err
	}
	s.last = c
	return c, nil
}

// Poll reads the counters without disabling them; on a closed session it
// returns the last full reading, mirroring linuxSession.
func (s *linuxTaskSession) Poll() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fds) == 0 {
		return s.last, nil
	}
	c, err := s.readCounts()
	if err != nil {
		return Counts{}, err
	}
	s.last = c
	return c, nil
}

// readCounts reads each fd's {value, time_enabled, time_running} triple.
// With inherit, all three are sums over the task and its descendants; rate
// consumers should divide by a wall clock, not time_enabled, to get the
// process-aggregate rate. Callers hold s.mu.
func (s *linuxTaskSession) readCounts() (Counts, error) {
	c := Counts{Values: make([]EventCount, s.n)}
	var words [3]uint64
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	for i, fd := range s.fds {
		n, err := syscall.Read(fd, buf)
		if err != nil {
			return Counts{}, fmt.Errorf("perf: reading task counter: %w", err)
		}
		if n != len(buf) {
			return Counts{}, fmt.Errorf("perf: short task counter read: %d bytes, want %d", n, len(buf))
		}
		c.Values[i] = EventCount{
			Raw:           words[0],
			Scaled:        scaleCount(words[0], words[1], words[2]),
			TimeEnabledNS: words[1],
			TimeRunningNS: words[2],
		}
	}
	return c, nil
}

func (s *linuxTaskSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, fd := range s.fds {
		if err := syscall.Close(fd); err != nil && first == nil {
			first = err
		}
	}
	s.fds = nil
	return first
}
