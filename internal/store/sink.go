package store

import "energybench/internal/harness"

// Sink is a harness.ResultSink that appends each completed configuration
// to the store as it finishes, flushed per record so a sweep killed
// mid-flight (SIGINT, crash) never loses a completed trial. The store is
// created on first Consume — a single-file store for .jsonl paths, a
// sharded segment store for directory paths. Close flushes and fsyncs the
// active segment (or file) and updates the sharded manifest, so nothing
// consumed can be lost once Close returns.
type Sink struct {
	path  string
	st    *Store
	count int
}

// NewSink returns a per-configuration flushing sink over the store at path.
func NewSink(path string) *Sink { return &Sink{path: path} }

// Consume appends one result and flushes it to disk before returning.
func (s *Sink) Consume(r harness.Result) error {
	if s.st == nil {
		st, err := Create(s.path)
		if err != nil {
			return err
		}
		s.st = st
	}
	if _, err := s.st.Append([]harness.Result{r}); err != nil {
		return err
	}
	s.count++
	return nil
}

// Count reports how many results this sink has persisted.
func (s *Sink) Count() int { return s.count }

// Close fsyncs everything consumed and seals the store's bookkeeping; it
// is safe to call with nothing consumed.
func (s *Sink) Close() error {
	if s.st == nil {
		return nil
	}
	err := s.st.Close()
	s.st = nil
	return err
}
