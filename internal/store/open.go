package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"iter"
	"os"
	"path/filepath"
	"strings"
	"time"

	"energybench/internal/harness"
)

// Store is an open handle on a result store in either layout. It is the
// single read/append surface: Query streams deduped records, Keys exports
// the configuration-key set without deserializing results, Append adds
// records (flushed per call), Get does a point lookup, and Compact rewrites
// the store deduplicated. A Store is not safe for concurrent use; the
// harness serializes sink access already.
type Store struct {
	path    string
	sharded bool

	// SegmentTarget is the byte size at which the active segment of a
	// sharded store is sealed and a new one started. Settable before the
	// first Append; zero means DefaultSegmentTargetBytes.
	SegmentTarget int64

	man manifest    // sharded only
	fw  *fileWriter // open single-file appender, nil until first Append
	sw  *segWriter  // open active-segment appender, nil until first Append

	// scratch marks compaction's new-generation writer: it shares the store
	// directory but must never persist its manifest — its segments stay
	// orphans until the owning store commits the swap.
	scratch bool
}

// Open opens an existing store at path, auto-detecting the layout: a
// directory is a sharded segment store, a plain file is a single-file JSONL
// store. A missing path is an fs.ErrNotExist error — use Create when the
// store may not exist yet.
func Open(path string) (*Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if fi.IsDir() {
		return openSharded(path)
	}
	return &Store{path: path}, nil
}

// Create opens the store at path, creating it if missing: paths ending in
// .jsonl or .json become single-file stores (the original format, so
// existing flag usage keeps producing plain files), anything else becomes a
// sharded segment store directory.
func Create(path string) (*Store, error) {
	fi, err := os.Stat(path)
	if err == nil {
		if fi.IsDir() {
			return openSharded(path)
		}
		return &Store{path: path}, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		// Created lazily on first append, exactly like the historical
		// single-file behavior.
		return &Store{path: path}, nil
	}
	return initSharded(path)
}

// Path returns the store's file or directory path.
func (s *Store) Path() string { return s.path }

// Sharded reports whether the store uses the sharded segment layout.
func (s *Store) Sharded() bool { return s.sharded }

// Segments returns the number of live segment files (1 for a single-file
// store, whether or not the file exists yet).
func (s *Store) Segments() int {
	if !s.sharded {
		return 1
	}
	return len(s.man.Segments)
}

// Close flushes and fsyncs any open appender and, for sharded stores,
// updates the manifest with the active segment's record count, so a crash
// or SIGINT after Close cannot lose the tail.
func (s *Store) Close() error {
	var errs []error
	if s.fw != nil {
		errs = append(errs, s.fw.close(true))
		s.fw = nil
	}
	if s.sw != nil {
		errs = append(errs, s.closeActiveSegment())
		s.sw = nil
	}
	return errors.Join(errs...)
}

// flush makes everything appended so far visible to readers (and durable
// against process death, though not yet fsync'd — Close does that).
func (s *Store) flush() error {
	if s.fw != nil {
		return s.fw.flush()
	}
	if s.sw != nil {
		return s.sw.flush()
	}
	return nil
}

// Append writes the results as records stamped with the current time and
// returns how many were written. The write is flushed (readable by a fresh
// Open) before Append returns, so per-configuration sinks stay durable
// against interrupts mid-sweep; fsync happens on Close.
func (s *Store) Append(results []harness.Result) (int, error) {
	now := time.Now().UTC()
	for _, res := range results {
		rec := Record{V: SchemaVersion, Key: Key(res), SavedAt: now, Result: res}
		line, err := encodeRecord(rec)
		if err != nil {
			return 0, err
		}
		if err := s.appendRaw(rec.Key, line); err != nil {
			return 0, err
		}
	}
	if err := s.flush(); err != nil {
		return 0, err
	}
	return len(results), nil
}

// appendRaw appends one pre-encoded record line (no trailing newline)
// under the given key, buffered until the next flush.
func (s *Store) appendRaw(key string, line []byte) error {
	if s.sharded {
		return s.shardAppendRaw(key, line)
	}
	return s.fileAppendRaw(line)
}

// loc addresses one raw record line inside the store.
type loc struct {
	seg int // index into the manifest's segments; 0 for single-file stores
	off int64
	n   int // record bytes, excluding the trailing newline
}

// index is the dedup view of a store: every live key in first-appearance
// order, each mapped to the location of its winning (last-written) record.
type index struct {
	order  []string
	winner map[string]loc
}

func newIndex() *index {
	return &index{winner: map[string]loc{}}
}

func (ix *index) add(key string, l loc) {
	if _, ok := ix.winner[key]; !ok {
		ix.order = append(ix.order, key)
	}
	ix.winner[key] = l
}

// buildIndex scans the store's key envelopes — sidecar indexes for sharded
// stores, a result-free line scan for single files — folding them into the
// dedup index. The filter prunes at the key level (Filter.MatchKey), so a
// selective query over a sharded store touches no record bytes for
// non-matching configurations. Pruning before dedup is sound because every
// occurrence of a key shares the same filter verdict.
func (s *Store) buildIndex(f Filter) (*index, error) {
	if err := s.flush(); err != nil {
		return nil, err
	}
	if s.sharded {
		return s.shardIndex(f)
	}
	return s.fileIndex(f)
}

// Keys returns the full configuration-key set without deserializing any
// result, reading only sidecar indexes (sharded) or line envelopes (file).
// A store that exists but holds nothing yields an empty set.
func (s *Store) Keys() (map[string]bool, error) {
	ix, err := s.buildIndex(Filter{})
	if err != nil {
		if !s.sharded && errors.Is(err, fs.ErrNotExist) {
			// A single-file store created lazily but never appended to.
			return map[string]bool{}, nil
		}
		return nil, err
	}
	keys := make(map[string]bool, len(ix.order))
	for _, k := range ix.order {
		keys[k] = true
	}
	return keys, nil
}

// Query streams the records passing the filter, deduped by configuration
// key (last write wins) in first-appearance order — the same semantics
// Load has always had, without materializing the corpus. The iterator
// yields at most one non-nil error, as its final element.
func (s *Store) Query(f Filter) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		ix, err := s.buildIndex(f)
		if err != nil {
			yield(Record{}, err)
			return
		}
		files := map[int]*os.File{}
		defer func() {
			for _, fh := range files {
				fh.Close()
			}
		}()
		for _, key := range ix.order {
			raw, err := s.readLoc(files, ix.winner[key])
			if err != nil {
				yield(Record{}, err)
				return
			}
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				yield(Record{}, fmt.Errorf("store: %s: record %q: %w", s.path, key, err))
				return
			}
			if rec.V < 1 || rec.V > SchemaVersion {
				yield(Record{}, fmt.Errorf("store: %s: record %q: schema v%d not supported (this build reads up to v%d)",
					s.path, key, rec.V, SchemaVersion))
				return
			}
			if !f.Match(rec.Result) {
				continue
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// Get is a point lookup: the winning record for one configuration key, or
// ok == false when the store holds no record under it.
func (s *Store) Get(key string) (rec Record, ok bool, err error) {
	for r, qerr := range s.Query(Filter{Keys: []string{key}}) {
		if qerr != nil {
			return Record{}, false, qerr
		}
		return r, true, nil
	}
	return Record{}, false, nil
}

// readLoc reads the raw bytes of one record, caching open segment files
// across calls within a query.
func (s *Store) readLoc(files map[int]*os.File, l loc) ([]byte, error) {
	fh, ok := files[l.seg]
	if !ok {
		path := s.path
		if s.sharded {
			path = s.segPath(l.seg)
		}
		var err error
		if fh, err = os.Open(path); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		files[l.seg] = fh
	}
	buf := make([]byte, l.n)
	if _, err := fh.ReadAt(buf, l.off); err != nil {
		return nil, fmt.Errorf("store: %s: %w", fh.Name(), err)
	}
	return buf, nil
}

// Compact rewrites the store deduplicated, preserving record bytes exactly
// and first-appearance key order. Memory stays bounded by the key set, not
// the corpus: one index pass over the envelopes, then a raw byte copy of
// each winning record.
func (s *Store) Compact() (kept int, err error) {
	ix, err := s.buildIndex(Filter{})
	if err != nil {
		return 0, err
	}
	if s.sharded {
		return s.shardCompact(ix)
	}
	return s.fileCompact(ix)
}

// Shard converts the store at path to the sharded segment layout in place,
// compacting as it goes, and returns the number of records kept. A store
// that is already sharded is just compacted. The migration builds the new
// store in a sibling temp directory and swaps it in with renames (the old
// file briefly persists as path.pre-shard), so a crash leaves a recoverable
// state at every step; configuration keys and record bytes are preserved
// exactly, so resume key sets are identical before and after.
func Shard(path string) (kept int, err error) {
	src, err := Open(path)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	if src.sharded {
		return src.Compact()
	}
	ix, err := src.buildIndex(Filter{})
	if err != nil {
		return 0, err
	}

	tmp := path + ".shard-tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	dst, err := initSharded(tmp)
	if err != nil {
		return 0, err
	}
	if err := src.copyRaw(ix, dst); err != nil {
		dst.Close()
		os.RemoveAll(tmp)
		return 0, err
	}
	if err := dst.Close(); err != nil {
		os.RemoveAll(tmp)
		return 0, err
	}

	backup := path + ".pre-shard"
	if err := os.Rename(path, backup); err != nil {
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		// Roll the original back so the store is never left missing.
		os.Rename(backup, path)
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := os.Remove(backup); err != nil {
		return 0, fmt.Errorf("store: removing pre-shard backup: %w", err)
	}
	return len(ix.order), nil
}

// copyRaw streams every winning record of ix, in order, into dst as raw
// bytes (dst must be sharded).
func (s *Store) copyRaw(ix *index, dst *Store) error {
	files := map[int]*os.File{}
	defer func() {
		for _, fh := range files {
			fh.Close()
		}
	}()
	for _, key := range ix.order {
		raw, err := s.readLoc(files, ix.winner[key])
		if err != nil {
			return err
		}
		if err := dst.appendRaw(key, raw); err != nil {
			return err
		}
	}
	return nil
}

// writeFileAtomic writes data to path via a sibling temp file and rename,
// then best-effort fsyncs the directory so the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory; failures are ignored (some filesystems
// refuse directory fsync) — durability degrades, correctness does not.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// encodeRecord marshals one record as a JSONL line without the trailing
// newline.
func encodeRecord(rec Record) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return b, nil
}
