package store

import (
	"path/filepath"
	"testing"

	"energybench/internal/harness"
)

func TestKeysExportsStoredConfigurations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")

	// A store that does not exist yet resumes trivially: empty key set.
	keys, err := Keys(path)
	if err != nil {
		t.Fatalf("Keys on missing store: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("missing store yielded %d keys", len(keys))
	}

	a, b := mkResult("int-alu", 1, "none"), mkResult("int-alu", 2, "none")
	if _, err := Append(path, []harness.Result{a, b, a}); err != nil {
		t.Fatal(err)
	}
	keys, err = Keys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("got %d keys, want 2 after dedup: %v", len(keys), keys)
	}
	if !keys[Key(a)] || !keys[Key(b)] {
		t.Errorf("key set %v missing %q or %q", keys, Key(a), Key(b))
	}
}

// TestSinkFlushesPerResult is the mid-sweep durability regression test: each
// Consume must leave the record fully readable on disk immediately — before
// any later trial runs and before Close — so a SIGINT mid-sweep never loses
// a completed configuration.
func TestSinkFlushesPerResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	s := NewSink(path)

	results := []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("int-alu", 2, "none"),
		mkResult("chase-l1", 1, "none"),
	}
	for i, r := range results {
		if err := s.Consume(r); err != nil {
			t.Fatal(err)
		}
		// Load through a fresh reader after every single Consume: the data
		// must already be durable without Close.
		recs, err := Load(path)
		if err != nil {
			t.Fatalf("after %d consumes: %v", i+1, err)
		}
		if len(recs) != i+1 {
			t.Fatalf("after %d consumes the store holds %d records", i+1, len(recs))
		}
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
}

// TestSinkShardedDurability: the same per-Consume durability over a sharded
// store directory, plus the Close contract — Close must seal the active
// segment and record its count in the manifest (the historical no-op Close
// left the manifest stale).
func TestSinkShardedDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	s := NewSink(path)
	for i, r := range []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("int-alu", 2, "none"),
	} {
		if err := s.Consume(r); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			t.Fatalf("after %d consumes: %v", i+1, err)
		}
		keys, err := st.Keys()
		st.Close()
		if err != nil {
			t.Fatalf("after %d consumes: %v", i+1, err)
		}
		if len(keys) != i+1 {
			t.Fatalf("after %d consumes the store holds %d keys", i+1, len(keys))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	total := 0
	for _, seg := range st.man.Segments {
		total += seg.Records
	}
	if total != 2 {
		t.Errorf("manifest record counts sum to %d after Close, want 2", total)
	}
}

// TestSinkSurfacesWriteErrors: an unwritable store path must fail Consume,
// aborting the sweep rather than silently dropping results.
func TestSinkSurfacesWriteErrors(t *testing.T) {
	s := NewSink(filepath.Join(t.TempDir(), "no-such-dir", "db.jsonl"))
	if err := s.Consume(mkResult("int-alu", 1, "none")); err == nil {
		t.Error("Consume into an unwritable path returned nil")
	}
	if s.Count() != 0 {
		t.Errorf("failed Consume still counted: %d", s.Count())
	}
}
