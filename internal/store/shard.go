package store

// This file implements the sharded segment layout: a store directory
// holding MANIFEST.json (the list of live segments, in order), append-only
// segment files seg-NNNNNNNN.jsonl of ordinary store records, and one
// sidecar index seg-NNNNNNNN.keys per segment with a line per record
// ("offset length key"), so key scans and point lookups read only the tiny
// sidecars. Segments are the source of truth: a missing, torn, or stale
// sidecar is rebuilt from its segment, and the usual torn-final-line
// tolerance applies per segment. New segments are registered in the
// manifest before records land in them, so every record a reader can lose
// is confined to the torn tail of one segment; manifest updates go through
// an atomic temp-file rename.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	manifestName = "MANIFEST.json"
	// manifestFormat is the sharded-layout version this build writes;
	// readers reject newer ones.
	manifestFormat = 1
	segPrefix      = "seg-"
	segSuffix      = ".jsonl"
	idxSuffix      = ".keys"
	// DefaultSegmentTargetBytes is the size at which the active segment is
	// sealed and a new one started. Small enough that compaction and
	// backups move in modest units, large enough that a fleet-scale corpus
	// stays in the hundreds of segments, not millions of files.
	DefaultSegmentTargetBytes = 4 << 20
)

// manifest is the content of MANIFEST.json.
type manifest struct {
	Format   int           `json:"format"`
	Schema   int           `json:"schema"`
	Segments []segmentInfo `json:"segments"`
}

// segmentInfo is one live segment. Records is best-effort bookkeeping
// (updated when a segment is sealed or the store is closed); readers never
// rely on it.
type segmentInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records,omitempty"`
}

// sidecarEntry is one decoded index line: the record at [off, off+n) of
// its segment, stored under key.
type sidecarEntry struct {
	off int64
	n   int
	key string
}

// segWriter is the open appender on the active (last) segment.
type segWriter struct {
	f       *os.File
	kf      *os.File // sidecar
	bw, kbw *bufio.Writer
	off     int64 // clean end of the segment == offset of the next record
	records int
}

// initSharded creates an empty sharded store directory at path.
func initSharded(path string) (*Store, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{path: path, sharded: true, man: manifest{Format: manifestFormat, Schema: SchemaVersion}}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// openSharded opens an existing store directory. A directory without a
// manifest is only accepted when empty (it becomes a fresh store) — an
// arbitrary non-store directory must not be silently adopted.
func openSharded(path string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(path, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		entries, derr := os.ReadDir(path)
		if derr != nil {
			return nil, fmt.Errorf("store: %w", derr)
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("store: %s: directory has no %s and is not empty (not a sharded store)", path, manifestName)
		}
		return initSharded(path)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: %s: decoding manifest: %w", path, err)
	}
	if man.Format > manifestFormat {
		return nil, fmt.Errorf("store: %s: manifest format %d not supported (this build reads up to %d)", path, man.Format, manifestFormat)
	}
	if man.Schema > SchemaVersion {
		return nil, fmt.Errorf("store: %s: store schema v%d not supported (this build reads up to v%d)", path, man.Schema, SchemaVersion)
	}
	return &Store{path: path, sharded: true, man: man}, nil
}

func (s *Store) segPath(i int) string {
	return filepath.Join(s.path, s.man.Segments[i].Name)
}

func idxPath(segPath string) string {
	return strings.TrimSuffix(segPath, segSuffix) + idxSuffix
}

// writeManifest persists the manifest atomically, stamping the schema this
// build writes (never downgrading a newer one, which open rejects anyway).
// Scratch handles (compaction's new-generation writer) keep the manifest in
// memory only: their segments stay unreferenced orphans until the owning
// store commits the swap.
func (s *Store) writeManifest() error {
	if s.man.Schema < SchemaVersion {
		s.man.Schema = SchemaVersion
	}
	s.man.Format = manifestFormat
	if s.scratch {
		return nil
	}
	data, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.path, manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// segEntries returns one segment's index entries, trusting the sidecar
// only as far as it is consistent with the segment: entries must tile the
// segment contiguously from offset 0 and stay inside its cleanly
// terminated prefix. Anything past the trusted prefix is rebuilt by
// scanning the segment itself, and when persist is true the repaired
// sidecar is written back.
func (s *Store) segEntries(i int, persist bool) ([]sidecarEntry, error) {
	segPath := s.segPath(i)
	f, err := os.Open(segPath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	clean, err := cleanLength(f)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", segPath, err)
	}

	entries, covered := readSidecar(idxPath(segPath), clean)
	repaired := false
	if covered < clean {
		scanned, err := scanSegmentTail(f, segPath, covered, clean, i == len(s.man.Segments)-1)
		if err != nil {
			return nil, err
		}
		entries = append(entries, scanned...)
		repaired = true
	}
	if persist && repaired {
		if err := writeSidecar(idxPath(segPath), entries); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// readSidecar decodes sidecar entries, stopping at the first line that is
// torn, malformed, discontiguous, or pointing past the segment's clean
// prefix; covered is the segment byte length the returned entries account
// for. Any failure just shrinks the trusted prefix — the segment scan
// rebuilds the rest.
func readSidecar(path string, clean int64) (entries []sidecarEntry, covered int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn sidecar tail
		}
		line := string(data[:nl])
		data = data[nl+1:]
		offStr, rest, ok := strings.Cut(line, " ")
		if !ok {
			break
		}
		nStr, key, ok := strings.Cut(rest, " ")
		if !ok {
			break
		}
		off, err1 := strconv.ParseInt(offStr, 10, 64)
		n, err2 := strconv.Atoi(nStr)
		if err1 != nil || err2 != nil || n <= 0 || off != covered || off+int64(n)+1 > clean {
			break
		}
		entries = append(entries, sidecarEntry{off: off, n: n, key: key})
		covered = off + int64(n) + 1
	}
	return entries, covered
}

// scanSegmentTail re-indexes segment records in [from, clean) straight
// from the segment file. A malformed final line is tolerated only on the
// last segment (the only one a crash can tear mid-line after manifest
// registration); elsewhere it is corruption.
func scanSegmentTail(f *os.File, segPath string, from, clean int64, lastSeg bool) ([]sidecarEntry, error) {
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: %s: %w", segPath, err)
	}
	var entries []sidecarEntry
	r := bufio.NewReaderSize(io.LimitReader(f, clean-from), 64<<10)
	off := from
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) == 0 {
			break
		}
		content := bytes.TrimSuffix(line, []byte{'\n'})
		if len(content) > maxLine {
			return nil, fmt.Errorf("store: %s: line at offset %d exceeds %d bytes", segPath, off, maxLine)
		}
		if len(content) > 0 {
			var env envelope
			if jerr := json.Unmarshal(content, &env); jerr != nil {
				if lastSeg && atEOF(r, rerr) {
					break
				}
				return nil, fmt.Errorf("store: %s: record at offset %d: %w", segPath, off, jerr)
			}
			if env.V < 1 || env.V > SchemaVersion {
				return nil, fmt.Errorf("store: %s: record at offset %d: schema v%d not supported (this build reads up to v%d)",
					segPath, off, env.V, SchemaVersion)
			}
			entries = append(entries, sidecarEntry{off: off, n: len(content), key: env.Key})
		}
		off += int64(len(line))
		if rerr != nil {
			break
		}
	}
	return entries, nil
}

// writeSidecar persists a rebuilt sidecar atomically.
func writeSidecar(path string, entries []sidecarEntry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		fmt.Fprintf(&buf, "%d %d %s\n", e.off, e.n, e.key)
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// shardIndex folds every segment's entries, in manifest order, into the
// dedup index. Only sidecars (and any un-indexed segment tails) are read;
// record payloads are not.
func (s *Store) shardIndex(f Filter) (*index, error) {
	ix := newIndex()
	for i := range s.man.Segments {
		entries, err := s.segEntries(i, false)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if f.MatchKey(e.key) {
				ix.add(e.key, loc{seg: i, off: e.off, n: e.n})
			}
		}
	}
	return ix, nil
}

// shardAppendRaw buffers one record line into the active segment, rolling
// to a fresh segment once the active one reaches the target size.
func (s *Store) shardAppendRaw(key string, line []byte) error {
	if s.sw == nil {
		if err := s.openActiveSegment(); err != nil {
			return err
		}
	}
	if s.sw.off >= s.segmentTarget() {
		if err := s.rollSegment(); err != nil {
			return err
		}
	}
	w := s.sw
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := fmt.Fprintf(w.kbw, "%d %d %s\n", w.off, len(line), key); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.off += int64(len(line)) + 1
	w.records++
	return nil
}

func (s *Store) segmentTarget() int64 {
	if s.SegmentTarget > 0 {
		return s.SegmentTarget
	}
	return DefaultSegmentTargetBytes
}

// openActiveSegment resumes appending to the last manifest segment when it
// is still under the target size, repairing its sidecar and truncating any
// torn tail first; otherwise it creates a fresh segment.
func (s *Store) openActiveSegment() error {
	n := len(s.man.Segments)
	if n == 0 {
		return s.rollSegment()
	}
	last := n - 1
	entries, err := s.segEntries(last, true)
	if err != nil {
		return err
	}
	segPath := s.segPath(last)
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := truncateTornLine(f); err != nil {
		f.Close()
		return fmt.Errorf("store: %s: %w", segPath, err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if off >= s.segmentTarget() {
		f.Close()
		return s.rollSegment()
	}
	kf, err := os.OpenFile(idxPath(segPath), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.sw = &segWriter{
		f: f, kf: kf,
		bw: bufio.NewWriter(f), kbw: bufio.NewWriter(kf),
		off: off, records: len(entries),
	}
	return nil
}

// rollSegment seals the active segment (flush, fsync, manifest record
// count) and registers a brand-new one in the manifest *before* any record
// lands in it, so readers can always find every durable record.
func (s *Store) rollSegment() error {
	if s.sw != nil {
		if err := s.closeActiveSegment(); err != nil {
			return err
		}
		s.sw = nil
	}
	f, kf, name, err := s.createSegmentFiles()
	if err != nil {
		return err
	}
	s.man.Segments = append(s.man.Segments, segmentInfo{Name: name})
	if err := s.writeManifest(); err != nil {
		f.Close()
		kf.Close()
		s.man.Segments = s.man.Segments[:len(s.man.Segments)-1]
		return err
	}
	s.sw = &segWriter{f: f, kf: kf, bw: bufio.NewWriter(f), kbw: bufio.NewWriter(kf)}
	return nil
}

// createSegmentFiles allocates the next free segment name (numbering past
// both the manifest and any orphan files a crash left behind) and creates
// the segment plus its sidecar.
func (s *Store) createSegmentFiles() (f, kf *os.File, name string, err error) {
	next := 1
	for _, seg := range s.man.Segments {
		var n int
		if _, err := fmt.Sscanf(seg.Name, segPrefix+"%d"+segSuffix, &n); err == nil && n >= next {
			next = n + 1
		}
	}
	for ; ; next++ {
		name = fmt.Sprintf("%s%08d%s", segPrefix, next, segSuffix)
		path := filepath.Join(s.path, name)
		f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if errors.Is(err, fs.ErrExist) {
			continue // orphan from an interrupted run; skip its name
		}
		if err != nil {
			return nil, nil, "", fmt.Errorf("store: %w", err)
		}
		kf, err = os.OpenFile(idxPath(path), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			f.Close()
			return nil, nil, "", fmt.Errorf("store: %w", err)
		}
		return f, kf, name, nil
	}
}

func (w *segWriter) flush() error {
	// Segment before sidecar: a sidecar entry must never point at bytes
	// that are not yet in the segment.
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := w.kbw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// closeActiveSegment flushes and fsyncs the active segment and its sidecar
// and records the segment's record count in the manifest — the durability
// point a sink reaches through Close.
func (s *Store) closeActiveSegment() error {
	w := s.sw
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	if err := w.kf.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	var errs []error
	if err := w.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("store: close: %w", err))
	}
	if err := w.kf.Close(); err != nil {
		errs = append(errs, fmt.Errorf("store: close: %w", err))
	}
	if len(s.man.Segments) > 0 {
		s.man.Segments[len(s.man.Segments)-1].Records = w.records
		if err := s.writeManifest(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// shardCompact rewrites every winning record into a fresh generation of
// segments, commits them with one atomic manifest swap, then deletes the
// old segment files. A crash before the manifest swap leaves the old store
// fully intact (the part-written new segments are orphans, skipped by the
// segment namer); a crash after it leaves the new store intact with
// harmless stale files.
func (s *Store) shardCompact(ix *index) (kept int, err error) {
	if s.sw != nil {
		if err := s.closeActiveSegment(); err != nil {
			return 0, err
		}
		s.sw = nil
	}
	oldSegs := s.man.Segments

	// Write the new generation through a scratch handle sharing the
	// directory, so the real manifest is untouched until the swap below.
	dst := &Store{path: s.path, sharded: true, scratch: true, SegmentTarget: s.SegmentTarget,
		man: manifest{Format: manifestFormat, Schema: s.man.Schema}}
	dst.man.Segments = append([]segmentInfo{}, oldSegs...) // copy: namer input only
	// Force a brand-new segment now: the lazy append path would otherwise
	// resume the old generation's last segment, mixing generations and
	// leaving nothing new to commit.
	if err := dst.rollSegment(); err != nil {
		return 0, err
	}
	written := 0
	files := map[int]*os.File{}
	defer func() {
		for _, fh := range files {
			fh.Close()
		}
	}()
	var newSegs []segmentInfo
	for _, key := range ix.order {
		raw, rerr := s.readLoc(files, ix.winner[key])
		if rerr != nil {
			return 0, rerr
		}
		if err := dst.shardAppendRaw(key, raw); err != nil {
			return 0, err
		}
		written++
	}
	if dst.sw != nil {
		if err := dst.sw.flush(); err != nil {
			return 0, err
		}
		if err := dst.sw.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		if err := dst.sw.kf.Sync(); err != nil {
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		dst.sw.f.Close()
		dst.sw.kf.Close()
		last := len(dst.man.Segments) - 1
		dst.man.Segments[last].Records = dst.sw.records
		dst.sw = nil
	}
	newSegs = dst.man.Segments[len(oldSegs):]

	// Commit: the manifest swap is the single point where readers move
	// from the old generation to the new.
	s.man.Segments = newSegs
	if err := s.writeManifest(); err != nil {
		s.man.Segments = oldSegs
		return 0, err
	}
	for _, seg := range oldSegs {
		os.Remove(filepath.Join(s.path, seg.Name))
		os.Remove(idxPath(filepath.Join(s.path, seg.Name)))
	}
	return written, nil
}
