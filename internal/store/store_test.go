package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/stats"
)

func mkResult(spec string, threads int, placement string) harness.Result {
	return harness.Result{
		Spec:      spec,
		Threads:   threads,
		Iters:     1000,
		Placement: harness.Placement(placement),
		Meter:     "mock",
		EnergyJ:   stats.Summary{N: 3, Mean: 10},
		TimeS:     stats.Summary{N: 3, Mean: 1},
		PowerW:    stats.Summary{N: 3, Mean: 10},
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	in := []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("int-alu", 2, "none"),
		mkResult("chase-l1", 1, "compact"),
	}
	n, err := Append(path, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("appended %d records, want 3", n)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.V != SchemaVersion {
			t.Errorf("record %d schema = %d, want %d", i, rec.V, SchemaVersion)
		}
		if rec.Key != Key(in[i]) {
			t.Errorf("record %d key = %q, want %q", i, rec.Key, Key(in[i]))
		}
		if rec.SavedAt.IsZero() {
			t.Errorf("record %d has zero timestamp", i)
		}
		if !reflect.DeepEqual(rec.Result, in[i]) {
			t.Errorf("record %d result round-trip mismatch:\ngot  %+v\nwant %+v", i, rec.Result, in[i])
		}
	}
}

func TestLoadDedupsLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	first := mkResult("int-alu", 1, "none")
	if _, err := Append(path, []harness.Result{first, mkResult("chase-l1", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	// Re-measure the same configuration with a different value: the later
	// record must replace the earlier one, in the earlier one's position.
	second := first
	second.EnergyJ.Mean = 99
	if _, err := Append(path, []harness.Result{second}); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 after dedup", len(recs))
	}
	if recs[0].Result.Spec != "int-alu" || recs[0].Result.EnergyJ.Mean != 99 {
		t.Errorf("dedup kept the stale record: %+v", recs[0].Result)
	}
	if recs[1].Result.Spec != "chase-l1" {
		t.Errorf("dedup reordered records: %+v", recs[1].Result)
	}
}

func TestKeyDistinguishesConfigurations(t *testing.T) {
	base := mkResult("int-alu", 1, "none")
	variants := []func(*harness.Result){
		func(r *harness.Result) { r.Spec = "fp-mac" },
		func(r *harness.Result) { r.Threads = 2 },
		func(r *harness.Result) { r.Placement = "compact" },
		func(r *harness.Result) { r.Meter = "rapl" },
		func(r *harness.Result) { r.Iters = 2000 },
		func(r *harness.Result) { r.SpecB = "chase-l1"; r.ThreadsB = 1; r.ItersB = 500 },
	}
	seen := map[string]bool{Key(base): true}
	for i, mut := range variants {
		r := base
		mut(&r)
		k := Key(r)
		if seen[k] {
			t.Errorf("variant %d collides with a previous key %q", i, k)
		}
		seen[k] = true
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.jsonl")); !os.IsNotExist(asPathErr(err)) {
		t.Errorf("want not-exist error for missing store, got %v", err)
	}
}

func asPathErr(err error) error {
	for err != nil {
		if pe, ok := err.(*os.PathError); ok {
			return pe
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return err
}

func TestLoadRejectsNewerSchemaAndCorruption(t *testing.T) {
	dir := t.TempDir()

	future := filepath.Join(dir, "future.jsonl")
	if err := os.WriteFile(future, []byte(`{"v":999,"key":"k","result":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(future); err == nil || !strings.Contains(err.Error(), "v999") {
		t.Errorf("want schema-version error, got %v", err)
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	good := `{"v":1,"key":"k","result":{"spec":"x"}}` + "\n"
	if err := os.WriteFile(corrupt, []byte(good+"{not json}\n"+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt); err == nil {
		t.Error("want error for corrupt mid-file line, got nil")
	}
}

func TestLoadToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	if _, err := Append(path, []harness.Result{mkResult("int-alu", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := Load(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("loaded %d records, want 1 (torn line skipped)", len(recs))
	}
}

// TestAppendAfterTornLineRepairs is a regression test: appending to a store
// whose last line was torn by a crash must not concatenate the new record
// onto the partial line (which silently lost it, or poisoned the store for
// strict mid-file corruption detection).
func TestAppendAfterTornLineRepairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	if _, err := Append(path, []harness.Result{mkResult("int-alu", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Append(path, []harness.Result{mkResult("int-alu", 2, "none")}); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatalf("store unreadable after append-over-torn-line: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want both the pre-crash and post-crash records", len(recs))
	}
	if recs[0].Result.Threads != 1 || recs[1].Result.Threads != 2 {
		t.Errorf("records = t%d, t%d; want t1 then t2", recs[0].Result.Threads, recs[1].Result.Threads)
	}

	// A store that is nothing but one torn line repairs to empty and accepts
	// the append.
	junk := filepath.Join(t.TempDir(), "junk.jsonl")
	if err := os.WriteFile(junk, []byte("{partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(junk, []harness.Result{mkResult("fp-mac", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	if recs, err := Load(junk); err != nil || len(recs) != 1 {
		t.Errorf("junk-only store after append: %v, %d records, want 1", err, len(recs))
	}
}

func TestCompactRewritesDeduped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	r := mkResult("int-alu", 1, "none")
	for i := 0; i < 5; i++ {
		if _, err := Append(path, []harness.Result{r}); err != nil {
			t.Fatal(err)
		}
	}
	kept, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 {
		t.Errorf("compact kept %d records, want 1", kept)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(b), "\n"); lines != 1 {
		t.Errorf("compacted file has %d lines, want 1", lines)
	}
	if recs, err := Load(path); err != nil || len(recs) != 1 {
		t.Errorf("compacted store unreadable: %v, %d records", err, len(recs))
	}
}

func TestFilterMatch(t *testing.T) {
	solo := mkResult("int-alu", 2, "scatter")
	corun := mkResult("int-alu", 1, "compact")
	corun.SpecB = "chase-dram"
	corun.ThreadsB = 1

	tests := []struct {
		name string
		f    Filter
		r    harness.Result
		want bool
	}{
		{"empty-matches-all", Filter{}, solo, true},
		{"spec-hit", Filter{Specs: []string{"int-alu"}}, solo, true},
		{"spec-miss", Filter{Specs: []string{"fp-mac"}}, solo, false},
		{"spec-b-hit", Filter{Specs: []string{"chase-dram"}}, corun, true},
		{"threads-hit", Filter{Threads: []int{1, 2}}, solo, true},
		{"threads-miss", Filter{Threads: []int{4}}, solo, false},
		{"placement-hit", Filter{Placements: []string{"scatter"}}, solo, true},
		{"placement-miss", Filter{Placements: []string{"none"}}, solo, false},
		{"all-dimensions", Filter{Specs: []string{"int-alu"}, Threads: []int{2}, Placements: []string{"scatter"}}, solo, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.f.Match(tc.r); got != tc.want {
				t.Errorf("Match = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestResultsAppliesFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	in := []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("int-alu", 2, "none"),
		mkResult("chase-l1", 1, "none"),
	}
	if _, err := Append(path, in); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := Results(recs, Filter{Specs: []string{"int-alu"}})
	if len(got) != 2 {
		t.Fatalf("filtered to %d results, want 2", len(got))
	}
	for _, r := range got {
		if r.Spec != "int-alu" {
			t.Errorf("filter leaked %q", r.Spec)
		}
	}
}

// TestLoadV1RecordsUnderV2 is the schema-compat test: a store written by the
// v1 build (records without counters) must load under the v2 reader exactly
// as before, mixed freely with v2 records carrying measured activity
// vectors — an accumulated dataset survives the schema bump.
func TestLoadV1RecordsUnderV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	v1 := `{"v":1,"key":"int-alu||t1+0|none|mock|i1000+0","saved_at":"2026-07-01T00:00:00Z","result":{"spec":"int-alu","component":"int-alu","threads":1,"iters":1000,"placement":"none","meter":"mock","power_w_summary":{"mean":12}}}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}

	// Append a v2 record with counters on top of the v1 file.
	withCounters := mkResult("chase-dram", 1, "none")
	withCounters.Counters = &harness.Counters{
		Backend: "mock",
		Events:  []harness.CounterEvent{{Event: "llc-misses", TotalMean: 5.5e6, RateHzMean: 5.5e7}},
		Threads: []harness.CounterThread{{CPU: -1, TotalMean: []float64{5.5e6}, RateHzMean: []float64{5.5e7}}},
		Reps:    2,
	}
	if _, err := Append(path, []harness.Result{withCounters}); err != nil {
		t.Fatal(err)
	}

	recs, err := Load(path)
	if err != nil {
		t.Fatalf("mixed v1/v2 store failed to load: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2", len(recs))
	}
	if recs[0].V != 1 || recs[0].Result.Counters != nil {
		t.Errorf("v1 record = v%d counters=%v, want v1 with no counters", recs[0].V, recs[0].Result.Counters)
	}
	if recs[1].V != SchemaVersion {
		t.Errorf("appended record schema = %d, want %d", recs[1].V, SchemaVersion)
	}
	c := recs[1].Result.Counters
	if c == nil || len(c.Events) != 1 || c.Events[0].Event != "llc-misses" || c.Events[0].RateHzMean != 5.5e7 {
		t.Errorf("counters did not round-trip: %+v", c)
	}
}

// TestLoadV2RecordsUnderV3 extends the compat guarantee one schema further: a
// store written by the v2 build (records with counters but no series) must
// load under the v3 reader unchanged, mixed freely with v3 records carrying a
// sampling interval and per-repetition time-resolved series.
func TestLoadV2RecordsUnderV3(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	v2 := `{"v":2,"key":"chase-l1||t1+0|none|mock|i1000+0","saved_at":"2026-07-15T00:00:00Z","result":{"spec":"chase-l1","component":"l1","threads":1,"iters":1000,"placement":"none","meter":"mock","power_w_summary":{"mean":20},"counters":{"backend":"mock","reps":2,"events":[{"event":"cycles","total_mean":1e9,"rate_hz_mean":3e9}]}}}` + "\n"
	if err := os.WriteFile(path, []byte(v2), 0o644); err != nil {
		t.Fatal(err)
	}

	// Append a v3 record carrying an in-trial sampling series on top.
	withSeries := mkResult("int-alu", 2, "compact")
	withSeries.SampleInterval = 10 * time.Millisecond
	withSeries.Samples = []harness.Sample{{
		EnergyJ:    1.5,
		TimeS:      0.03,
		MeterTimeS: 0.031,
		PowerW:     48.4,
		Series: &meter.Series{
			StartAt:   time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
			IntervalS: 0.01,
			Events:    []string{"cycles"},
			Points: []meter.SeriesPoint{
				{TS: 0.01, DomainUJ: []uint64{500000}, PowerW: 50, Counts: []float64{3e7}},
				{TS: 0.02, DomainUJ: []uint64{480000}, PowerW: 48, Counts: []float64{2.9e7}},
			},
		},
	}}
	if _, err := Append(path, []harness.Result{withSeries}); err != nil {
		t.Fatal(err)
	}

	recs, err := Load(path)
	if err != nil {
		t.Fatalf("mixed v2/v3 store failed to load: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2", len(recs))
	}
	old := recs[0]
	if old.V != 2 || old.Result.SampleInterval != 0 {
		t.Errorf("v2 record = v%d interval=%v, want v2 with no sample interval", old.V, old.Result.SampleInterval)
	}
	if c := old.Result.Counters; c == nil || len(c.Events) != 1 || c.Events[0].Event != "cycles" {
		t.Errorf("v2 counters did not survive the v3 reader: %+v", c)
	}
	neu := recs[1]
	if neu.V != SchemaVersion {
		t.Errorf("appended record schema = %d, want %d", neu.V, SchemaVersion)
	}
	if neu.Result.SampleInterval != 10*time.Millisecond {
		t.Errorf("sample interval = %v, want 10ms", neu.Result.SampleInterval)
	}
	if len(neu.Result.Samples) != 1 || neu.Result.Samples[0].Series == nil {
		t.Fatalf("series missing from round-trip: %+v", neu.Result.Samples)
	}
	if !reflect.DeepEqual(neu.Result.Samples[0], withSeries.Samples[0]) {
		t.Errorf("sample did not round-trip:\n got %+v\nwant %+v", neu.Result.Samples[0], withSeries.Samples[0])
	}
}
