package store

// This file implements the single-file JSONL layout: the original store
// format, one record per line. Reads go through an envelope-only line scan
// (v and key, never the result payload) that feeds the same dedup index
// the sharded layout builds from its sidecars, so Query/Keys semantics are
// identical across layouts.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// envelope is the per-line metadata the index scan decodes — deliberately
// excluding the result, which can be orders of magnitude larger.
type envelope struct {
	V   int    `json:"v"`
	Key string `json:"key"`
}

// fileWriter is an open appender on a single-file store.
type fileWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// fileAppendRaw opens the file on first use (creating it, and truncating a
// crash-torn trailing partial line — its record was already unrecoverable,
// and appending after it would corrupt the new record too), then buffers
// the line.
func (s *Store) fileAppendRaw(line []byte) error {
	if s.fw == nil {
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := truncateTornLine(f); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.fw = &fileWriter{f: f, bw: bufio.NewWriter(f)}
	}
	if _, err := s.fw.bw.Write(line); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fw.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (w *fileWriter) flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

func (w *fileWriter) close(sync bool) error {
	err := w.flush()
	if sync && err == nil {
		if serr := w.f.Sync(); serr != nil {
			err = fmt.Errorf("store: fsync: %w", serr)
		}
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: close: %w", cerr)
	}
	return err
}

// cleanLength returns the byte length of the file's cleanly terminated
// prefix — everything up to and including the last newline — scanning
// backwards so a huge store is not read to find a torn tail.
func cleanLength(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	buf := make([]byte, 64<<10)
	end := size
	for end > 0 {
		n := int64(len(buf))
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return 0, err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return end - n + i + 1, nil
			}
		}
		end -= n
	}
	// No newline at all: the whole file is one torn line.
	return 0, nil
}

// truncateTornLine drops an unterminated final line left by a crash
// mid-append.
func truncateTornLine(f *os.File) error {
	clean, err := cleanLength(f)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if clean == st.Size() {
		return nil
	}
	return f.Truncate(clean)
}

// fileIndex builds the dedup index by scanning line envelopes. Error
// semantics match the historical Load exactly: a torn or malformed final
// line is tolerated (crash mid-append), a malformed line with records
// after it is corruption, and a record from a newer schema is rejected.
func (s *Store) fileIndex(f Filter) (*index, error) {
	fh, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer fh.Close()

	ix := newIndex()
	r := bufio.NewReaderSize(fh, 64<<10)
	var off int64
	lineNo := 0
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) == 0 {
			if rerr == io.EOF {
				return ix, nil
			}
			if rerr != nil {
				return nil, fmt.Errorf("store: %s: %w", s.path, rerr)
			}
			continue
		}
		lineNo++
		content := bytes.TrimSuffix(line, []byte{'\n'})
		if len(content) > maxLine {
			return nil, fmt.Errorf("store: %s:%d: line exceeds %d bytes", s.path, lineNo, maxLine)
		}
		if len(content) > 0 {
			var env envelope
			if jerr := json.Unmarshal(content, &env); jerr != nil {
				// A torn or malformed final line is expected after a crash
				// mid-append; a malformed line with data after it is
				// corruption.
				if atEOF(r, rerr) {
					return ix, nil
				}
				return nil, fmt.Errorf("store: %s:%d: %w", s.path, lineNo, jerr)
			}
			if env.V < 1 || env.V > SchemaVersion {
				return nil, fmt.Errorf("store: %s:%d: record schema v%d not supported (this build reads up to v%d)",
					s.path, lineNo, env.V, SchemaVersion)
			}
			if f.MatchKey(env.Key) {
				ix.add(env.Key, loc{off: off, n: len(content)})
			}
		}
		off += int64(len(line))
		if rerr == io.EOF {
			return ix, nil
		}
		if rerr != nil {
			return nil, fmt.Errorf("store: %s: %w", s.path, rerr)
		}
	}
}

// atEOF reports whether the reader has no further content beyond the line
// whose read returned rerr.
func atEOF(r *bufio.Reader, rerr error) bool {
	if rerr == io.EOF {
		return true
	}
	_, perr := r.Peek(1)
	return perr == io.EOF
}

// fileCompact rewrites the file keeping only each key's winning record,
// byte for byte, in first-appearance order. The rewrite goes through a
// temp file and rename, so a crash leaves either the old or the new store
// intact.
func (s *Store) fileCompact(ix *index) (kept int, err error) {
	src, err := os.Open(s.path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer src.Close()

	tmp, err := os.CreateTemp(filepath.Dir(s.path), "store-compact-*")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	buf := []byte{}
	for _, key := range ix.order {
		l := ix.winner[key]
		if cap(buf) < l.n {
			buf = make([]byte, l.n)
		}
		buf = buf[:l.n]
		if _, err := src.ReadAt(buf, l.off); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
		if err := w.WriteByte('\n'); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(s.path))
	return len(ix.order), nil
}
