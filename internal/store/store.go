package store

import (
	"errors"
	"io/fs"
	"time"

	"energybench/internal/harness"
)

// SchemaVersion is the record schema this package writes. Readers accept
// records with a version at or below their own and reject newer ones.
//
// History:
//
//	v1 — initial record shape (key, saved_at, result).
//	v2 — result may carry a measured activity vector (result.counters:
//	     scaled hardware event counts per thread). v1 records load
//	     unchanged; their results simply have no counters.
//	v3 — result may carry a sampling interval (result.sample_interval_ns)
//	     and per-repetition time-resolved series (result.samples[i].series:
//	     per-domain µJ deltas, power, and event counts per tick), plus the
//	     meter-window duration per sample (result.samples[i].meter_time_s).
//	     v1/v2 records load unchanged; their samples simply have no series.
//	v4 — result may carry the executing machine's identity (result.host,
//	     result.microarch), stamped by the fleet coordinator when merging
//	     remote agents' results; the configuration key then grows trailing
//	     "|h:host" and "|u:microarch" dimensions so the same configuration
//	     measured on two machines stays two live records. v1–v3 records
//	     (and any result without a host) load unchanged with their exact
//	     six-field keys.
//	v5 — result may be an external-workload measurement (result.workload,
//	     result.workload_components: the declared per-thread activity mix);
//	     the configuration key then carries a "|w:workload" dimension
//	     between the six base fields and any fleet dimensions. v1–v4
//	     records (and any workload-less result) load unchanged with their
//	     exact keys.
const SchemaVersion = 5

// maxLine bounds one JSONL record; results with many samples stay far under.
const maxLine = 16 << 20

// Record is one stored measurement: a harness result plus the metadata
// needed to merge stores written at different times by different builds.
type Record struct {
	V       int            `json:"v"`
	Key     string         `json:"key"`
	SavedAt time.Time      `json:"saved_at"`
	Result  harness.Result `json:"result"`
}

// Key derives the configuration identity of a result: two results with the
// same key measured the same configuration and the newer one supersedes the
// older on load. It delegates to harness.ResultKey, the same identity
// planned trials compute via Trial.Key, so resumable sweeps can match
// stored records against not-yet-run trials.
func Key(r harness.Result) string {
	return harness.ResultKey(r)
}

// Filter selects stored results. Zero-value fields match everything; a
// non-empty Specs matches a result whose primary or co-run spec is listed.
// Keys and Meters select on the record's configuration key and energy
// backend; in sharded stores every field is evaluated against the per-key
// index first, so non-matching records are never read off disk.
type Filter struct {
	Specs      []string
	Threads    []int
	Placements []string
	Meters     []string
	Keys       []string
	// Hosts selects on the executing machine stamped by a fleet merge; a
	// single-host result (no host) matches only an empty Hosts filter.
	Hosts []string
	// Workloads selects on the external-workload dimension; a kernel
	// result (no workload) matches only an empty Workloads filter.
	Workloads []string
}

// IsZero reports whether the filter matches everything.
func (f Filter) IsZero() bool {
	return len(f.Specs) == 0 && len(f.Threads) == 0 && len(f.Placements) == 0 &&
		len(f.Meters) == 0 && len(f.Keys) == 0 && len(f.Hosts) == 0 &&
		len(f.Workloads) == 0
}

// Match reports whether the result passes the filter.
func (f Filter) Match(r harness.Result) bool {
	if len(f.Keys) > 0 && !containsString(f.Keys, harness.ResultKey(r)) {
		return false
	}
	return f.matchFields(r.Spec, r.SpecB, r.Threads, string(r.Placement), r.Meter, r.Host, r.Workload)
}

// MatchKey reports whether a record stored under the given configuration
// key can pass the filter, judged from the key alone. It is conservative:
// false only when the key proves a mismatch, true whenever the key cannot
// decide (unparseable keys from foreign builds), so it is safe to use as an
// index-level pre-filter before reading record bytes — Match is still the
// authority on the decoded result.
func (f Filter) MatchKey(key string) bool {
	if len(f.Keys) > 0 && !containsString(f.Keys, key) {
		return false
	}
	kf, ok := harness.ParseKey(key)
	if !ok {
		return true
	}
	return f.matchFields(kf.Spec, kf.SpecB, kf.Threads, string(kf.Placement), kf.Meter, kf.Host, kf.Workload)
}

// matchFields is the single filter predicate shared by Match and MatchKey,
// so the index pre-filter can never disagree with the record-level filter.
func (f Filter) matchFields(spec, specB string, threads int, placement, meter, host, workload string) bool {
	if len(f.Specs) > 0 {
		ok := false
		for _, s := range f.Specs {
			if spec == s || (specB != "" && specB == s) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Threads) > 0 {
		ok := false
		for _, t := range f.Threads {
			if threads == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Placements) > 0 && !containsString(f.Placements, placement) {
		return false
	}
	if len(f.Meters) > 0 && !containsString(f.Meters, meter) {
		return false
	}
	if len(f.Hosts) > 0 && !containsString(f.Hosts, host) {
		return false
	}
	if len(f.Workloads) > 0 && !containsString(f.Workloads, workload) {
		return false
	}
	return true
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Results extracts the results passing the filter from loaded records.
func Results(recs []Record, f Filter) []harness.Result {
	var out []harness.Result
	for _, rec := range recs {
		if f.Match(rec.Result) {
			out = append(out, rec.Result)
		}
	}
	return out
}

// Load reads every record from the store at path and dedups by key with the
// last occurrence winning, preserving first-appearance order. A truncated
// final line (crash mid-append) is tolerated; any other malformed line or a
// record from a newer schema is an error.
//
// Deprecated: Load materializes the whole corpus. Use Open and stream
// Store.Query instead; Load remains only as a thin wrapper for callers that
// genuinely need every record in memory.
func Load(path string) ([]Record, error) {
	st, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []Record
	for rec, err := range st.Query(Filter{}) {
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Keys returns the set of configuration keys the store at path holds, for
// resumable sweeps: the planner drops trials whose key is already present.
// A missing store yields an empty set (a fresh sweep resumes trivially);
// any other failure is an error. Only key envelopes are read — results are
// never deserialized.
func Keys(path string) (map[string]bool, error) {
	st, err := Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Keys()
}

// Append writes the results to the store at path, creating it if needed
// (a single-file store for .jsonl/.json paths, a sharded directory store
// otherwise), and returns how many records were written.
func Append(path string, results []harness.Result) (int, error) {
	st, err := Create(path)
	if err != nil {
		return 0, err
	}
	n, err := st.Append(results)
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Compact rewrites the store at path with duplicates removed, so long-lived
// stores that re-measure configurations don't grow without bound. Record
// bytes are preserved exactly; single-file stores are rewritten through a
// temp file and rename, sharded stores into a fresh segment generation
// committed by one manifest swap, so a crash leaves either the old or the
// new store intact.
func Compact(path string) (kept int, err error) {
	st, err := Open(path)
	if err != nil {
		return 0, err
	}
	kept, err = st.Compact()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return kept, err
}
