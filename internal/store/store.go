// Package store persists harness results as a versioned JSONL file, one
// record per line. Appending is cheap and crash-tolerant (a torn final line
// is skipped on load), runs from different invocations accumulate into one
// dataset, and loading dedups by configuration key (last write wins) so
// re-running a configuration supersedes its old measurement. This is what
// turns one-shot sweeps into the accumulating datasets the model-fitting
// layer consumes.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"energybench/internal/harness"
)

// SchemaVersion is the record schema this package writes. Readers accept
// records with a version at or below their own and reject newer ones.
//
// History:
//
//	v1 — initial record shape (key, saved_at, result).
//	v2 — result may carry a measured activity vector (result.counters:
//	     scaled hardware event counts per thread). v1 records load
//	     unchanged; their results simply have no counters.
const SchemaVersion = 2

// maxLine bounds one JSONL record; results with many samples stay far under.
const maxLine = 16 << 20

// Record is one stored measurement: a harness result plus the metadata
// needed to merge stores written at different times by different builds.
type Record struct {
	V       int            `json:"v"`
	Key     string         `json:"key"`
	SavedAt time.Time      `json:"saved_at"`
	Result  harness.Result `json:"result"`
}

// Key derives the configuration identity of a result: two results with the
// same key measured the same configuration and the newer one supersedes the
// older on load. It delegates to harness.ResultKey, the same identity
// planned trials compute via Trial.Key, so resumable sweeps can match
// stored records against not-yet-run trials.
func Key(r harness.Result) string {
	return harness.ResultKey(r)
}

// Append writes the results to the store at path, creating it if needed,
// and returns how many records were written. A crash-torn trailing partial
// line (missing its newline) is truncated away first — its record was
// already unrecoverable, and appending after it would corrupt the new
// record too.
func Append(path string, results []harness.Result) (int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := truncateTornLine(f); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	now := time.Now().UTC()
	for _, res := range results {
		if err := enc.Encode(Record{V: SchemaVersion, Key: Key(res), SavedAt: now, Result: res}); err != nil {
			f.Close()
			return 0, fmt.Errorf("store: encode: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, fmt.Errorf("store: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("store: close: %w", err)
	}
	return len(results), nil
}

// truncateTornLine drops an unterminated final line left by a crash
// mid-append, scanning backwards for the last newline.
func truncateTornLine(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, 64<<10)
	end := size
	for end > 0 {
		n := int64(len(buf))
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return err
		}
		// On the first (rightmost) chunk, a trailing newline means the
		// file is cleanly terminated and nothing needs repair.
		if end == size && buf[n-1] == '\n' {
			return nil
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return f.Truncate(end - n + i + 1)
			}
		}
		end -= n
	}
	// No newline at all: the whole file is one torn line.
	return f.Truncate(0)
}

// Load reads every record from the store at path and dedups by key with the
// last occurrence winning, preserving first-appearance order so output is
// stable across re-runs of individual configurations. A truncated final
// line (crash mid-append) is tolerated; any other malformed line or a
// record from a newer schema is an error.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	byKey := map[string]int{} // key → index in out
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line is expected after a crash mid-append; a
			// malformed line with records after it is corruption.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("store: %s:%d: %w", path, lineNo, err)
		}
		if rec.V < 1 || rec.V > SchemaVersion {
			return nil, fmt.Errorf("store: %s:%d: record schema v%d not supported (this build reads up to v%d)",
				path, lineNo, rec.V, SchemaVersion)
		}
		if i, ok := byKey[rec.Key]; ok {
			out[i] = rec
			continue
		}
		byKey[rec.Key] = len(out)
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return out, nil
}

// Keys returns the set of configuration keys the store at path holds, for
// resumable sweeps: the planner drops trials whose key is already present.
// A missing store file yields an empty set (a fresh sweep resumes trivially);
// any other load failure is an error.
func Keys(path string) (map[string]bool, error) {
	recs, err := Load(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(recs))
	for _, rec := range recs {
		keys[rec.Key] = true
	}
	return keys, nil
}

// Sink is a harness.ResultSink that appends each completed configuration to
// the store as it finishes, flushing and closing the file per record. A
// sweep killed mid-flight (SIGINT, crash) therefore never loses a completed
// trial: everything consumed before the interrupt is already durable.
type Sink struct {
	path  string
	count int
}

// NewSink returns a per-configuration flushing sink over the store at path.
func NewSink(path string) *Sink { return &Sink{path: path} }

// Consume appends one result and flushes it to disk before returning.
func (s *Sink) Consume(r harness.Result) error {
	if _, err := Append(s.path, []harness.Result{r}); err != nil {
		return err
	}
	s.count++
	return nil
}

// Count reports how many results this sink has persisted.
func (s *Sink) Count() int { return s.count }

// Close is a no-op: every record is already flushed.
func (s *Sink) Close() error { return nil }

// Compact rewrites the store in place with duplicates removed, so long-lived
// stores that re-measure configurations don't grow without bound. The
// rewrite goes through a temp file and rename, so a crash leaves either the
// old or the new store intact.
func Compact(path string) (kept int, err error) {
	recs, err := Load(path)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "store-compact-*")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: encode: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return len(recs), nil
}

// Filter selects stored results. Zero-value fields match everything; a
// non-empty Specs matches a result whose primary or co-run spec is listed.
type Filter struct {
	Specs      []string
	Threads    []int
	Placements []string
}

// Match reports whether the result passes the filter.
func (f Filter) Match(r harness.Result) bool {
	if len(f.Specs) > 0 {
		ok := false
		for _, s := range f.Specs {
			if r.Spec == s || (r.SpecB != "" && r.SpecB == s) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Threads) > 0 {
		ok := false
		for _, t := range f.Threads {
			if r.Threads == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Placements) > 0 {
		ok := false
		for _, p := range f.Placements {
			if string(r.Placement) == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Results extracts the results passing the filter from loaded records.
func Results(recs []Record, f Filter) []harness.Result {
	var out []harness.Result
	for _, rec := range recs {
		if f.Match(rec.Result) {
			out = append(out, rec.Result)
		}
	}
	return out
}
