// Package store persists harness results as versioned JSONL records in one
// of two layouts behind a single API. A plain single-file JSONL store (the
// original format) keeps one record per line; a sharded segment store is a
// directory of append-only segment files plus a manifest listing live
// segments and a per-key sidecar index per segment, so key scans and point
// lookups never deserialize the corpus. Open auto-detects the layout, and
// Query streams deduped records — last write per configuration key wins,
// first-appearance order is preserved — through the same iterator for both,
// so consumers are layout-agnostic. Appending is cheap and crash-tolerant
// (a torn final line is skipped per file/segment), runs from different
// invocations accumulate into one dataset, and re-running a configuration
// supersedes its old measurement. This is what turns one-shot sweeps into
// the accumulating datasets the model-fitting layer consumes.
//
// Records carry a schema version (SchemaVersion, currently 4); every
// version back to v1 loads transparently. The record schema's history and
// both on-disk layouts are documented in docs/WIRE.md.
package store
