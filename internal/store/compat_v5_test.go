package store

import (
	"os"
	"path/filepath"
	"testing"

	"energybench/internal/harness"
)

// fixtureV1toV4 is one record per prior schema version, exactly as those
// builds wrote them: v1 (bare), v2 (counters), v3 (sampling series), v4
// (fleet host/microarch stamp). The v5 reader must load all of them
// unchanged — an accumulated dataset survives every schema bump.
const fixtureV1toV4 = `{"v":1,"key":"int-alu||t1+0|none|mock|i1000+0","saved_at":"2026-05-01T00:00:00Z","result":{"spec":"int-alu","component":"int-alu","threads":1,"iters":1000,"placement":"none","meter":"mock","power_w_summary":{"mean":12}}}
{"v":2,"key":"chase-l1||t1+0|none|mock|i1000+0","saved_at":"2026-06-01T00:00:00Z","result":{"spec":"chase-l1","component":"l1","threads":1,"iters":1000,"placement":"none","meter":"mock","power_w_summary":{"mean":20},"counters":{"backend":"mock","reps":2,"events":[{"event":"cycles","total_mean":1e9,"rate_hz_mean":3e9}]}}}
{"v":3,"key":"int-alu||t2+0|compact|mock|i1000+0","saved_at":"2026-07-01T00:00:00Z","result":{"spec":"int-alu","component":"int-alu","threads":2,"iters":1000,"placement":"compact","meter":"mock","power_w_summary":{"mean":48},"sample_interval_ns":10000000}}
{"v":4,"key":"int-alu||t1+0|none|mock|i1000+0|h:h1|u:TestCPU v1","saved_at":"2026-07-20T00:00:00Z","result":{"spec":"int-alu","component":"int-alu","threads":1,"iters":1000,"placement":"none","meter":"mock","host":"h1","microarch":"TestCPU v1","power_w_summary":{"mean":13}}}
`

// mkWorkloadResult synthesizes the result an extern trial stores.
func mkWorkloadResult(workload string, threads int) harness.Result {
	r := mkResult(workload, threads, "none")
	r.Iters = 1
	r.Workload = workload
	return r
}

// TestLoadV1toV4RecordsUnderV5 extends the compat chain to the workload
// schema: every prior version's records load under the v5 reader exactly as
// written, a freshly appended workload record carries the new "|w:" key
// dimension, and the old records' keys stay byte-identical.
func TestLoadV1toV4RecordsUnderV5(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	if err := os.WriteFile(path, []byte(fixtureV1toV4), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Append(path, []harness.Result{mkWorkloadResult("stress", 2)}); err != nil {
		t.Fatal(err)
	}

	recs, err := Load(path)
	if err != nil {
		t.Fatalf("mixed v1..v5 store failed to load: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("loaded %d records, want 5", len(recs))
	}
	for i, wantV := range []int{1, 2, 3, 4} {
		if recs[i].V != wantV {
			t.Errorf("record %d schema = %d, want %d (old records must load as written)", i, recs[i].V, wantV)
		}
		if recs[i].Result.Workload != "" {
			t.Errorf("v%d record grew a workload %q", wantV, recs[i].Result.Workload)
		}
	}
	// The old keys survive byte-identically, including the v4 host form.
	if got, want := recs[3].Key, "int-alu||t1+0|none|mock|i1000+0|h:h1|u:TestCPU v1"; got != want {
		t.Errorf("v4 key = %q, want %q", got, want)
	}
	neu := recs[4]
	if neu.V != SchemaVersion {
		t.Errorf("appended record schema = %d, want %d", neu.V, SchemaVersion)
	}
	if got, want := neu.Key, "stress||t2+0|none|mock|i1+0|w:stress"; got != want {
		t.Errorf("workload key = %q, want %q", got, want)
	}
	if neu.Result.Workload != "stress" {
		t.Errorf("workload field lost: %+v", neu.Result)
	}
}

// TestWorkloadFilterPushdownBothLayouts verifies --where workload= semantics
// on the single-file and sharded layouts through the unified Store API: the
// filter prunes from the key index alone, kernel results (no workload) match
// only an empty Workloads filter, and mixed old-schema records are untouched
// by a workload query.
func TestWorkloadFilterPushdownBothLayouts(t *testing.T) {
	results := []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("chase-dram", 2, "none"),
		mkWorkloadResult("stress", 1),
		mkWorkloadResult("stress", 2),
		mkWorkloadResult("other", 1),
	}
	layouts := map[string]string{
		"single-file": filepath.Join(t.TempDir(), "db.jsonl"),
		"sharded":     filepath.Join(t.TempDir(), "db-dir"),
	}
	for name, path := range layouts {
		t.Run(name, func(t *testing.T) {
			s, err := Create(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Append(results); err != nil {
				t.Fatal(err)
			}

			query := func(f Filter) []harness.Result {
				t.Helper()
				var out []harness.Result
				for rec, err := range s.Query(f) {
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, rec.Result)
				}
				return out
			}

			stress := query(Filter{Workloads: []string{"stress"}})
			if len(stress) != 2 {
				t.Fatalf("workload=stress matched %d results, want 2", len(stress))
			}
			for _, r := range stress {
				if r.Workload != "stress" {
					t.Errorf("filter leaked %q/%q", r.Spec, r.Workload)
				}
			}
			// Kernel results carry no workload: a named workload filter
			// never sees them, while the explicit empty value selects
			// exactly them (the same convention Hosts uses).
			if got := query(Filter{Workloads: []string{"stress", "other"}}); len(got) != 3 {
				t.Errorf("workload in (stress, other) matched %d results, want 3", len(got))
			}
			kernels := query(Filter{Workloads: []string{""}})
			if len(kernels) != 2 {
				t.Fatalf("empty workload value matched %d results, want the 2 kernel rows", len(kernels))
			}
			for _, r := range kernels {
				if r.Workload != "" {
					t.Errorf("empty-value filter leaked workload %q", r.Workload)
				}
			}
			if got := query(Filter{}); len(got) != len(results) {
				t.Errorf("unfiltered query = %d results, want %d", len(got), len(results))
			}
			// Pushdown composes with the other key dimensions.
			if got := query(Filter{Workloads: []string{"stress"}, Threads: []int{2}}); len(got) != 1 {
				t.Errorf("workload=stress threads=2 matched %d, want 1", len(got))
			}
		})
	}
}

// TestMatchKeyWorkloadDimension pins the index-level pre-filter: a workload
// filter must prove mismatches from the key alone (no record read) on both
// workload-bearing and kernel keys, and stay conservative on foreign keys.
func TestMatchKeyWorkloadDimension(t *testing.T) {
	f := Filter{Workloads: []string{"stress"}}
	cases := []struct {
		key  string
		want bool
	}{
		{"stress||t1+0|none|mock|i1+0|w:stress", true},
		{"other||t1+0|none|mock|i1+0|w:other", false},
		{"int-alu||t1+0|none|mock|i1000+0", false},
		{"stress||t1+0|none|mock|i1+0|w:stress|h:h1", true},
		// Unparseable foreign keys cannot be excluded at the index level.
		{"not a key", true},
	}
	for _, tc := range cases {
		if got := f.MatchKey(tc.key); got != tc.want {
			t.Errorf("MatchKey(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
}
