package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"energybench/internal/harness"
)

// collect drains a query into a slice, failing the test on iterator errors.
func collect(t *testing.T, st *Store, f Filter) []Record {
	t.Helper()
	var out []Record
	for rec, err := range st.Query(f) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

// openCollect opens the store at path just for one query.
func openCollect(t *testing.T, path string, f Filter) []Record {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer st.Close()
	return collect(t, st, f)
}

func TestCreateDetectsLayoutByExtension(t *testing.T) {
	dir := t.TempDir()

	file, err := Create(filepath.Join(dir, "db.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if file.Sharded() {
		t.Error(".jsonl path created a sharded store, want single-file")
	}

	sharded, err := Create(filepath.Join(dir, "results-store"))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if !sharded.Sharded() {
		t.Error("extension-less path created a single-file store, want sharded")
	}
	if _, err := os.Stat(filepath.Join(dir, "results-store", manifestName)); err != nil {
		t.Errorf("sharded store has no manifest: %v", err)
	}

	// Open auto-detects both layouts, and refuses to adopt a random
	// non-empty directory.
	if st, err := Open(filepath.Join(dir, "results-store")); err != nil || !st.Sharded() {
		t.Errorf("Open(dir) = sharded=%v, %v; want sharded store", st.Sharded(), err)
	} else {
		st.Close()
	}
	junk := filepath.Join(dir, "not-a-store")
	os.MkdirAll(junk, 0o755)
	os.WriteFile(filepath.Join(junk, "something.txt"), []byte("hi"), 0o644)
	if _, err := Open(junk); err == nil || !strings.Contains(err.Error(), "not a sharded store") {
		t.Errorf("Open over a foreign directory = %v, want refusal", err)
	}
}

// TestShardedQueryMatchesFileLayout writes the same result sequence —
// duplicates included — through both layouts and requires identical query
// views: same keys, same order, same surviving results.
func TestShardedQueryMatchesFileLayout(t *testing.T) {
	dir := t.TempDir()
	dup := mkResult("int-alu", 1, "none")
	rewrite := dup
	rewrite.EnergyJ.Mean = 77
	in := []harness.Result{
		dup,
		mkResult("int-alu", 2, "scatter"),
		mkResult("chase-l1", 1, "compact"),
		rewrite, // same key as dup: must win, in dup's position
	}

	filePath := filepath.Join(dir, "db.jsonl")
	shardPath := filepath.Join(dir, "db-store")
	for _, path := range []string{filePath, shardPath} {
		st, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Append(in); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	fileRecs := openCollect(t, filePath, Filter{})
	shardRecs := openCollect(t, shardPath, Filter{})
	if len(fileRecs) != 3 || len(shardRecs) != 3 {
		t.Fatalf("file=%d sharded=%d records, want 3 each after dedup", len(fileRecs), len(shardRecs))
	}
	for i := range fileRecs {
		if fileRecs[i].Key != shardRecs[i].Key {
			t.Errorf("record %d key: file=%q sharded=%q", i, fileRecs[i].Key, shardRecs[i].Key)
		}
		if !reflect.DeepEqual(fileRecs[i].Result, shardRecs[i].Result) {
			t.Errorf("record %d result diverges between layouts", i)
		}
	}
	if shardRecs[0].Result.EnergyJ.Mean != 77 {
		t.Errorf("sharded dedup kept the stale record: %+v", shardRecs[0].Result)
	}

	// The filtered views must agree too.
	f := Filter{Specs: []string{"int-alu"}, Threads: []int{2}}
	if got, want := openCollect(t, shardPath, f), openCollect(t, filePath, f); len(got) != 1 || len(want) != 1 || got[0].Key != want[0].Key {
		t.Errorf("filtered views diverge: sharded=%d file=%d", len(got), len(want))
	}
}

func TestShardedSegmentRollAndManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SegmentTarget = 256 // force a roll every record or two
	var want []string
	for i := 1; i <= 8; i++ {
		r := mkResult("int-alu", i, "none")
		if _, err := st.Append([]harness.Result{r}); err != nil {
			t.Fatal(err)
		}
		want = append(want, Key(r))
	}
	if st.Segments() < 3 {
		t.Errorf("got %d segments under a 256-byte target, want several", st.Segments())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest must list every segment in order and carry record counts
	// for the sealed ones.
	data, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, seg := range man.Segments {
		if !strings.HasPrefix(seg.Name, segPrefix) || !strings.HasSuffix(seg.Name, segSuffix) {
			t.Errorf("manifest segment name %q is malformed", seg.Name)
		}
		total += seg.Records
	}
	if total != len(want) {
		t.Errorf("manifest record counts sum to %d, want %d", total, len(want))
	}

	recs := openCollect(t, path, Filter{})
	if len(recs) != len(want) {
		t.Fatalf("query over rolled segments yielded %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Key != want[i] {
			t.Errorf("record %d = %q, want %q (order across segments)", i, rec.Key, want[i])
		}
	}
}

func TestShardedToleratesTornSegmentTailAndRepairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]harness.Result{mkResult("int-alu", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the active segment mid-record, as a crash would.
	seg := filepath.Join(path, "seg-00000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":2,"key":"torn","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if recs := openCollect(t, path, Filter{}); len(recs) != 1 {
		t.Fatalf("torn segment tail: got %d records, want 1", len(recs))
	}

	// Appending over the torn tail must truncate it, not concatenate.
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]harness.Result{mkResult("int-alu", 2, "none")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	recs := openCollect(t, path, Filter{})
	if len(recs) != 2 {
		t.Fatalf("after append-over-torn-tail: %d records, want 2", len(recs))
	}
	if recs[0].Result.Threads != 1 || recs[1].Result.Threads != 2 {
		t.Errorf("records = t%d, t%d; want t1 then t2", recs[0].Result.Threads, recs[1].Result.Threads)
	}
}

func TestShardedRebuildsMissingOrStaleSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []harness.Result{mkResult("int-alu", 1, "none"), mkResult("chase-l1", 1, "none")}
	if _, err := st.Append(in); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Deleting the sidecar must not lose anything: the segment is the
	// source of truth.
	sidecar := filepath.Join(path, "seg-00000001.keys")
	if err := os.Remove(sidecar); err != nil {
		t.Fatal(err)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || !keys[Key(in[0])] || !keys[Key(in[1])] {
		t.Errorf("keys after sidecar loss = %v, want both configurations", keys)
	}
	st.Close()

	// A sidecar truncated mid-line is trusted only up to the tear; appending
	// through the store repairs and persists it.
	data, err := os.ReadFile(sidecar)
	if err == nil && len(data) > 3 {
		os.WriteFile(sidecar, data[:len(data)-3], 0o644)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]harness.Result{mkResult("fp-mac", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := openCollect(t, path, Filter{}); len(recs) != 3 {
		t.Errorf("after stale-sidecar append: %d records, want 3", len(recs))
	}
}

func TestShardedCompactDropsDuplicatesAndOldSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SegmentTarget = 512
	r := mkResult("int-alu", 1, "none")
	other := mkResult("chase-l1", 1, "none")
	for i := 0; i < 6; i++ {
		r.EnergyJ.Mean = float64(i)
		if _, err := st.Append([]harness.Result{r, other}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	segsBefore := st.Segments()

	kept, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Errorf("compact kept %d, want 2", kept)
	}
	if st.Segments() >= segsBefore {
		t.Errorf("compact left %d segments (was %d), want fewer", st.Segments(), segsBefore)
	}
	after, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("compact changed the key set:\nbefore %v\nafter  %v", before, after)
	}
	recs := collect(t, st, Filter{})
	if len(recs) != 2 || recs[0].Result.EnergyJ.Mean != 5 {
		t.Errorf("compact lost last-wins value: %+v", recs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generation's files must be gone; only live segments and their
	// sidecars (plus the manifest) remain.
	entries, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if want := st.Segments()*2 + 1; len(entries) != want {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("store directory holds %v, want %d live files", names, want)
	}

	// The compacted store keeps accepting appends.
	if _, err := st.Append([]harness.Result{mkResult("fp-mac", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, st, Filter{}); len(recs) != 3 {
		t.Errorf("append after compact: %d records, want 3", len(recs))
	}
}

// TestShardMigratesFilePreservingKeysAndBytes proves the --resume contract
// across `store compact --shard`: identical key sets and identical surviving
// record bytes before and after migration, v1 records included.
func TestShardMigratesFilePreservingKeysAndBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	v1 := `{"v":1,"key":"int-alu||t1+0|none|mock|i1000+0","saved_at":"2026-07-01T00:00:00Z","result":{"spec":"int-alu","component":"int-alu","threads":1,"iters":1000,"placement":"none","meter":"mock","power_w_summary":{"mean":12}}}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path, []harness.Result{mkResult("chase-dram", 1, "none"), mkResult("chase-dram", 1, "none")}); err != nil {
		t.Fatal(err)
	}
	keysBefore, err := Keys(path)
	if err != nil {
		t.Fatal(err)
	}
	recsBefore := openCollect(t, path, Filter{})

	kept, err := Shard(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Errorf("Shard kept %d records, want 2", kept)
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("post-migration path is not a directory: %v %v", fi, err)
	}
	if _, err := os.Stat(path + ".pre-shard"); !os.IsNotExist(err) {
		t.Errorf("pre-shard backup left behind: %v", err)
	}

	keysAfter, err := Keys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keysBefore, keysAfter) {
		t.Errorf("migration changed the resume key set:\nbefore %v\nafter  %v", keysBefore, keysAfter)
	}
	recsAfter := openCollect(t, path, Filter{})
	if !reflect.DeepEqual(recsBefore, recsAfter) {
		t.Errorf("migration changed the record view:\nbefore %+v\nafter  %+v", recsBefore, recsAfter)
	}
	if recsAfter[0].V != 1 {
		t.Errorf("v1 record rewritten as v%d; migration must preserve bytes", recsAfter[0].V)
	}

	// Migrating an already-sharded store is just a compact.
	if kept, err := Shard(path); err != nil || kept != 2 {
		t.Errorf("Shard over sharded store = %d, %v; want 2, nil", kept, err)
	}
}

func TestShardedKeysWithoutReadingRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []harness.Result{mkResult("int-alu", 1, "none"), mkResult("int-alu", 2, "none")}
	if _, err := st.Append(in); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a record body but leave its envelope line structure intact at
	// the sidecar level: Keys must still work because it reads only the
	// sidecar index, never record payloads.
	seg := filepath.Join(path, "seg-00000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	garbled := strings.Replace(string(data), `"spec":"int-alu"`, `"spec":"garbage!"`, 1)
	if err := os.WriteFile(seg, []byte(garbled), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := Keys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Errorf("Keys over sidecars = %d entries, want 2", len(keys))
	}
}

func TestFilterKeyPushdownAgreesWithMatch(t *testing.T) {
	results := []harness.Result{
		mkResult("int-alu", 1, "none"),
		mkResult("fp-mac", 2, "scatter"),
		mkResult("chase-l1", 4, "compact"),
	}
	corun := mkResult("int-alu", 2, "none")
	corun.SpecB = "chase-dram"
	corun.ThreadsB = 2
	corun.ItersB = 500
	results = append(results, corun)

	filters := []Filter{
		{},
		{Specs: []string{"int-alu"}},
		{Specs: []string{"chase-dram"}}, // matches via SpecB
		{Threads: []int{2}},
		{Placements: []string{"scatter"}},
		{Meters: []string{"mock"}},
		{Meters: []string{"rapl"}},
		{Keys: []string{Key(results[0])}},
		{Specs: []string{"int-alu"}, Threads: []int{1}, Placements: []string{"none"}},
	}
	for fi, f := range filters {
		for ri, r := range results {
			match := f.Match(r)
			keyMatch := f.MatchKey(Key(r))
			// MatchKey is a conservative pre-filter: it may admit more than
			// Match, but must never reject a record Match accepts.
			if match && !keyMatch {
				t.Errorf("filter %d rejected key of matching result %d", fi, ri)
			}
			// For these filters the key carries every filtered field, so the
			// verdicts should actually coincide.
			if keyMatch != match {
				t.Errorf("filter %d: MatchKey=%v Match=%v for result %d", fi, keyMatch, match, ri)
			}
		}
	}

	// A foreign-format key must be admitted (fail open), never dropped.
	if !(Filter{Specs: []string{"x"}}).MatchKey("some-unknown-key-format") {
		t.Error("MatchKey rejected an unparseable key; it must fail open")
	}
}

func TestShardedGetPointLookup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := mkResult("int-alu", 1, "none")
	updated := r
	updated.PowerW.Mean = 123
	if _, err := st.Append([]harness.Result{r, mkResult("fp-mac", 1, "none"), updated}); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := st.Get(Key(r))
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v, %v", ok, err)
	}
	if rec.Result.PowerW.Mean != 123 {
		t.Errorf("Get returned the stale write: %+v", rec.Result.PowerW)
	}
	if _, ok, err := st.Get("no|such|t0+0|key|x|i0+0"); err != nil || ok {
		t.Errorf("Get(miss) = ok=%v, %v; want absent, nil", ok, err)
	}
}

func TestOpenRejectsNewerManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db-store")
	st, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	man := filepath.Join(path, manifestName)
	if err := os.WriteFile(man, []byte(`{"format":99,"schema":2,"segments":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "format 99") {
		t.Errorf("newer manifest format = %v, want refusal", err)
	}
	if err := os.WriteFile(man, []byte(`{"format":1,"schema":999,"segments":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "v999") {
		t.Errorf("newer store schema = %v, want refusal", err)
	}
}
