package adapt

import (
	"math"
	"math/rand"
	"sort"

	"energybench/internal/harness"
	"energybench/internal/model"
)

// selectSpread picks the seeding batch (and any batch while the model is
// still unidentifiable): a stratified spread rather than a uniform draw.
// Candidates are bucketed by workload group (spec or spec pair + placement),
// each bucket ordered extremes-first in thread count — the 1-thread and
// max-thread ends are what separate a component's coefficient from the
// intercept — and the batch round-robins across buckets in an rng-shuffled
// order. This reaches an identifiable design (every component at ≥ 2 thread
// counts) in roughly 2×#groups trials, where a uniform random draw routinely
// wastes a whole round re-measuring one group's middle.
func selectSpread(candidates []harness.Trial, n int, rng *rand.Rand) []harness.Trial {
	if n > len(candidates) {
		n = len(candidates)
	}
	groups := map[string][]harness.Trial{}
	var order []string
	for _, t := range candidates {
		key := t.Name() + "/" + string(t.Placement)
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], t)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, key := range order {
		groups[key] = extremesFirst(groups[key])
	}
	batch := make([]harness.Trial, 0, n)
	for len(batch) < n {
		picked := false
		for _, key := range order {
			if len(batch) == n {
				break
			}
			g := groups[key]
			if len(g) == 0 {
				continue
			}
			batch = append(batch, g[0])
			groups[key] = g[1:]
			picked = true
		}
		if !picked {
			break
		}
	}
	return batch
}

// extremesFirst orders trials by thread count from the outside in:
// min, max, second-min, second-max, … (plan order within equal threads).
func extremesFirst(ts []harness.Trial) []harness.Trial {
	sorted := append([]harness.Trial(nil), ts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Threads < sorted[j].Threads })
	out := make([]harness.Trial, 0, len(sorted))
	for lo, hi := 0, len(sorted)-1; lo <= hi; lo, hi = lo+1, hi-1 {
		out = append(out, sorted[lo])
		if hi != lo {
			out = append(out, sorted[hi])
		}
	}
	return out
}

// selectDOptimal picks the n candidates with the highest expected
// information gain under the current fit. Each candidate is scored by its
// predictive leverage xᵀ(XᵀX)⁻¹x — the variance of the model's prediction
// at that configuration, i.e. where the fitted coefficients are least
// constrained (D-optimal sequential design). The pick is greedy within the
// batch: after each selection the inverse design is rank-1 updated by
// Sherman–Morrison as if the trial had been measured, so the batch spreads
// over complementary directions instead of n copies of the single most
// uncertain point. Candidates whose activity falls outside the fitted basis
// (a component with no column yet) score +Inf — a new column is always the
// biggest information gain. Ties break on plan order; the selection is fully
// deterministic given the fit.
func selectDOptimal(fit *model.Fit, candidates []harness.Trial, n int) []harness.Trial {
	if n > len(candidates) {
		n = len(candidates)
	}
	inv := fit.DesignInverse()
	if inv == nil {
		// No covariance to score with; plan order is the only criterion left.
		return append([]harness.Trial(nil), candidates[:n]...)
	}
	basis := fit.DesignBasis()
	idx := make(map[string]int, len(basis))
	for j, c := range basis {
		idx[string(c)] = j + 1
	}
	rowOf := func(t harness.Trial) []float64 {
		x := make([]float64, len(basis)+1)
		x[0] = 1
		for c, a := range activityOf(t) {
			j, ok := idx[string(c)]
			if !ok {
				return nil // outside the fitted basis
			}
			x[j] = a
		}
		return x
	}

	remaining := append([]harness.Trial(nil), candidates...)
	batch := make([]harness.Trial, 0, n)
	for len(batch) < n && len(remaining) > 0 {
		best, bestScore := -1, math.Inf(-1)
		var bestRow []float64
		for i, t := range remaining {
			x := rowOf(t)
			if x == nil {
				best, bestScore, bestRow = i, math.Inf(1), nil
				break
			}
			if v := quadForm(inv, x); v > bestScore {
				best, bestScore, bestRow = i, v, x
			}
		}
		batch = append(batch, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
		if bestRow != nil {
			shermanMorrison(inv, bestRow, bestScore)
		}
	}
	return batch
}

// quadForm computes xᵀ A x.
func quadForm(a [][]float64, x []float64) float64 {
	var v float64
	for i := range x {
		for j := range x {
			v += x[i] * a[i][j] * x[j]
		}
	}
	return v
}

// shermanMorrison applies the rank-1 downdate of (XᵀX + xxᵀ)⁻¹ in place:
// A⁻¹ ← A⁻¹ − (A⁻¹x)(A⁻¹x)ᵀ / (1 + xᵀA⁻¹x), with v = xᵀA⁻¹x precomputed.
func shermanMorrison(inv [][]float64, x []float64, v float64) {
	k := len(x)
	ax := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			ax[i] += inv[i][j] * x[j]
		}
	}
	denom := 1 + v
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			inv[i][j] -= ax[i] * ax[j] / denom
		}
	}
}
