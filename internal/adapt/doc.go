// Package adapt closes the loop between the OLS power model and the trial
// scheduler: instead of sweeping a campaign's full specs × threads ×
// placements grid, the Planner expands the grid into a candidate pool, runs
// a seeded spread batch, fits the model, and then repeatedly dispatches only
// the batch of remaining candidates with the highest expected information
// gain (D-optimality: predictive leverage on the regression design matrix,
// greedily updated within a batch by Sherman–Morrison), stopping as soon as
// every coefficient's relative standard error falls below the target or the
// trial budget runs out. An alternative "bo" mode optimizes instead of
// characterizes: a lightweight quadratic surrogate over EDP ranks candidates
// by expected improvement, for campaigns hunting the most efficient
// operating point rather than the full model.
//
// The planner is deliberately thin over the existing pipeline: batches are
// dispatched through any Dispatcher (the core-leasing harness.Scheduler or
// the serial harness.Runner), results stream into the caller's sink exactly
// as an exhaustive sweep's would, and previously stored results seed the
// fitted state, so an interrupted adaptive campaign resumes instead of
// restarting. All randomness flows from the single configured seed.
package adapt
