package adapt

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"energybench/internal/harness"
)

var errSingular = errors.New("adapt: singular surrogate design")

// eiConvergedFrac declares a bo campaign done when the best remaining
// candidate's expected improvement falls below this fraction of the best
// observed EDP — further trials would be noise-chasing.
const eiConvergedFrac = 1e-3

// selectBO ranks candidates by expected improvement over the lowest EDP
// observed so far, under a lightweight quadratic surrogate: EDP is modeled
// as a per-workload-group offset (one-hot over spec/pair + placement) plus
// shared threads and threads² terms, fitted by ridge-regularized least
// squares over all observations. EI uses the surrogate's global residual
// scale as the predictive σ. Candidates in groups the surrogate has never
// seen are maximally uncertain and selected first; while there are too few
// observations to fit at all, selection falls back to the seeding spread.
// Returns an empty batch when no candidate's EI clears the convergence
// threshold — bo-mode convergence.
func selectBO(candidates []harness.Trial, results []harness.Result, n int, rng *rand.Rand) []harness.Trial {
	if n > len(candidates) {
		n = len(candidates)
	}
	obs := make([]harness.Result, 0, len(results))
	groups := map[string]int{}
	var groupOrder []string
	for _, r := range results {
		if r.EDP <= 0 {
			continue
		}
		obs = append(obs, r)
		g := resultGroup(r)
		if _, seen := groups[g]; !seen {
			groups[g] = len(groupOrder)
			groupOrder = append(groupOrder, g)
		}
	}
	k := len(groupOrder) + 2 // one-hot groups + threads + threads²
	if len(obs) < k {
		return selectSpread(candidates, n, rng)
	}

	row := func(group string, threads int) []float64 {
		x := make([]float64, k)
		x[groups[group]] = 1
		x[k-2] = float64(threads)
		x[k-1] = float64(threads * threads)
		return x
	}
	beta, rmse, ok := ridgeFit(obs, groups, row)
	if !ok {
		return selectSpread(candidates, n, rng)
	}
	best := math.Inf(1)
	for _, r := range obs {
		best = math.Min(best, r.EDP)
	}
	sigma := math.Max(rmse, 1e-12)

	// Score every candidate; unseen groups jump the queue with infinite EI.
	type scored struct {
		t  harness.Trial
		ei float64
	}
	ranked := make([]scored, 0, len(candidates))
	for _, t := range candidates {
		g := t.Name() + "/" + string(t.Placement)
		if _, seen := groups[g]; !seen {
			ranked = append(ranked, scored{t, math.Inf(1)})
			continue
		}
		x := row(g, t.Threads)
		var mu float64
		for j, b := range beta {
			mu += b * x[j]
		}
		ranked = append(ranked, scored{t, expectedImprovement(best, mu, sigma)})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].ei > ranked[j].ei })

	threshold := eiConvergedFrac * math.Max(math.Abs(best), 1e-12)
	batch := make([]harness.Trial, 0, n)
	for _, s := range ranked {
		if len(batch) == n || s.ei <= threshold {
			break
		}
		batch = append(batch, s.t)
	}
	return batch
}

// resultGroup is the surrogate's workload-group key for a measured result,
// matching Trial.Name()+"/"+Placement on the candidate side.
func resultGroup(r harness.Result) string {
	name := r.Spec
	if r.IsCoRun() {
		name += "+" + r.SpecB
	}
	return name + "/" + string(r.Placement)
}

// expectedImprovement is the classic minimization EI: with improvement
// I = best − μ and z = I/σ, EI = I·Φ(z) + σ·φ(z).
func expectedImprovement(best, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.Max(best-mu, 0)
	}
	z := (best - mu) / sigma
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	cdf := 0.5 * math.Erfc(-z/math.Sqrt2)
	return (best-mu)*cdf + sigma*phi
}

// ridgeFit solves the surrogate least squares (FᵀF + λI)β = Fᵀy with a tiny
// ridge λ so a rank-deficient design (e.g. a group observed at one thread
// count) still yields a usable β, and returns the fit's residual RMSE.
func ridgeFit(obs []harness.Result, groups map[string]int, row func(group string, threads int) []float64) (beta []float64, rmse float64, ok bool) {
	k := len(groups) + 2
	ftf := make([][]float64, k)
	for i := range ftf {
		ftf[i] = make([]float64, k)
	}
	fty := make([]float64, k)
	var scale float64
	for _, r := range obs {
		x := row(resultGroup(r), r.Threads)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ftf[i][j] += x[i] * x[j]
			}
			fty[i] += x[i] * r.EDP
		}
	}
	for i := 0; i < k; i++ {
		scale = math.Max(scale, ftf[i][i])
	}
	lambda := 1e-8 * math.Max(scale, 1)
	for i := 0; i < k; i++ {
		ftf[i][i] += lambda
	}
	beta, err := gauss(ftf, fty)
	if err != nil {
		return nil, 0, false
	}
	var ssRes float64
	for _, r := range obs {
		x := row(resultGroup(r), r.Threads)
		var pred float64
		for j := range x {
			pred += beta[j] * x[j]
		}
		ssRes += (r.EDP - pred) * (r.EDP - pred)
	}
	dof := len(obs) - k
	if dof < 1 {
		dof = 1
	}
	return beta, math.Sqrt(ssRes / float64(dof)), true
}

// gauss solves a·x = b by Gaussian elimination with partial pivoting,
// overwriting both inputs (callers build them fresh).
func gauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	var scale float64
	for i := range a {
		for j := range a[i] {
			scale = math.Max(scale, math.Abs(a[i][j]))
		}
	}
	eps := 1e-14 * math.Max(scale, 1)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < eps {
			return nil, errSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}
