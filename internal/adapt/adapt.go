package adapt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/model"
)

// Campaign planning algorithms. AlgoAll is the exhaustive default handled by
// the ordinary sweep path; the planner itself runs the other two.
const (
	AlgoAll    = "all"    // exhaustive grid, no planner
	AlgoActive = "active" // D-optimal active learning on the power model
	AlgoBO     = "bo"     // expected-improvement optimization over EDP
)

// ValidateAlgo checks a campaign/CLI algorithm name.
func ValidateAlgo(algo string) error {
	switch algo {
	case "", AlgoAll, AlgoActive, AlgoBO:
		return nil
	}
	return fmt.Errorf("unknown algo %q (want %s|%s|%s)", algo, AlgoAll, AlgoActive, AlgoBO)
}

// Defaults applied by Config.normalize, shared with the CLI flag defaults.
const (
	DefaultBatch     = 8
	DefaultTargetRSE = 0.05
	DefaultSeed      = 1
)

// Config parameterizes one adaptive campaign.
type Config struct {
	// Algo picks the planning mode: AlgoActive or AlgoBO (AlgoAll never
	// reaches the planner).
	Algo string
	// Batch is the number of trials dispatched per planning round
	// (default DefaultBatch).
	Batch int
	// Budget caps the number of newly executed trials; 0 means the full
	// candidate pool (the planner then stops early only via TargetRSE).
	Budget int
	// TargetRSE is the convergence target for AlgoActive: the campaign is
	// done once every fitted coefficient's relative standard error
	// (SE/|estimate|) is at or below it (default DefaultTargetRSE).
	TargetRSE float64
	// Seed drives every random choice the planner makes — the spread of the
	// seeding batch and nothing else (scoring is deterministic, ties break
	// on plan order) — so a campaign re-run with the same seed selects the
	// same trials (default DefaultSeed).
	Seed int64
}

func (c Config) normalize() (Config, error) {
	if err := ValidateAlgo(c.Algo); err != nil {
		return c, err
	}
	if c.Algo == "" || c.Algo == AlgoAll {
		return c, fmt.Errorf("adapt: algo %q is the exhaustive sweep, not a planner mode", c.Algo)
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.Batch < 1 {
		return c, fmt.Errorf("adapt: batch must be positive, got %d", c.Batch)
	}
	if c.Budget < 0 {
		return c, fmt.Errorf("adapt: budget must be non-negative, got %d", c.Budget)
	}
	if c.TargetRSE == 0 {
		c.TargetRSE = DefaultTargetRSE
	}
	if c.TargetRSE < 0 {
		return c, fmt.Errorf("adapt: target rse must be positive, got %v", c.TargetRSE)
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c, nil
}

// Dispatcher runs one batch of trials, streaming results into the sink. Both
// *harness.Scheduler and *harness.Runner satisfy it.
type Dispatcher interface {
	RunPlan(ctx context.Context, trials []harness.Trial, sink harness.ResultSink) error
}

// Round summarizes one planning round for the report.
type Round struct {
	// Trials is the number of trials dispatched this round.
	Trials int `json:"trials"`
	// MaxRSE is the worst relative standard error after the round's refit;
	// omitted while the fit is unidentifiable or a coefficient estimate is
	// exactly zero (infinite RSE).
	MaxRSE float64 `json:"max_rse,omitempty"`
	// BestEDP is the lowest observed EDP so far (bo mode).
	BestEDP float64 `json:"best_edp_js,omitempty"`
}

// Best is the most efficient configuration a bo campaign found.
type Best struct {
	Key       string  `json:"key"`
	Spec      string  `json:"spec"`
	SpecB     string  `json:"spec_b,omitempty"`
	Threads   int     `json:"threads"`
	Placement string  `json:"placement"`
	EDPJs     float64 `json:"edp_js"`
	PowerW    float64 `json:"power_w"`
	TimeS     float64 `json:"time_s"`
}

// Report is the planner's outcome document: how much of the grid it spent,
// whether it converged, and the model it converged to.
type Report struct {
	Algo string `json:"algo"`
	Seed int64  `json:"seed"`
	// GridTrials is the full exhaustive pool (prior + candidates); the
	// planner's whole point is TotalTrials ≪ GridTrials.
	GridTrials int `json:"grid_trials"`
	// PriorTrials seeded the fit from the store (resumed campaigns).
	PriorTrials int `json:"prior_trials"`
	// RanTrials were newly dispatched by this invocation; TotalTrials =
	// PriorTrials + RanTrials is what the final fit rests on.
	RanTrials   int     `json:"ran_trials"`
	TotalTrials int     `json:"total_trials"`
	Batch       int     `json:"batch"`
	Budget      int     `json:"budget"`
	TargetRSE   float64 `json:"target_rse,omitempty"`
	Rounds      []Round `json:"rounds"`
	Converged   bool    `json:"converged"`
	// MaxRSE is the final worst-coefficient relative standard error;
	// omitted when no identifiable fit was reached (or an estimate is 0).
	MaxRSE float64    `json:"max_rse,omitempty"`
	Fit    *model.Fit `json:"fit,omitempty"`
	Best   *Best      `json:"best,omitempty"`
}

// Planner runs one adaptive campaign over a fixed candidate pool.
type Planner struct {
	Cfg Config
	// Dispatch executes each selected batch; required.
	Dispatch Dispatcher
	// Log, when non-nil, receives one line per planning round.
	Log func(format string, args ...any)
}

// Run drives the campaign: pool is the not-yet-measured remainder of the
// full grid, prior the results already in the store for grid configurations
// (both disjoint; together they are the exhaustive campaign). Results of
// every dispatched trial stream into sink (which the caller owns and
// closes); the returned report carries the final fit. On a dispatch error
// the report reflects every round that completed.
func (p *Planner) Run(ctx context.Context, pool []harness.Trial, prior []harness.Result, sink harness.ResultSink) (*Report, error) {
	cfg, err := p.Cfg.normalize()
	if err != nil {
		return nil, err
	}
	if p.Dispatch == nil {
		return nil, fmt.Errorf("adapt: planner has no dispatcher")
	}
	budget := cfg.Budget
	if budget == 0 || budget > len(pool) {
		budget = len(pool)
	}
	rep := &Report{
		Algo:        cfg.Algo,
		Seed:        cfg.Seed,
		GridTrials:  len(pool) + len(prior),
		PriorTrials: len(prior),
		Batch:       cfg.Batch,
		Budget:      budget,
		TargetRSE:   cfg.TargetRSE,
		Rounds:      []Round{},
	}
	if cfg.Algo == AlgoBO {
		rep.TargetRSE = 0 // not the stopping rule in bo mode
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	results := append([]harness.Result(nil), prior...)
	candidates := append([]harness.Trial(nil), pool...)

	for {
		var fit *model.Fit
		if obs := model.FromResults(results); len(obs) > 0 {
			fit, _ = model.FitPower(obs) // unidentifiable is normal early on
		}
		done, maxRSE := p.stopped(cfg, fit, results, candidates)
		if f := finiteOrZero(maxRSE); fit != nil {
			rep.MaxRSE = f
			if n := len(rep.Rounds); n > 0 && rep.Rounds[n-1].MaxRSE == 0 {
				rep.Rounds[n-1].MaxRSE = f
			}
		}
		if done {
			rep.Converged = true
		}
		if done || len(candidates) == 0 || rep.RanTrials >= budget {
			rep.Fit = fit
			break
		}

		n := min(cfg.Batch, budget-rep.RanTrials)
		var batch []harness.Trial
		switch {
		case cfg.Algo == AlgoBO:
			batch = selectBO(candidates, results, n, rng)
		case fit == nil || fit.DoF <= 0:
			// Not yet identifiable (or exactly determined): keep spreading
			// measurements across the space instead of scoring a design
			// that cannot rank anything.
			batch = selectSpread(candidates, n, rng)
		default:
			batch = selectDOptimal(fit, candidates, n)
		}
		if len(batch) == 0 {
			// No candidate is worth running (bo: zero expected improvement
			// everywhere). That is bo-mode convergence.
			rep.Converged = true
			rep.Fit = fit
			break
		}
		candidates = removeTrials(candidates, batch)

		round := &harness.Collector{}
		var batchSink harness.ResultSink = round
		if sink != nil {
			batchSink = harness.MultiSink{round, sink}
		}
		runErr := p.Dispatch.RunPlan(ctx, batch, batchSink)
		// Completion order under a parallel dispatcher is racy; re-sorting
		// the round by configuration key keeps the accumulated observation
		// list — and therefore every later fit and selection — identical
		// across re-runs of the same seed.
		sort.Slice(round.Results, func(i, j int) bool {
			return harness.ResultKey(round.Results[i]) < harness.ResultKey(round.Results[j])
		})
		results = append(results, round.Results...)
		rep.RanTrials += len(batch)
		rep.TotalTrials = rep.PriorTrials + rep.RanTrials
		rep.Rounds = append(rep.Rounds, Round{Trials: len(batch), BestEDP: bestEDP(results)})
		if p.Log != nil {
			p.Log("adapt: round %d: ran %d trials (%d/%d budget, %d observations)",
				len(rep.Rounds), len(batch), rep.RanTrials, budget, len(results))
		}
		if runErr != nil {
			rep.Fit = fit
			return rep, fmt.Errorf("adapt: round %d: %w", len(rep.Rounds), runErr)
		}
	}

	rep.TotalTrials = rep.PriorTrials + rep.RanTrials
	if cfg.Algo == AlgoBO {
		rep.Best = bestConfig(results)
	}
	return rep, nil
}

// stopped decides whether the campaign has converged, returning the current
// worst relative standard error for reporting (active mode).
func (p *Planner) stopped(cfg Config, fit *model.Fit, results []harness.Result, candidates []harness.Trial) (bool, float64) {
	switch cfg.Algo {
	case AlgoActive:
		if fit == nil {
			return false, math.NaN()
		}
		maxRSE, ok := fit.MaxRSE()
		if !ok {
			return false, math.NaN()
		}
		return maxRSE <= cfg.TargetRSE, maxRSE
	case AlgoBO:
		// bo converges through selectBO returning an empty batch (no
		// remaining candidate with positive expected improvement) or by
		// exhausting the budget; there is no RSE criterion.
		return false, math.NaN()
	}
	return false, math.NaN()
}

// finiteOrZero maps NaN/Inf (no usable RSE) to 0 so the report, which treats
// 0 as "omitted", always marshals (encoding/json rejects non-finite floats).
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// activityOf is the nominal activity vector of a planned trial — the same
// map model.FromResults derives from its result, so candidate scoring and
// fitting agree on the design row a trial would contribute.
func activityOf(t harness.Trial) map[bench.Component]float64 {
	act := map[bench.Component]float64{t.Spec.Component: float64(t.Threads)}
	if t.SpecB != nil {
		act[t.SpecB.Component] += float64(t.Threads)
	}
	return act
}

func removeTrials(cands, batch []harness.Trial) []harness.Trial {
	drop := make(map[int]bool, len(batch))
	for _, t := range batch {
		drop[t.Seq] = true
	}
	kept := cands[:0]
	for _, t := range cands {
		if !drop[t.Seq] {
			kept = append(kept, t)
		}
	}
	return kept
}

func bestEDP(results []harness.Result) float64 {
	best := bestConfig(results)
	if best == nil {
		return 0
	}
	return best.EDPJs
}

// bestConfig is the lowest-EDP configuration observed so far.
func bestConfig(results []harness.Result) *Best {
	var best *Best
	for _, r := range results {
		if r.EDP <= 0 {
			continue
		}
		if best == nil || r.EDP < best.EDPJs {
			best = &Best{
				Key:       harness.ResultKey(r),
				Spec:      r.Spec,
				SpecB:     r.SpecB,
				Threads:   r.Threads,
				Placement: string(r.Placement),
				EDPJs:     r.EDP,
				PowerW:    r.PowerW.Mean,
				TimeS:     r.TimeS.Mean,
			}
		}
	}
	return best
}
