package adapt

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/model"
	"energybench/internal/stats"
)

// plantedDispatcher synthesizes results from a planted linear power model —
// the same formula meter.Mock uses, minus the real kernel execution — so
// planner tests run in microseconds and every "measurement" is exact.
type plantedDispatcher struct {
	staticW float64
	coeffW  map[bench.Component]float64
	noiseW  float64
	ran     []string       // keys in dispatch order
	count   map[string]int // per-key dispatch count
}

func (d *plantedDispatcher) RunPlan(ctx context.Context, trials []harness.Trial, sink harness.ResultSink) error {
	if d.count == nil {
		d.count = map[string]int{}
	}
	for _, t := range trials {
		key := t.Key("mock")
		d.ran = append(d.ran, key)
		d.count[key]++
		if sink != nil {
			if err := sink.Consume(d.result(t)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *plantedDispatcher) result(t harness.Trial) harness.Result {
	act := activityOf(t)
	comps := make([]bench.Component, 0, len(act))
	for c := range act {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	power := d.staticW
	h := fnv.New64a()
	for _, c := range comps {
		power += d.coeffW[c] * act[c]
		fmt.Fprintf(h, "%s=%g|", c, act[c])
	}
	if d.noiseW > 0 {
		u := float64(h.Sum64()) / float64(^uint64(0))
		power += (2*u - 1) * d.noiseW
	}
	timeS := 1 / float64(t.Threads)
	r := harness.Result{
		Spec:      t.Spec.Name,
		Component: t.Spec.Component,
		Threads:   t.Threads,
		Iters:     t.Iters,
		Placement: t.Placement,
		Meter:     "mock",
		PowerW:    stats.Summary{Mean: power},
		TimeS:     stats.Summary{Mean: timeS},
		EnergyJ:   stats.Summary{Mean: power * timeS},
		EDP:       power * timeS * timeS,
	}
	if t.SpecB != nil {
		r.SpecB = t.SpecB.Name
		r.ComponentB = t.SpecB.Component
		r.ThreadsB = t.Threads
		r.ItersB = t.ItersB
	}
	return r
}

// plantedCoeffs is the model every planner test plants: four well-separated
// per-thread coefficients over distinct components.
func plantedCoeffs() map[bench.Component]float64 {
	return map[bench.Component]float64{
		"int-alu": 2, "fpu": 5, "l1": 1.5, "dram": 8,
	}
}

// testPool expands the reference planner grid: four single-component specs
// crossed with six thread counts — 24 trials, 5 model parameters.
func testPool(t *testing.T) []harness.Trial {
	t.Helper()
	var specs []bench.Spec
	for _, name := range []string{"int-alu", "fp-mac", "chase-l1", "chase-dram"} {
		s, err := bench.Lookup(name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		specs = append(specs, s)
	}
	trials, err := harness.Plan(harness.Space{
		Specs:        specs,
		ThreadCounts: []int{1, 2, 3, 4, 5, 6},
		Placements:   []harness.Placement{harness.PlaceNone},
		Reps:         1,
		IterScale:    1,
	})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return trials
}

// TestActiveRecoversPlantedModel is the acceptance criterion: on the planted
// model, algo active converges with every coefficient within 5% of the
// exhaustive grid's fit while running at most half of the grid.
func TestActiveRecoversPlantedModel(t *testing.T) {
	pool := testPool(t)
	d := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 0.3}

	// Exhaustive reference: fit every configuration in the grid.
	exhaustive := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 0.3}
	all := &harness.Collector{}
	if err := exhaustive.RunPlan(context.Background(), pool, all); err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	fullFit, err := model.FitPower(model.FromResults(all.Results))
	if err != nil {
		t.Fatalf("exhaustive fit: %v", err)
	}

	p := &Planner{Cfg: Config{Algo: AlgoActive, Batch: 8}, Dispatch: d, Log: t.Logf}
	rep, err := p.Run(context.Background(), pool, nil, nil)
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	if !rep.Converged {
		t.Fatalf("planner did not converge: max_rse=%v after %d trials", rep.MaxRSE, rep.RanTrials)
	}
	if rep.RanTrials > len(pool)/2 {
		t.Fatalf("planner ran %d of %d grid trials, want at most half", rep.RanTrials, len(pool))
	}
	if rep.Fit == nil {
		t.Fatal("converged report carries no fit")
	}
	checkWithin := func(name string, got, want float64) {
		t.Helper()
		if want == 0 || math.Abs(got-want)/math.Abs(want) > 0.05 {
			t.Errorf("%s: adaptive %v vs exhaustive %v differs by more than 5%%", name, got, want)
		}
	}
	checkWithin("p_static", rep.Fit.PStaticW, fullFit.PStaticW)
	for c, want := range fullFit.CoeffW {
		checkWithin(string(c), rep.Fit.CoeffW[c], want)
	}
}

// TestActiveResumesFromPrior proves an interrupted adaptive campaign
// continues from stored results: no already-measured configuration is
// dispatched again, and the resumed run still converges within the combined
// half-grid bound.
func TestActiveResumesFromPrior(t *testing.T) {
	pool := testPool(t)
	coeffs := plantedCoeffs()

	// First (interrupted) campaign: one batch, then stop on budget.
	d1 := &plantedDispatcher{staticW: 42, coeffW: coeffs, noiseW: 0.3}
	sink1 := &harness.Collector{}
	p1 := &Planner{Cfg: Config{Algo: AlgoActive, Batch: 6, Budget: 6}, Dispatch: d1}
	rep1, err := p1.Run(context.Background(), pool, nil, sink1)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if rep1.RanTrials != 6 {
		t.Fatalf("first run executed %d trials, want the budget of 6", rep1.RanTrials)
	}

	// Resume: drop the already-run trials from the pool (what the CLI's
	// --resume key filtering does) and seed the prior results.
	doneKeys := map[string]bool{}
	for _, k := range d1.ran {
		doneKeys[k] = true
	}
	remaining, skipped := harness.FilterTrials(pool, func(t harness.Trial) bool {
		return doneKeys[t.Key("mock")]
	})
	if skipped != 6 {
		t.Fatalf("resume filtered %d trials, want 6", skipped)
	}

	d2 := &plantedDispatcher{staticW: 42, coeffW: coeffs, noiseW: 0.3}
	p2 := &Planner{Cfg: Config{Algo: AlgoActive, Batch: 6}, Dispatch: d2}
	rep2, err := p2.Run(context.Background(), remaining, sink1.Results, nil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for _, k := range d2.ran {
		if doneKeys[k] {
			t.Errorf("resumed campaign re-ran already-stored trial %s", k)
		}
	}
	if rep2.PriorTrials != 6 {
		t.Errorf("resumed report counts %d prior trials, want 6", rep2.PriorTrials)
	}
	if !rep2.Converged {
		t.Fatalf("resumed campaign did not converge (max_rse=%v)", rep2.MaxRSE)
	}
	if total := rep2.TotalTrials; total > len(pool)/2 {
		t.Errorf("resumed campaign used %d total trials, want at most half of %d", total, len(pool))
	}
}

// TestPlannerDeterminism: the same seed selects the same trials in the same
// order — the planner's only randomness is the seeded spread.
func TestPlannerDeterminism(t *testing.T) {
	pool := testPool(t)
	run := func(seed int64) []string {
		d := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 0.3}
		p := &Planner{Cfg: Config{Algo: AlgoActive, Batch: 4, Seed: seed}, Dispatch: d}
		if _, err := p.Run(context.Background(), pool, nil, nil); err != nil {
			t.Fatalf("run(seed=%d): %v", seed, err)
		}
		return d.ran
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed dispatched %d vs %d trials", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dispatch %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestBOFindsBestEDP: under the planted model the true EDP minimum is the
// lowest-coefficient spec at the highest thread count; bo must surface it
// without running the whole grid.
func TestBOFindsBestEDP(t *testing.T) {
	pool := testPool(t)
	d := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 0.1}

	// True argmin over the full grid, from the same synthetic results.
	ref := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 0.1}
	all := &harness.Collector{}
	if err := ref.RunPlan(context.Background(), pool, all); err != nil {
		t.Fatalf("reference: %v", err)
	}
	want := bestConfig(all.Results)

	p := &Planner{Cfg: Config{Algo: AlgoBO, Batch: 8, Budget: 16}, Dispatch: d}
	rep, err := p.Run(context.Background(), pool, nil, nil)
	if err != nil {
		t.Fatalf("bo: %v", err)
	}
	if rep.Best == nil {
		t.Fatal("bo report has no best configuration")
	}
	if rep.Best.Key != want.Key {
		t.Errorf("bo best %s (edp %v), true best %s (edp %v)", rep.Best.Key, rep.Best.EDPJs, want.Key, want.EDPJs)
	}
	if rep.RanTrials >= len(pool) {
		t.Errorf("bo ran the whole grid (%d trials)", rep.RanTrials)
	}
}

func TestConfigValidation(t *testing.T) {
	pool := testPool(t)
	d := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs()}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"exhaustive algo", Config{Algo: AlgoAll}},
		{"unknown algo", Config{Algo: "random"}},
		{"negative batch", Config{Algo: AlgoActive, Batch: -1}},
		{"negative budget", Config{Algo: AlgoActive, Budget: -2}},
		{"negative target", Config{Algo: AlgoActive, TargetRSE: -0.1}},
	} {
		p := &Planner{Cfg: tc.cfg, Dispatch: d}
		if _, err := p.Run(context.Background(), pool, nil, nil); err == nil {
			t.Errorf("%s: Run accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
	if err := ValidateAlgo("bo"); err != nil {
		t.Errorf("ValidateAlgo(bo): %v", err)
	}
	if err := ValidateAlgo("anneal"); err == nil {
		t.Error("ValidateAlgo accepted unknown algorithm")
	}
}

// TestActiveBudgetExhaustion: an unreachable target stops at the budget with
// Converged false and a fit over everything measured.
func TestActiveBudgetExhaustion(t *testing.T) {
	pool := testPool(t)
	d := &plantedDispatcher{staticW: 42, coeffW: plantedCoeffs(), noiseW: 5}
	p := &Planner{Cfg: Config{Algo: AlgoActive, Batch: 5, Budget: 10, TargetRSE: 1e-12}, Dispatch: d}
	rep, err := p.Run(context.Background(), pool, nil, nil)
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	if rep.Converged {
		t.Error("planner claims convergence at an impossible target")
	}
	if rep.RanTrials != 10 {
		t.Errorf("planner ran %d trials, want the budget of 10", rep.RanTrials)
	}
	if rep.Fit == nil {
		t.Error("budget-exhausted report carries no fit")
	}
}
