package meter

import (
	"math"
	"testing"
	"time"
)

func TestMockPlantedModel(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewMockWithClock(40, 0, clock)
	m.ModelW = map[string]float64{"int-alu": 2, "dram": 8}

	read := func() float64 {
		r, err := m.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return float64(r.Counters[0]) / 1e6
	}

	// 1s idle: intercept only.
	now = now.Add(time.Second)
	if got := read(); math.Abs(got-40) > 1e-6 {
		t.Fatalf("idle energy = %vJ, want 40", got)
	}
	// 2s at int-alu×3: draw 40 + 6 = 46 W.
	m.SetLoad(map[string]float64{"int-alu": 3})
	now = now.Add(2 * time.Second)
	if got, want := read(), 40+2*46.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("loaded energy = %vJ, want %v", got, want)
	}
	// 1s on a co-run vector: 40 + 2·2 + 8·2 = 60 W on top.
	m.SetLoad(map[string]float64{"int-alu": 2, "dram": 2})
	now = now.Add(time.Second)
	if got, want := read(), 40+2*46.0+60.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("co-run energy = %vJ, want %v", got, want)
	}
	// Back to idle integrates at the intercept again.
	m.SetLoad(nil)
	now = now.Add(time.Second)
	if got, want := read(), 40+2*46.0+60.0+40.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("post-load energy = %vJ, want %v", got, want)
	}
}

// TestMockPlantedNoiseDeterministic: the same load vector always gets the
// same perturbation, different vectors (almost surely) different ones, and
// the amplitude is bounded by NoiseW.
func TestMockPlantedNoiseDeterministic(t *testing.T) {
	m := &Mock{PowerWatts: 40, ModelW: map[string]float64{"int-alu": 2}, NoiseW: 0.5}
	a := m.modelWatts(map[string]float64{"int-alu": 2})
	b := m.modelWatts(map[string]float64{"int-alu": 2})
	if a != b {
		t.Fatalf("same load produced different draws: %v vs %v", a, b)
	}
	base := 2 * 2.0
	if math.Abs(a-base) > 0.5 {
		t.Errorf("noise |%v| exceeds amplitude 0.5", a-base)
	}
	c := m.modelWatts(map[string]float64{"int-alu": 3})
	if c == a {
		t.Errorf("distinct loads landed on identical draws %v", c)
	}
	// A mock without a planted model ignores SetLoad entirely.
	plain := &Mock{PowerWatts: 40}
	plain.SetLoad(map[string]float64{"int-alu": 5})
	if plain.loadW != 0 {
		t.Error("SetLoad changed an unmodeled mock")
	}
}

func TestParseMockModel(t *testing.T) {
	m, err := ParseMockModel(" int-alu:2, dram : 8.5 ")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m["int-alu"] != 2 || m["dram"] != 8.5 || len(m) != 2 {
		t.Errorf("parsed %v, want int-alu:2 dram:8.5", m)
	}
	if m, err := ParseMockModel(""); err != nil || m != nil {
		t.Errorf("empty spec parsed to %v, %v; want nil, nil", m, err)
	}
	for _, bad := range []string{"int-alu", "int-alu:x", ":2", "a:1,a:2"} {
		if _, err := ParseMockModel(bad); err == nil {
			t.Errorf("ParseMockModel(%q) accepted malformed input", bad)
		}
	}
}
