package meter

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic mock readings.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestMockAccumulatesPowerOverTime(t *testing.T) {
	clk := newFakeClock()
	m := NewMockWithClock(50, 0, clk.now) // 50 W, no wrap

	r0, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	r1, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	j, err := Delta(m, r0, r1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-100) > 1e-6 { // 50 W × 2 s
		t.Errorf("Delta = %v J, want 100", j)
	}
}

func TestMockDomainsStable(t *testing.T) {
	m := NewMock(42)
	d1, d2 := m.Domains(), m.Domains()
	if len(d1) != 1 || len(d2) != 1 || d1[0] != d2[0] {
		t.Errorf("Domains not stable: %v vs %v", d1, d2)
	}
	if d1[0].MaxRangeMicroJ == 0 {
		t.Error("default mock should have a non-zero wrap range")
	}
}

func TestDeltaWraparound(t *testing.T) {
	// 100 W with a 150 µJ counter range: the counter wraps every 1.5 µs of
	// modeled time, so a 2 µs window must unwrap exactly once.
	clk := newFakeClock()
	m := NewMockWithClock(100, 150, clk.now)

	clk.advance(1 * time.Microsecond) // counter at 100 µJ
	r0, _ := m.Read()
	clk.advance(1 * time.Microsecond) // raw 200 µJ → wraps to 50 µJ
	r1, _ := m.Read()
	if r1.Counters[0] >= r0.Counters[0] {
		t.Fatalf("test setup broken: counter did not wrap (%d -> %d)", r0.Counters[0], r1.Counters[0])
	}
	j, err := Delta(m, r0, r1)
	if err != nil {
		t.Fatal(err)
	}
	// (150-100) + 50 = 100 µJ = 1e-4 J
	if math.Abs(j-1e-4) > 1e-12 {
		t.Errorf("wrapped Delta = %v J, want 1e-4", j)
	}
}

func TestDeltaWraparoundArithmetic(t *testing.T) {
	tests := []struct {
		name     string
		maxRange uint64
		start    uint64
		end      uint64
		wantJ    float64
		wantErr  bool
	}{
		{"forward", 1000, 100, 700, 600e-6, false},
		{"no-movement", 1000, 500, 500, 0, false},
		{"wrap", 1000, 900, 100, 200e-6, false},
		{"wrap-to-zero", 1000, 999, 0, 1e-6, false},
		{"backwards-no-range", 0, 900, 100, 0, true},
		{"full-range-consumed", 1000, 0, 0, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := &Mock{PowerWatts: 1, MaxRangeMicroJ: tc.maxRange}
			r0 := Reading{Counters: []uint64{tc.start}}
			r1 := Reading{Counters: []uint64{tc.end}}
			j, err := Delta(m, r0, r1)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(j-tc.wantJ) > 1e-15 {
				t.Errorf("Delta(%d -> %d, range %d) = %v J, want %v",
					tc.start, tc.end, tc.maxRange, j, tc.wantJ)
			}
		})
	}
}

// twoDomainMeter exercises per-domain deltas with mixed wrap behavior.
type twoDomainMeter struct{}

func (twoDomainMeter) Name() string { return "two" }
func (twoDomainMeter) Domains() []Domain {
	return []Domain{{Name: "pkg-0", MaxRangeMicroJ: 1000}, {Name: "pkg-1", MaxRangeMicroJ: 1000}}
}
func (twoDomainMeter) Read() (Reading, error) { return Reading{}, nil }

func TestDeltaPerDomain(t *testing.T) {
	m := twoDomainMeter{}
	start := Reading{Counters: []uint64{100, 900}}
	end := Reading{Counters: []uint64{700, 100}} // pkg-1 wraps: (1000-900)+100 = 200
	per, err := DeltaPerDomain(m, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("got %d per-domain deltas, want 2", len(per))
	}
	if math.Abs(per[0]-600e-6) > 1e-15 || math.Abs(per[1]-200e-6) > 1e-15 {
		t.Errorf("per-domain deltas = %v, want [600e-6 200e-6]", per)
	}
	total, err := Delta(m, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-800e-6) > 1e-15 {
		t.Errorf("Delta = %v, want sum of domains 800e-6", total)
	}
}

func TestDeltaCounterCountMismatch(t *testing.T) {
	m := NewMock(1)
	good, _ := m.Read()
	bad := Reading{Counters: []uint64{1, 2}}
	if _, err := Delta(m, good, bad); err == nil {
		t.Error("want error for mismatched counter count, got nil")
	}
}

// writeRAPLDomain lays out one powercap domain directory in a fake sysfs.
func writeRAPLDomain(t *testing.T, root, dir, name string, energy, maxRange uint64) {
	t.Helper()
	d := filepath.Join(root, dir)
	if err := os.MkdirAll(d, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"name":                name + "\n",
		"energy_uj":           strconv.FormatUint(energy, 10) + "\n",
		"max_energy_range_uj": strconv.FormatUint(maxRange, 10) + "\n",
	}
	for f, content := range files {
		if err := os.WriteFile(filepath.Join(d, f), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRAPLDiscoversPackagesSkipsSubdomains(t *testing.T) {
	root := t.TempDir()
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 1_000_000, 262_143_328_850)
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 2_000_000, 262_143_328_850)
	writeRAPLDomain(t, root, "intel-rapl:0:0", "core", 500_000, 65_712_999_613) // must be skipped
	if err := os.MkdirAll(filepath.Join(root, "dtpm"), 0o755); err != nil {     // unrelated powercap entry
		t.Fatal(err)
	}

	r, err := NewRAPL(root)
	if err != nil {
		t.Fatal(err)
	}
	doms := r.Domains()
	if len(doms) != 2 {
		t.Fatalf("got %d domains (%v), want 2 packages", len(doms), doms)
	}
	if doms[0].Name != "package-0" || doms[1].Name != "package-1" {
		t.Errorf("domain names = %q, %q", doms[0].Name, doms[1].Name)
	}
	rd, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Counters[0] != 1_000_000 || rd.Counters[1] != 2_000_000 {
		t.Errorf("counters = %v, want [1000000 2000000]", rd.Counters)
	}
}

func TestRAPLDeltaAcrossRewrittenCounters(t *testing.T) {
	root := t.TempDir()
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 1_000_000, 10_000_000)
	r, err := NewRAPL(root)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the hardware counter advancing past the wrap point.
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 500_000, 10_000_000)
	r1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	j, err := Delta(r, r0, r1)
	if err != nil {
		t.Fatal(err)
	}
	// (10_000_000 - 1_000_000) + 500_000 = 9_500_000 µJ = 9.5 J
	if math.Abs(j-9.5) > 1e-9 {
		t.Errorf("Delta = %v J, want 9.5", j)
	}
}

func TestRAPLNoDomains(t *testing.T) {
	if _, err := NewRAPL(t.TempDir()); err == nil {
		t.Error("want error for empty powercap root, got nil")
	}
	if _, err := NewRAPL(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("want error for missing powercap root, got nil")
	}
}

// TestRAPLMissingMaxRangeFallsBack checks discovery degrades gracefully when
// a domain has no max_energy_range_uj (some kernels/hypervisors omit it):
// the domain is kept with a zero wrap range read from sysfs rather than a
// hard-coded constant, and forward counter deltas still work.
func TestRAPLMissingMaxRangeFallsBack(t *testing.T) {
	root := t.TempDir()
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 1_000_000, 262_143_328_850)
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 2_000_000, 0)
	if err := os.Remove(filepath.Join(root, "intel-rapl:1", "max_energy_range_uj")); err != nil {
		t.Fatal(err)
	}

	r, err := NewRAPL(root)
	if err != nil {
		t.Fatalf("NewRAPL must tolerate a missing max_energy_range_uj: %v", err)
	}
	doms := r.Domains()
	if len(doms) != 2 {
		t.Fatalf("got %d domains, want 2", len(doms))
	}
	if doms[0].MaxRangeMicroJ != 262_143_328_850 {
		t.Errorf("package-0 range = %d, want value read from sysfs", doms[0].MaxRangeMicroJ)
	}
	if doms[1].MaxRangeMicroJ != 0 {
		t.Errorf("package-1 range = %d, want 0 fallback for missing file", doms[1].MaxRangeMicroJ)
	}

	r0, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 1_500_000, 262_143_328_850)
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 2_250_000, 0)
	os.Remove(filepath.Join(root, "intel-rapl:1", "max_energy_range_uj"))
	r1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	j, err := Delta(r, r0, r1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.75) > 1e-9 { // 0.5 J + 0.25 J
		t.Errorf("Delta = %v J, want 0.75", j)
	}

	// A wrap on the range-less domain must surface an explicit error
	// instead of a silently wrong delta.
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 100, 0)
	os.Remove(filepath.Join(root, "intel-rapl:1", "max_energy_range_uj"))
	r2, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(r, r1, r2); err == nil {
		t.Error("backwards counter with no wrap range must error")
	}
}

// TestRAPLMalformedMaxRangeFallsBack: garbage in max_energy_range_uj also
// degrades to the no-wrap fallback instead of failing discovery.
func TestRAPLMalformedMaxRangeFallsBack(t *testing.T) {
	root := t.TempDir()
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 1_000_000, 1)
	if err := os.WriteFile(filepath.Join(root, "intel-rapl:0", "max_energy_range_uj"),
		[]byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewRAPL(root)
	if err != nil {
		t.Fatalf("NewRAPL must tolerate malformed max_energy_range_uj: %v", err)
	}
	if got := r.Domains()[0].MaxRangeMicroJ; got != 0 {
		t.Errorf("range = %d, want 0 fallback", got)
	}
}
