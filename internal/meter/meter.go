package meter

import (
	"fmt"
	"time"
)

// Domain describes one energy-counting domain (e.g. one RAPL package).
// MaxRangeMicroJ is the counter's wrap modulus in microjoules; 0 means the
// counter never wraps.
type Domain struct {
	Name           string `json:"name"`
	MaxRangeMicroJ uint64 `json:"max_range_uj"`
}

// Reading is a snapshot of every domain's cumulative energy counter.
// Counters[i] corresponds to Domains()[i] of the meter that produced it.
type Reading struct {
	At       time.Time
	Counters []uint64 // cumulative microjoules per domain
}

// EnergyMeter reads cumulative energy counters. Implementations must return
// domains in a stable order so two Readings can be subtracted element-wise.
type EnergyMeter interface {
	// Name identifies the backend ("rapl", "mock").
	Name() string
	// Domains lists the counting domains in the order Read reports them.
	Domains() []Domain
	// Read snapshots all domain counters.
	Read() (Reading, error)
}

// deltaMicroJ returns the per-domain microjoule deltas between two readings,
// unwrapping counters that rolled over at most once between the snapshots.
// It is the shared core of DeltaPerDomain and the Sampler's per-tick points.
func deltaMicroJ(name string, doms []Domain, start, end Reading) ([]uint64, error) {
	if len(start.Counters) != len(doms) || len(end.Counters) != len(doms) {
		return nil, fmt.Errorf("meter %s: reading has %d/%d counters, want %d",
			name, len(start.Counters), len(end.Counters), len(doms))
	}
	deltas := make([]uint64, len(doms))
	for i, d := range doms {
		s, e := start.Counters[i], end.Counters[i]
		switch {
		case e >= s:
			deltas[i] = e - s
		case d.MaxRangeMicroJ > 0:
			// Counter wrapped: it counted from s up to the max range, then
			// from zero up to e.
			deltas[i] = (d.MaxRangeMicroJ - s) + e
		default:
			return nil, fmt.Errorf("meter %s: domain %s counter went backwards (%d -> %d) with no wrap range",
				name, d.Name, s, e)
		}
	}
	return deltas, nil
}

// DeltaPerDomain returns the energy in joules consumed between two readings
// of the same meter, one value per domain in Domains() order, unwrapping
// counters that rolled over at most once between the snapshots.
func DeltaPerDomain(m EnergyMeter, start, end Reading) ([]float64, error) {
	deltas, err := deltaMicroJ(m.Name(), m.Domains(), start, end)
	if err != nil {
		return nil, err
	}
	joules := make([]float64, len(deltas))
	for i, d := range deltas {
		joules[i] = float64(d) / 1e6
	}
	return joules, nil
}

// Delta returns the total energy in joules consumed between two readings of
// the same meter, summing all domains.
func Delta(m EnergyMeter, start, end Reading) (float64, error) {
	per, err := DeltaPerDomain(m, start, end)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, j := range per {
		total += j
	}
	return total, nil
}
