// Package meter abstracts energy measurement behind the EnergyMeter
// interface. Two backends ship today: a Linux RAPL sysfs reader for real
// hardware and a deterministic mock so tests and CI run everywhere; the
// mock supports a planted per-kernel power model, additive noise, and a
// time-based power schedule for phase-analysis tests. A Sampler wraps any
// EnergyMeter to produce time-resolved power series within a trial
// (sampler.go), which is how `run --sample-interval` captures in-trial
// phase behavior.
package meter
