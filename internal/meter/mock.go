package meter

import (
	"sync"
	"time"
)

// Mock is a deterministic EnergyMeter for tests and CI machines without RAPL
// access. It models a single domain drawing a constant PowerWatts, so energy
// is exactly power × elapsed time. The clock is injectable for fully
// deterministic tests, and MaxRangeMicroJ can be set low to exercise the
// wraparound path in Delta.
type Mock struct {
	PowerWatts     float64
	MaxRangeMicroJ uint64

	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
}

// NewMock returns a mock meter drawing powerWatts with a realistic 32-bit-ish
// counter range (matching RAPL's ~262 kJ package range).
func NewMock(powerWatts float64) *Mock {
	return &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: 262_143_328_850, now: time.Now}
}

// NewMockWithClock returns a mock meter driven by an explicit clock, for
// deterministic tests (including counter-wraparound tests via a small
// maxRange).
func NewMockWithClock(powerWatts float64, maxRangeMicroJ uint64, clock func() time.Time) *Mock {
	m := &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: maxRangeMicroJ, now: clock}
	m.epoch = clock()
	return m
}

func (m *Mock) Name() string { return "mock" }

func (m *Mock) Domains() []Domain {
	return []Domain{{Name: "mock-package-0", MaxRangeMicroJ: m.MaxRangeMicroJ}}
}

func (m *Mock) Read() (Reading, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if m.epoch.IsZero() {
		m.epoch = t
	}
	elapsed := t.Sub(m.epoch).Seconds()
	microJ := uint64(elapsed * m.PowerWatts * 1e6)
	if m.MaxRangeMicroJ > 0 {
		microJ %= m.MaxRangeMicroJ
	}
	return Reading{At: t, Counters: []uint64{microJ}}, nil
}
