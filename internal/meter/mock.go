package meter

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LoadAware is the optional EnergyMeter extension for meters that model
// power as a function of the current workload activity. The executor calls
// SetLoad with the trial's nominal activity vector (component → active
// thread count) before its repetitions start, so a modeled mock draws
// configuration-dependent power — the planted linear model adaptive-planner
// tests and CI smokes fit against. Real meters measure instead of model and
// simply don't implement it.
type LoadAware interface {
	SetLoad(load map[string]float64)
}

// MockStep is one boundary of a piecewise-constant mock power schedule: from
// AtS seconds after the meter's epoch onward, the meter draws Watts.
type MockStep struct {
	AtS   float64
	Watts float64
}

// Mock is a deterministic EnergyMeter for tests and CI machines without RAPL
// access. It models a single domain drawing a constant PowerWatts, so energy
// is exactly power × elapsed time. An optional Steps schedule switches the
// draw at fixed offsets from the epoch, planting multi-phase workloads for
// time-resolved sampling tests. The clock is injectable for fully
// deterministic tests, and MaxRangeMicroJ can be set low to exercise the
// wraparound path in Delta.
type Mock struct {
	PowerWatts     float64
	MaxRangeMicroJ uint64
	Steps          []MockStep // sorted by AtS; before Steps[0].AtS the draw is PowerWatts

	// ModelW, when non-nil, plants a linear power model: the draw becomes
	// PowerWatts + Σ_c ModelW[c]·load_c (+ a deterministic NoiseW-amplitude
	// perturbation per distinct load vector), with the load vector supplied
	// through SetLoad. Planted models take precedence over Steps.
	ModelW map[string]float64
	// NoiseW is the amplitude of the per-configuration pseudo-noise added
	// to a modeled draw: a hash of the load vector mapped into [-NoiseW,
	// +NoiseW], so repeated measurements of one configuration agree exactly
	// while the fit across configurations sees residual scatter.
	NoiseW float64

	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
	// Modeled-power integration state: energy accumulated through completed
	// load segments, the elapsed offset the current segment started at, and
	// the current total draw.
	accumJ    float64
	segStartS float64
	loadW     float64
}

// NewMock returns a mock meter drawing powerWatts with a realistic 32-bit-ish
// counter range (matching RAPL's ~262 kJ package range).
func NewMock(powerWatts float64) *Mock {
	return &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: 262_143_328_850, now: time.Now}
}

// NewMockWithClock returns a mock meter driven by an explicit clock, for
// deterministic tests (including counter-wraparound tests via a small
// maxRange).
func NewMockWithClock(powerWatts float64, maxRangeMicroJ uint64, clock func() time.Time) *Mock {
	m := &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: maxRangeMicroJ, now: clock}
	m.epoch = clock()
	return m
}

func (m *Mock) Name() string { return "mock" }

func (m *Mock) Domains() []Domain {
	return []Domain{{Name: "mock-package-0", MaxRangeMicroJ: m.MaxRangeMicroJ}}
}

func (m *Mock) Read() (Reading, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if m.epoch.IsZero() {
		m.epoch = t
	}
	elapsed := t.Sub(m.epoch).Seconds()
	joules := m.energyJoules(elapsed)
	if m.ModelW != nil {
		joules = m.accumJ + (m.PowerWatts+m.loadW)*(elapsed-m.segStartS)
	}
	microJ := uint64(joules * 1e6)
	if m.MaxRangeMicroJ > 0 {
		microJ %= m.MaxRangeMicroJ
	}
	return Reading{At: t, Counters: []uint64{microJ}}, nil
}

// SetLoad switches the modeled draw to the given activity vector, closing
// the previous load segment's energy integral first so readings across the
// transition stay exact. A mock without a planted model ignores it.
func (m *Mock) SetLoad(load map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ModelW == nil {
		return
	}
	t := m.now()
	if m.epoch.IsZero() {
		m.epoch = t
	}
	elapsed := t.Sub(m.epoch).Seconds()
	m.accumJ += (m.PowerWatts + m.loadW) * (elapsed - m.segStartS)
	m.segStartS = elapsed
	m.loadW = m.modelWatts(load)
}

// modelWatts evaluates the planted model on a load vector: the linear term
// plus the configuration's deterministic noise.
func (m *Mock) modelWatts(load map[string]float64) float64 {
	if len(load) == 0 {
		return 0
	}
	keys := make([]string, 0, len(load))
	for c := range load {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	var w float64
	h := fnv.New64a()
	for _, c := range keys {
		w += m.ModelW[c] * load[c]
		fmt.Fprintf(h, "%s=%g|", c, load[c])
	}
	if m.NoiseW > 0 {
		// Map the 64-bit hash uniformly into [-1, 1]: the same load vector
		// always lands on the same perturbation, so a configuration's
		// repeated measurements agree while the cross-configuration
		// residuals give the fit a nonzero variance to estimate.
		u := float64(h.Sum64()) / float64(^uint64(0)) // [0, 1]
		w += (2*u - 1) * m.NoiseW
	}
	return w
}

// ParseMockModel decodes the 'component:watts,...' planted-model syntax
// shared by the --mock-model flag and the campaign mock_model key.
func ParseMockModel(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	model := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		comp, wattsStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mock model: term %q is not of the form component:watts", part)
		}
		comp = strings.TrimSpace(comp)
		watts, err := strconv.ParseFloat(strings.TrimSpace(wattsStr), 64)
		if err != nil {
			return nil, fmt.Errorf("mock model: bad watts in %q: %w", part, err)
		}
		if comp == "" {
			return nil, fmt.Errorf("mock model: term %q has an empty component name", part)
		}
		if _, dup := model[comp]; dup {
			return nil, fmt.Errorf("mock model: component %q appears twice", comp)
		}
		model[comp] = watts
	}
	return model, nil
}

// energyJoules integrates the (piecewise-constant) power draw over the first
// elapsed seconds since the epoch.
func (m *Mock) energyJoules(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	var joules float64
	prevT, watts := 0.0, m.PowerWatts
	for _, st := range m.Steps {
		if elapsed <= st.AtS {
			break
		}
		if st.AtS > prevT {
			joules += watts * (st.AtS - prevT)
			prevT = st.AtS
		}
		watts = st.Watts
	}
	return joules + watts*(elapsed-prevT)
}
