package meter

import (
	"sync"
	"time"
)

// MockStep is one boundary of a piecewise-constant mock power schedule: from
// AtS seconds after the meter's epoch onward, the meter draws Watts.
type MockStep struct {
	AtS   float64
	Watts float64
}

// Mock is a deterministic EnergyMeter for tests and CI machines without RAPL
// access. It models a single domain drawing a constant PowerWatts, so energy
// is exactly power × elapsed time. An optional Steps schedule switches the
// draw at fixed offsets from the epoch, planting multi-phase workloads for
// time-resolved sampling tests. The clock is injectable for fully
// deterministic tests, and MaxRangeMicroJ can be set low to exercise the
// wraparound path in Delta.
type Mock struct {
	PowerWatts     float64
	MaxRangeMicroJ uint64
	Steps          []MockStep // sorted by AtS; before Steps[0].AtS the draw is PowerWatts

	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
}

// NewMock returns a mock meter drawing powerWatts with a realistic 32-bit-ish
// counter range (matching RAPL's ~262 kJ package range).
func NewMock(powerWatts float64) *Mock {
	return &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: 262_143_328_850, now: time.Now}
}

// NewMockWithClock returns a mock meter driven by an explicit clock, for
// deterministic tests (including counter-wraparound tests via a small
// maxRange).
func NewMockWithClock(powerWatts float64, maxRangeMicroJ uint64, clock func() time.Time) *Mock {
	m := &Mock{PowerWatts: powerWatts, MaxRangeMicroJ: maxRangeMicroJ, now: clock}
	m.epoch = clock()
	return m
}

func (m *Mock) Name() string { return "mock" }

func (m *Mock) Domains() []Domain {
	return []Domain{{Name: "mock-package-0", MaxRangeMicroJ: m.MaxRangeMicroJ}}
}

func (m *Mock) Read() (Reading, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if m.epoch.IsZero() {
		m.epoch = t
	}
	elapsed := t.Sub(m.epoch).Seconds()
	microJ := uint64(m.energyJoules(elapsed) * 1e6)
	if m.MaxRangeMicroJ > 0 {
		microJ %= m.MaxRangeMicroJ
	}
	return Reading{At: t, Counters: []uint64{microJ}}, nil
}

// energyJoules integrates the (piecewise-constant) power draw over the first
// elapsed seconds since the epoch.
func (m *Mock) energyJoules(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	var joules float64
	prevT, watts := 0.0, m.PowerWatts
	for _, st := range m.Steps {
		if elapsed <= st.AtS {
			break
		}
		if st.AtS > prevT {
			joules += watts * (st.AtS - prevT)
			prevT = st.AtS
		}
		watts = st.Watts
	}
	return joules + watts*(elapsed-prevT)
}
