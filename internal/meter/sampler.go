package meter

import (
	"time"
)

// SeriesPoint is one tick of an in-trial sampling series. TS is the point's
// offset in seconds from the series anchor (the trial's before-read
// timestamp); DomainUJ holds the wrap-unwrapped microjoule delta per meter
// domain since the previous point; PowerW is the summed delta divided by the
// inter-reading window. Counts, when counter sampling is enabled, holds the
// per-event deltas of the trial's perf sessions over the same window.
type SeriesPoint struct {
	TS       float64   `json:"t_s"`
	DomainUJ []uint64  `json:"domain_uj"`
	PowerW   float64   `json:"power_w"`
	Counts   []float64 `json:"counts,omitempty"`
}

// Series is one repetition's time-resolved samples. StartAt anchors the
// relative TS offsets to wall-clock time; IntervalS is the requested ticker
// period (actual point spacing comes from the meter's own Reading.At stamps,
// so scheduling jitter never skews per-point power).
type Series struct {
	StartAt   time.Time     `json:"start_at"`
	IntervalS float64       `json:"interval_s"`
	Events    []string      `json:"events,omitempty"`
	Points    []SeriesPoint `json:"points"`
}

// Sampler polls an EnergyMeter (and, optionally, a cumulative counter source)
// on a ticker, producing a Series of per-interval deltas. Counts, when set,
// must return cumulative per-event values that are monotonic within the
// sampled region; the sampler emits deltas between consecutive polls and
// clamps negatives (e.g. a session reset racing the first tick) to zero.
type Sampler struct {
	Meter    EnergyMeter
	Interval time.Duration
	Counts   func() ([]float64, error)
	Events   []string

	// tick overrides the ticker channel in tests so each point is driven
	// explicitly instead of by wall-clock time.
	tick <-chan time.Time
}

// Sampling is one in-flight sampling run started by Sampler.Start.
type Sampling struct {
	sampler *Sampler
	stop    chan struct{}
	done    chan struct{}

	// Owned by the sampling goroutine until done is closed.
	series Series
	err    error
}

// Start begins sampling anchored at a reading the caller has already taken
// (the trial's before-read), so the first interval needs no extra meter
// round-trip. Sampling runs until Stop.
func (s *Sampler) Start(anchor Reading) *Sampling {
	sp := &Sampling{
		sampler: s,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		series: Series{
			StartAt:   anchor.At,
			IntervalS: s.Interval.Seconds(),
			Events:    s.Events,
		},
	}
	go sp.run(anchor)
	return sp
}

// Stop ends the sampling run, flushes one final point covering the partial
// interval since the last tick, and returns the collected series. The first
// meter or counter error encountered aborts collection and is returned here;
// the points gathered before it remain valid. Stop must be called exactly
// once.
func (sp *Sampling) Stop() (Series, error) {
	close(sp.stop)
	<-sp.done
	return sp.series, sp.err
}

func (sp *Sampling) run(anchor Reading) {
	defer close(sp.done)
	tick := sp.sampler.tick
	if tick == nil {
		ticker := time.NewTicker(sp.sampler.Interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	prev := anchor
	prevCounts, err := sp.pollCounts()
	if err != nil {
		sp.err = err
		return
	}
	for {
		select {
		case <-sp.stop:
			// Final flush: close the last partial interval so the series
			// covers the whole measured window.
			sp.point(&prev, &prevCounts)
			return
		case <-tick:
			if sp.point(&prev, &prevCounts); sp.err != nil {
				return
			}
		}
	}
}

// point reads the meter (and counters) once and appends the delta versus
// *prev as a new series point, advancing prev. Readings that do not advance
// the meter clock are skipped: a zero or negative window has no defined
// power.
func (sp *Sampling) point(prev *Reading, prevCounts *[]float64) {
	m := sp.sampler.Meter
	cur, err := m.Read()
	if err != nil {
		sp.err = err
		return
	}
	counts, err := sp.pollCounts()
	if err != nil {
		sp.err = err
		return
	}
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return
	}
	deltas, err := deltaMicroJ(m.Name(), m.Domains(), *prev, cur)
	if err != nil {
		sp.err = err
		return
	}
	var sumUJ uint64
	for _, d := range deltas {
		sumUJ += d
	}
	pt := SeriesPoint{
		TS:       cur.At.Sub(sp.series.StartAt).Seconds(),
		DomainUJ: deltas,
		PowerW:   float64(sumUJ) / 1e6 / dt,
	}
	if counts != nil && len(counts) == len(*prevCounts) {
		pt.Counts = make([]float64, len(counts))
		for i := range counts {
			if d := counts[i] - (*prevCounts)[i]; d > 0 {
				pt.Counts[i] = d
			}
		}
	}
	sp.series.Points = append(sp.series.Points, pt)
	*prev = cur
	*prevCounts = counts
}

func (sp *Sampling) pollCounts() ([]float64, error) {
	if sp.sampler.Counts == nil {
		return nil, nil
	}
	return sp.sampler.Counts()
}
