package meter

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultPowercapRoot is the Linux powercap sysfs mount point.
const DefaultPowercapRoot = "/sys/class/powercap"

// RAPL reads Intel RAPL package-level energy counters from the powercap
// sysfs tree. Reading energy_uj requires root or read permission on the
// powercap files (kernels ≥5.10 restrict it to root by default).
type RAPL struct {
	root    string
	domains []Domain
	paths   []string // energy_uj file per domain, parallel to domains
}

// NewRAPL discovers top-level RAPL package domains under root (pass
// DefaultPowercapRoot on real systems; tests point it at a fake tree).
// Subdomains such as intel-rapl:0:0 (core/uncore/dram) are skipped: package
// counters already include them, and summing both would double-count.
func NewRAPL(root string) (*RAPL, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("rapl: reading %s: %w", root, err)
	}
	r := &RAPL{root: root}
	var names []string
	for _, e := range entries {
		n := e.Name()
		// Top-level packages look like "intel-rapl:0"; subdomains have a
		// second colon ("intel-rapl:0:0").
		if !strings.HasPrefix(n, "intel-rapl:") || strings.Count(n, ":") != 1 {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		dir := filepath.Join(root, n)
		label, err := os.ReadFile(filepath.Join(dir, "name"))
		if err != nil {
			return nil, fmt.Errorf("rapl: %s has no name file: %w", n, err)
		}
		// The wrap modulus comes from sysfs rather than a hard-coded
		// constant: real parts differ (~262 kJ packages, smaller
		// subdomains). Some kernels/hypervisors omit the file entirely, so
		// a missing or malformed max_energy_range_uj degrades to 0 ("never
		// wraps") instead of failing discovery — Delta then reports an
		// explicit error only if a counter actually rolls over.
		maxRange, err := readCounterFile(filepath.Join(dir, "max_energy_range_uj"))
		if err != nil {
			maxRange = 0
		}
		energyPath := filepath.Join(dir, "energy_uj")
		if _, err := readCounterFile(energyPath); err != nil {
			return nil, fmt.Errorf("rapl: %s unreadable (need root or powercap read permission): %w", energyPath, err)
		}
		r.domains = append(r.domains, Domain{
			Name:           string(bytes.TrimSpace(label)),
			MaxRangeMicroJ: maxRange,
		})
		r.paths = append(r.paths, energyPath)
	}
	if len(r.domains) == 0 {
		return nil, fmt.Errorf("rapl: no intel-rapl package domains under %s", root)
	}
	return r, nil
}

func (r *RAPL) Name() string      { return "rapl" }
func (r *RAPL) Domains() []Domain { return r.domains }

func (r *RAPL) Read() (Reading, error) {
	rd := Reading{At: time.Now(), Counters: make([]uint64, len(r.paths))}
	for i, p := range r.paths {
		v, err := readCounterFile(p)
		if err != nil {
			return Reading{}, err
		}
		rd.Counters[i] = v
	}
	return rd, nil
}

func readCounterFile(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	return v, nil
}
