package meter

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// queueClock hands out pre-programmed timestamps, one per call, repeating
// the last forever. Unlike fakeClock it needs no advance() coordination with
// the sampling goroutine: each Read simply pops the next planned time, so
// tests stay deterministic without racing the sampler's internal reads.
type queueClock struct {
	mu    sync.Mutex
	times []time.Time
	last  time.Time
}

func newQueueClock(times ...time.Time) *queueClock {
	return &queueClock{times: times, last: times[0]}
}

func (q *queueClock) now() time.Time {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.times) > 0 {
		q.last = q.times[0]
		q.times = q.times[1:]
	}
	return q.last
}

var seriesBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func atMS(ms int) time.Time { return seriesBase.Add(time.Duration(ms) * time.Millisecond) }

func TestSamplerMockSeriesDeterministic(t *testing.T) {
	// Reads pop: epoch, anchor, then one per tick. The final flush re-reads
	// the exhausted queue (same time as the last tick) and must not add a
	// zero-dt point.
	clk := newQueueClock(atMS(0), atMS(0), atMS(10), atMS(20), atMS(30))
	m := NewMockWithClock(50, 0, clk.now) // 50 W, no wrap

	anchor, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	s := &Sampler{Meter: m, Interval: 10 * time.Millisecond, tick: tick}
	sp := s.Start(anchor)
	for i := 0; i < 3; i++ {
		tick <- atMS(10 * (i + 1))
	}
	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !series.StartAt.Equal(anchor.At) {
		t.Errorf("StartAt = %v, want anchor %v", series.StartAt, anchor.At)
	}
	if series.IntervalS != 0.01 {
		t.Errorf("IntervalS = %v, want 0.01", series.IntervalS)
	}
	if len(series.Points) != 3 {
		t.Fatalf("got %d points, want 3: %+v", len(series.Points), series.Points)
	}
	for i, pt := range series.Points {
		wantTS := 0.01 * float64(i+1)
		if math.Abs(pt.TS-wantTS) > 1e-9 {
			t.Errorf("point %d TS = %v, want %v", i, pt.TS, wantTS)
		}
		// 50 W × 10 ms = 0.5 J = 500_000 µJ per interval.
		if len(pt.DomainUJ) != 1 || pt.DomainUJ[0] != 500_000 {
			t.Errorf("point %d DomainUJ = %v, want [500000]", i, pt.DomainUJ)
		}
		if math.Abs(pt.PowerW-50) > 1e-6 {
			t.Errorf("point %d PowerW = %v, want 50", i, pt.PowerW)
		}
	}
}

func TestSamplerFinalFlushCoversPartialInterval(t *testing.T) {
	// One tick at 10 ms, then Stop at 14 ms: the final flush must close the
	// 4 ms partial interval with a correct power value.
	clk := newQueueClock(atMS(0), atMS(0), atMS(10), atMS(14))
	m := NewMockWithClock(20, 0, clk.now)
	anchor, _ := m.Read()
	tick := make(chan time.Time)
	s := &Sampler{Meter: m, Interval: 10 * time.Millisecond, tick: tick}
	sp := s.Start(anchor)
	tick <- atMS(10)
	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("got %d points, want 2 (tick + final flush): %+v", len(series.Points), series.Points)
	}
	last := series.Points[1]
	if math.Abs(last.TS-0.014) > 1e-9 {
		t.Errorf("final point TS = %v, want 0.014", last.TS)
	}
	if math.Abs(last.PowerW-20) > 1e-6 {
		t.Errorf("final point PowerW = %v, want 20", last.PowerW)
	}
}

func TestSamplerSeesMockSchedulePhases(t *testing.T) {
	times := []time.Time{atMS(0), atMS(0)}
	for i := 1; i <= 10; i++ {
		times = append(times, atMS(10*i))
	}
	clk := newQueueClock(times...)
	m := NewMockWithClock(42, 0, clk.now)
	m.Steps = []MockStep{{AtS: 0.05, Watts: 20}}

	anchor, _ := m.Read()
	tick := make(chan time.Time)
	s := &Sampler{Meter: m, Interval: 10 * time.Millisecond, tick: tick}
	sp := s.Start(anchor)
	for i := 1; i <= 10; i++ {
		tick <- atMS(10 * i)
	}
	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 10 {
		t.Fatalf("got %d points, want 10", len(series.Points))
	}
	for i, pt := range series.Points {
		want := 42.0
		if i >= 5 { // schedule switches at t = 50 ms
			want = 20.0
		}
		if math.Abs(pt.PowerW-want) > 1e-6 {
			t.Errorf("point %d (t=%v) PowerW = %v, want %v", i, pt.TS, pt.PowerW, want)
		}
	}
}

func TestMockEnergyJoulesSchedule(t *testing.T) {
	m := &Mock{PowerWatts: 42, Steps: []MockStep{{AtS: 0.1, Watts: 20}, {AtS: 0.2, Watts: 5}}}
	tests := []struct {
		elapsed float64
		want    float64
	}{
		{0, 0},
		{0.05, 2.1},          // 42 × 0.05
		{0.1, 4.2},           // boundary
		{0.15, 4.2 + 1},      // + 20 × 0.05
		{0.3, 4.2 + 2 + 0.5}, // + 20 × 0.1 + 5 × 0.1
		{-1, 0},              // never negative
	}
	for _, tc := range tests {
		if got := m.energyJoules(tc.elapsed); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("energyJoules(%v) = %v, want %v", tc.elapsed, got, tc.want)
		}
	}
}

func TestSamplerCountsDeltas(t *testing.T) {
	clk := newQueueClock(atMS(0), atMS(0), atMS(10), atMS(20))
	m := NewMockWithClock(10, 0, clk.now)
	anchor, _ := m.Read()
	var mu sync.Mutex
	cum := []float64{0, 0}
	polled := make(chan struct{}, 16)
	tick := make(chan time.Time)
	s := &Sampler{
		Meter:    m,
		Interval: 10 * time.Millisecond,
		Events:   []string{"cycles", "instructions"},
		Counts: func() ([]float64, error) {
			mu.Lock()
			snap := append([]float64(nil), cum...)
			mu.Unlock()
			polled <- struct{}{}
			return snap, nil
		},
		tick: tick,
	}
	sp := s.Start(anchor)
	<-polled // baseline poll at Start
	for i := 0; i < 2; i++ {
		mu.Lock()
		cum[0] += 1000
		cum[1] += 500
		mu.Unlock()
		tick <- atMS(10 * (i + 1))
		<-polled
	}
	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Events) != 2 || series.Events[0] != "cycles" {
		t.Errorf("Events = %v", series.Events)
	}
	if len(series.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(series.Points))
	}
	for i, pt := range series.Points {
		if len(pt.Counts) != 2 || pt.Counts[0] != 1000 || pt.Counts[1] != 500 {
			t.Errorf("point %d Counts = %v, want [1000 500]", i, pt.Counts)
		}
	}
}

func TestSamplerClampsCounterResets(t *testing.T) {
	clk := newQueueClock(atMS(0), atMS(0), atMS(10))
	m := NewMockWithClock(10, 0, clk.now)
	anchor, _ := m.Read()
	polls := 0
	tick := make(chan time.Time)
	s := &Sampler{
		Meter:    m,
		Interval: 10 * time.Millisecond,
		Counts: func() ([]float64, error) {
			polls++
			if polls == 1 {
				return []float64{5000}, nil // stale pre-reset baseline
			}
			return []float64{100}, nil // session reset between polls
		},
		tick: tick,
	}
	sp := s.Start(anchor)
	tick <- atMS(10)
	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(series.Points))
	}
	if got := series.Points[0].Counts[0]; got != 0 {
		t.Errorf("negative counter delta = %v, want clamped to 0", got)
	}
}

func TestSamplerSurfacesMeterError(t *testing.T) {
	clk := newQueueClock(atMS(0), atMS(0))
	boom := errors.New("read failed")
	m := &failAfterMeter{Mock: NewMockWithClock(10, 0, clk.now), failAfter: 1, err: boom}
	anchor, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	s := &Sampler{Meter: m, Interval: 10 * time.Millisecond, tick: tick}
	sp := s.Start(anchor)
	tick <- atMS(10) // this read fails inside the sampling goroutine
	series, err := sp.Stop()
	if !errors.Is(err, boom) {
		t.Fatalf("Stop err = %v, want %v", err, boom)
	}
	if len(series.Points) != 0 {
		t.Errorf("got %d points after failing read, want 0", len(series.Points))
	}
}

// failAfterMeter delegates to the mock, failing every Read after the first
// failAfter successes.
type failAfterMeter struct {
	*Mock
	failAfter int
	mu        sync.Mutex
	reads     int
	err       error
}

func (f *failAfterMeter) Read() (Reading, error) {
	f.mu.Lock()
	f.reads++
	n := f.reads
	f.mu.Unlock()
	if n > f.failAfter {
		return Reading{}, f.err
	}
	return f.Mock.Read()
}

// notifyMeter signals after every delegated Read so tests can rewrite a fake
// sysfs tree between sampler ticks without racing the sampling goroutine.
type notifyMeter struct {
	EnergyMeter
	read chan struct{}
}

func (n *notifyMeter) Read() (Reading, error) {
	r, err := n.EnergyMeter.Read()
	n.read <- struct{}{}
	return r, err
}

// TestSamplerRAPLWrapMidSeries drives a sampling series across the RAPL wrap
// modulus using the fake powercap tree: the tick that observes the wrapped
// counter must unwrap against max_energy_range_uj exactly as the end-of-trial
// delta does.
func TestSamplerRAPLWrapMidSeries(t *testing.T) {
	root := t.TempDir()
	const maxRange = 10_000_000 // 10 J wrap modulus
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 9_000_000, maxRange)
	r, err := NewRAPL(root)
	if err != nil {
		t.Fatal(err)
	}
	nm := &notifyMeter{EnergyMeter: r, read: make(chan struct{}, 8)}

	anchor, err := nm.Read()
	if err != nil {
		t.Fatal(err)
	}
	<-nm.read
	tick := make(chan time.Time)
	s := &Sampler{Meter: nm, Interval: time.Millisecond, tick: tick}
	sp := s.Start(anchor)

	// Tick 1: counter advances without wrapping.
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 9_600_000, maxRange)
	tick <- time.Now()
	<-nm.read

	// Tick 2: counter crosses the wrap modulus mid-series:
	// 9_600_000 → (wrap) → 400_000 is a true delta of 800_000 µJ.
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 400_000, maxRange)
	tick <- time.Now()
	<-nm.read

	// Tick 3: normal advance after the wrap.
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 700_000, maxRange)
	tick <- time.Now()
	<-nm.read

	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) < 3 {
		t.Fatalf("got %d points, want at least 3", len(series.Points))
	}
	want := []uint64{600_000, 800_000, 300_000}
	for i, w := range want {
		if got := series.Points[i].DomainUJ[0]; got != w {
			t.Errorf("point %d DomainUJ = %d µJ, want %d", i, got, w)
		}
	}
}

// TestSamplerRAPLMultiDomainOrdering checks that per-point domain deltas stay
// aligned with Domains() order across a series, including a wrap on one
// domain but not the other.
func TestSamplerRAPLMultiDomainOrdering(t *testing.T) {
	root := t.TempDir()
	const maxRange = 1_000_000
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 100_000, maxRange)
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 900_000, maxRange)
	r, err := NewRAPL(root)
	if err != nil {
		t.Fatal(err)
	}
	doms := r.Domains()
	if len(doms) != 2 || doms[0].Name != "package-0" || doms[1].Name != "package-1" {
		t.Fatalf("unexpected domains: %+v", doms)
	}
	nm := &notifyMeter{EnergyMeter: r, read: make(chan struct{}, 8)}
	anchor, err := nm.Read()
	if err != nil {
		t.Fatal(err)
	}
	<-nm.read
	tick := make(chan time.Time)
	s := &Sampler{Meter: nm, Interval: time.Millisecond, tick: tick}
	sp := s.Start(anchor)

	// package-0 advances by 50_000; package-1 wraps: 900_000 → 200_000 is
	// (1_000_000 - 900_000) + 200_000 = 300_000 µJ.
	writeRAPLDomain(t, root, "intel-rapl:0", "package-0", 150_000, maxRange)
	writeRAPLDomain(t, root, "intel-rapl:1", "package-1", 200_000, maxRange)
	tick <- time.Now()
	<-nm.read

	series, err := sp.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) < 1 {
		t.Fatal("no points")
	}
	pt := series.Points[0]
	if len(pt.DomainUJ) != 2 {
		t.Fatalf("DomainUJ = %v, want 2 domains", pt.DomainUJ)
	}
	if pt.DomainUJ[0] != 50_000 {
		t.Errorf("package-0 delta = %d, want 50000 (ordering broken?)", pt.DomainUJ[0])
	}
	if pt.DomainUJ[1] != 300_000 {
		t.Errorf("package-1 delta = %d, want 300000 wrapped (ordering broken?)", pt.DomainUJ[1])
	}
}
