package bench

import "testing"

func TestCatalogSpecsValid(t *testing.T) {
	specs := Catalog()
	if len(specs) < 6 {
		t.Fatalf("catalog has %d specs, want at least 6", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestCatalogCoversMemoryHierarchy(t *testing.T) {
	want := []Component{CompIntALU, CompFPU, CompL1, CompL2, CompL3, CompDRAM, CompMixed}
	have := map[Component]bool{}
	for _, s := range Catalog() {
		have[s.Component] = true
	}
	for _, c := range want {
		if !have[c] {
			t.Errorf("catalog missing a spec for component %q", c)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("chase-l1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Component != CompL1 {
		t.Errorf("chase-l1 component = %q, want %q", s.Component, CompL1)
	}
	if _, err := Lookup("no-such-spec"); err == nil {
		t.Error("want error for unknown spec, got nil")
	}
}

func TestSpecValidate(t *testing.T) {
	valid := Spec{Name: "x", Iters: 1, Kernel: KernelIntALU}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Iters: 1, Kernel: KernelIntALU},                            // no name
		{Name: "x", Iters: 1},                                       // no kernel
		{Name: "x", Kernel: KernelIntALU},                           // zero iters
		{Name: "x", Iters: 1, Kernel: KernelIntALU, WorkingSet: -1}, // negative ws
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestCyclePermutationIsSingleCycle verifies the chase buffer is one cycle
// covering every element — the property that makes the pointer chase touch
// the whole working set with unpredictable addresses.
func TestCyclePermutationIsSingleCycle(t *testing.T) {
	for _, n := range []int{2, 3, 64, 1024} {
		p := cyclePermutation(n, 42)
		visited := make([]bool, n)
		i := uint32(0)
		for steps := 0; steps < n; steps++ {
			if visited[i] {
				t.Fatalf("n=%d: revisited %d after %d steps (not a single cycle)", n, i, steps)
			}
			visited[i] = true
			i = p[i]
		}
		if i != 0 {
			t.Errorf("n=%d: cycle did not return to start (at %d)", n, i)
		}
	}
}

func TestCyclePermutationDeterministic(t *testing.T) {
	a := cyclePermutation(256, 7)
	b := cyclePermutation(256, 7)
	c := cyclePermutation(256, 8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical permutations")
	}
}

func TestNewWorkspaceSizing(t *testing.T) {
	s := Spec{Name: "x", Iters: 1, Kernel: KernelChase, WorkingSet: 4096}
	ws := NewWorkspace(s, 1)
	if got := len(ws.chase) * 4; got != 4096 {
		t.Errorf("workspace footprint = %d bytes, want 4096", got)
	}
	compute := Spec{Name: "y", Iters: 1, Kernel: KernelIntALU}
	if ws := NewWorkspace(compute, 1); ws.chase != nil {
		t.Error("pure-compute workspace should not allocate a chase buffer")
	}
}

func TestKernelsRunAndProduceWork(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ws := NewWorkspace(spec, 99)
			v := spec.Kernel(ws, 1024)
			// The accumulator itself is arbitrary; the point is the call
			// completes and the result can be sunk.
			Sink += v
		})
	}
}
