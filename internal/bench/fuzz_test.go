package bench

import "testing"

// FuzzCyclePermutation asserts the invariant every chase kernel depends on:
// for any (n, seed), the permutation is one single cycle visiting all n
// elements — never multiple short cycles (which would shrink the effective
// working set) and never out-of-range indices (which would crash a kernel).
func FuzzCyclePermutation(f *testing.F) {
	f.Add(uint16(2), uint64(0))
	f.Add(uint16(3), uint64(1))
	f.Add(uint16(64), uint64(42))
	f.Add(uint16(1024), uint64(0x9e3779b97f4a7c15))
	f.Add(uint16(4095), uint64(^uint64(0)))
	f.Fuzz(func(t *testing.T, n16 uint16, seed uint64) {
		n := int(n16)%4095 + 2 // keep fuzz iterations fast; n ∈ [2, 4096]
		p := cyclePermutation(n, seed)
		if len(p) != n {
			t.Fatalf("n=%d seed=%d: got %d elements", n, seed, len(p))
		}
		visited := make([]bool, n)
		i := uint32(0)
		for steps := 0; steps < n; steps++ {
			if int(i) >= n {
				t.Fatalf("n=%d seed=%d: index %d out of range after %d steps", n, seed, i, steps)
			}
			if visited[i] {
				t.Fatalf("n=%d seed=%d: revisited %d after %d steps (multiple cycles)", n, seed, i, steps)
			}
			visited[i] = true
			i = p[i]
		}
		if i != 0 {
			t.Fatalf("n=%d seed=%d: cycle did not close (ended at %d)", n, seed, i)
		}
	})
}

// TestCyclePermutationSeedVariety is the property the per-thread seeding
// relies on: distinct seeds must yield distinct cycles (for n ≥ 8, where
// the cycle space is astronomically larger than our seed set), so co-running
// threads never walk correlated address streams.
func TestCyclePermutationSeedVariety(t *testing.T) {
	seedPairs := [][2]uint64{
		{1, 2},
		{0, 1},
		{12345, 12345 + 0x9e3779b9}, // consecutive harness workspace seeds
		{^uint64(0), 7},
	}
	for _, n := range []int{8, 16, 256, 4096} {
		for _, pair := range seedPairs {
			a := cyclePermutation(n, pair[0])
			b := cyclePermutation(n, pair[1])
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("n=%d: seeds %d and %d produced identical cycles", n, pair[0], pair[1])
			}
		}
	}
}
