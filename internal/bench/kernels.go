package bench

// Sink receives kernel accumulators so the compiler cannot prove the measured
// loops dead. Kernels accumulate into per-thread locals and publish once via
// their return value, which the harness folds into Sink atomically; the value
// itself is meaningless.
var Sink uint64

// KernelIntALU is a compute-bound integer kernel: four independent
// multiply-add dependency chains (LCG steps) per unrolled iteration keep the
// integer execution ports saturated without touching memory.
func KernelIntALU(ws *Workspace, iters int) uint64 {
	a := ws.acc
	b := a ^ 0x9e3779b97f4a7c15
	c := a + 0x6a09e667f3bcc909
	d := a - 0xbb67ae8584caa73b
	for i := 0; i < iters; i++ {
		a = a*6364136223846793005 + 1442695040888963407
		b = b*6364136223846793005 + 1442695040888963407
		c = c*6364136223846793005 + 1442695040888963407
		d = d*6364136223846793005 + 1442695040888963407
	}
	return a ^ b ^ c ^ d
}

// KernelFPU is a compute-bound floating-point kernel: four independent
// multiply-add chains with factors chosen to stay finite for any realistic
// iteration count.
func KernelFPU(ws *Workspace, iters int) uint64 {
	f := ws.fac
	x, y, z, w := 1.0, 1.1, 1.2, 1.3
	for i := 0; i < iters; i++ {
		x = x*f + 1e-9
		y = y*f + 1e-9
		z = z*f + 1e-9
		w = w*f + 1e-9
		if x > 1e30 {
			x, y, z, w = 1.0, 1.1, 1.2, 1.3
		}
	}
	return uint64(x + y + z + w)
}

// KernelChase is the memory-bound kernel: a serialized pointer chase through
// a random single-cycle permutation sized to the target cache level. Every
// load depends on the previous one, so throughput is bounded by the average
// access latency of the working set's home level (L1/L2/L3/DRAM).
func KernelChase(ws *Workspace, iters int) uint64 {
	p := ws.chase
	i := ws.pos
	for n := 0; n < iters; n += 4 {
		i = p[i]
		i = p[i]
		i = p[i]
		i = p[i]
	}
	ws.pos = i
	return uint64(i)
}

// KernelMixed interleaves one pointer-chase load with a burst of integer
// work, approximating a 50/50 compute/memory instruction mix. The chase
// result feeds the integer chain so the two halves cannot be reordered apart.
func KernelMixed(ws *Workspace, iters int) uint64 {
	p := ws.chase
	i := ws.pos
	a := ws.acc
	for n := 0; n < iters; n++ {
		i = p[i]
		a = (a+uint64(i))*6364136223846793005 + 1442695040888963407
		a ^= a >> 29
	}
	ws.pos = i
	return a
}
