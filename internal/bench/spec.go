package bench

import "fmt"

// Component identifies the microarchitectural resource a kernel stresses.
type Component string

const (
	CompIntALU Component = "int-alu" // integer execution units
	CompFPU    Component = "fpu"     // floating-point units
	CompL1     Component = "l1"      // L1 data cache
	CompL2     Component = "l2"      // L2 cache
	CompL3     Component = "l3"      // last-level cache
	CompDRAM   Component = "dram"    // main memory
	CompMixed  Component = "mixed"   // compute/memory mix
)

// Kernel executes a measured inner loop over a prepared workspace and returns
// an accumulator value that callers must sink to defeat dead-code elimination.
type Kernel func(ws *Workspace, iters int) uint64

// Spec fully describes one micro-benchmark: which kernel to run, the working
// set it touches, and how tightly the measured loop is unrolled. Thread count
// and placement are exploration-space dimensions owned by the harness, not
// the spec.
type Spec struct {
	Name       string    `json:"name"`
	Component  Component `json:"component"`
	WorkingSet int       `json:"working_set_bytes"` // bytes per thread; 0 for pure compute
	Unroll     int       `json:"unroll"`            // unroll factor of the measured loop
	Iters      int       `json:"iters"`             // default inner iterations per repetition
	Desc       string    `json:"desc,omitempty"`
	Kernel     Kernel    `json:"-"`
}

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("bench: spec has empty name")
	}
	if s.Kernel == nil {
		return fmt.Errorf("bench: spec %q has no kernel", s.Name)
	}
	if s.Iters <= 0 {
		return fmt.Errorf("bench: spec %q has non-positive iters %d", s.Name, s.Iters)
	}
	if s.WorkingSet < 0 {
		return fmt.Errorf("bench: spec %q has negative working set %d", s.Name, s.WorkingSet)
	}
	return nil
}

// Workspace holds per-thread mutable state for a kernel. Each worker thread
// owns its own Workspace so threads never share cache lines.
type Workspace struct {
	// chase is a random-cycle permutation: chase[i] is the index of the next
	// element, forming a single cycle through the whole slice. Pointer-chase
	// kernels serialize loads through it so each load's address depends on
	// the previous load's value.
	chase []uint32
	pos   uint32
	// acc seeds the compute chains.
	acc uint64
	fac float64
}

// NewWorkspace prepares the buffers a spec's kernel needs. The chase buffer
// is sized to the spec's working set (4 bytes per element) and permuted into
// a single cycle so hardware prefetchers cannot predict the access stream.
func NewWorkspace(s Spec, seed uint64) *Workspace {
	ws := &Workspace{acc: seed | 1, fac: 1.0000001}
	if s.WorkingSet > 0 {
		n := s.WorkingSet / 4
		if n < 2 {
			n = 2
		}
		ws.chase = cyclePermutation(n, seed)
	}
	return ws
}

// cyclePermutation builds a uniform random single-cycle permutation of
// [0,n) using Sattolo's algorithm with a small deterministic xorshift PRNG,
// so workspaces are reproducible for a given seed.
func cyclePermutation(n int, seed uint64) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	state := seed*2862933555777941757 + 3037000493
	rnd := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	// Sattolo: swap each element with a strictly earlier one, yielding a
	// permutation that is one big cycle.
	for i := n - 1; i > 0; i-- {
		j := rnd(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
