package bench

import (
	"sync/atomic"
	"testing"
)

// BenchmarkKernels runs every catalog kernel under the Go benchmark driver.
// CI executes it with -benchtime=1x as a smoke test: a kernel that stops
// compiling, panics on its workspace, or takes pathological time per
// iteration fails the build long before a real sweep would. Iteration counts
// are scaled down from the sweep defaults — the point is exercising each
// kernel's measured loop, not measuring it accurately here.
func BenchmarkKernels(b *testing.B) {
	for _, spec := range Catalog() {
		b.Run(spec.Name, func(b *testing.B) {
			iters := spec.Iters / 100
			if iters < 1 {
				iters = 1
			}
			ws := NewWorkspace(spec, 1)
			if spec.WorkingSet > 0 {
				b.SetBytes(int64(spec.WorkingSet))
			}
			b.ResetTimer()
			var acc uint64
			for i := 0; i < b.N; i++ {
				acc += spec.Kernel(ws, iters)
			}
			atomic.AddUint64(&Sink, acc)
		})
	}
}
