package bench

import "fmt"

// Working-set sizes targeting the cache hierarchy of typical x86 server
// parts. They only need to land within the right level, not match a specific
// SKU exactly: half of a 32 KiB L1D, half of a 512 KiB-to-1 MiB L2, a slice
// of a multi-MiB L3, and a footprint no LLC will hold.
const (
	wsL1   = 16 << 10
	wsL2   = 256 << 10
	wsL3   = 4 << 20
	wsDRAM = 32 << 20
)

// Catalog returns the built-in micro-benchmark specs, one (or more) per
// microarchitectural component the paper characterizes. Iters are sized so a
// single repetition takes on the order of tens of milliseconds on a modern
// core; the harness scales them via its --iters flag.
func Catalog() []Spec {
	return []Spec{
		{
			Name:      "int-alu",
			Component: CompIntALU,
			Unroll:    4,
			Iters:     4_000_000,
			Desc:      "four independent integer multiply-add chains, no memory traffic",
			Kernel:    KernelIntALU,
		},
		{
			Name:      "fp-mac",
			Component: CompFPU,
			Unroll:    4,
			Iters:     4_000_000,
			Desc:      "four independent FP multiply-add chains, no memory traffic",
			Kernel:    KernelFPU,
		},
		{
			Name:       "chase-l1",
			Component:  CompL1,
			WorkingSet: wsL1,
			Unroll:     4,
			Iters:      4_000_000,
			Desc:       "serialized pointer chase resident in L1D",
			Kernel:     KernelChase,
		},
		{
			Name:       "chase-l2",
			Component:  CompL2,
			WorkingSet: wsL2,
			Unroll:     4,
			Iters:      2_000_000,
			Desc:       "serialized pointer chase resident in L2",
			Kernel:     KernelChase,
		},
		{
			Name:       "chase-l3",
			Component:  CompL3,
			WorkingSet: wsL3,
			Unroll:     4,
			Iters:      1_000_000,
			Desc:       "serialized pointer chase resident in the LLC",
			Kernel:     KernelChase,
		},
		{
			Name:       "chase-dram",
			Component:  CompDRAM,
			WorkingSet: wsDRAM,
			Unroll:     4,
			Iters:      400_000,
			Desc:       "serialized pointer chase missing all caches",
			Kernel:     KernelChase,
		},
		{
			Name:       "mixed-50",
			Component:  CompMixed,
			WorkingSet: wsL2,
			Unroll:     1,
			Iters:      2_000_000,
			Desc:       "50/50 interleave of pointer-chase loads and integer ops",
			Kernel:     KernelMixed,
		},
	}
}

// Lookup returns the catalog spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown spec %q", name)
}
