// Package bench provides a catalog of parameterized micro-benchmark kernels
// that stress specific microarchitectural components (integer ALUs, FP units,
// cache levels, DRAM), following the methodology of "Systematic Energy
// Characterization of CMP/SMT Processor Systems via Automated
// Micro-Benchmarks" (MICRO 2012).
package bench
