package core
