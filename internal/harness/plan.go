package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"energybench/internal/bench"
	"energybench/internal/perf"
)

// Trial is one planned configuration: a first-class, serializable unit of
// work carrying everything an Executor needs — the spec(s), thread count,
// placement, scaled iteration counts, and the repetition budget. The planner
// expands a Space into an ordered []Trial; executors run them one at a time;
// sinks consume the results. Keeping trials explicit is what makes sweeps
// resumable (skip trials whose key is already stored) and sizable up front
// (dry runs print the plan without executing it).
type Trial struct {
	// Seq is the trial's position in the full plan (0-based). It survives
	// resume filtering unchanged, so dry-run output and stored results
	// remain traceable back to the original plan; progress lines count
	// executed trials separately.
	Seq  int        `json:"seq"`
	Spec bench.Spec `json:"spec"`
	// SpecB, when non-nil, makes this a co-run trial: Threads threads of
	// Spec and Threads threads of SpecB share the machine.
	SpecB     *bench.Spec `json:"spec_b,omitempty"`
	Threads   int         `json:"threads"`
	Placement Placement   `json:"placement"`
	// Iters/ItersB are the per-repetition iteration counts after IterScale.
	Iters  int `json:"iters"`
	ItersB int `json:"iters_b,omitempty"`
	// Repetition budget: Warmup discarded reps, then at least MinReps
	// measured reps, stopping early once the energy CV falls to CVTarget
	// (if positive), and never exceeding MaxReps.
	Warmup   int     `json:"warmup"`
	MinReps  int     `json:"min_reps"`
	MaxReps  int     `json:"max_reps"`
	CVTarget float64 `json:"cv_target,omitempty"`
	// MaxCV is the outlier-rejection threshold applied when summarizing
	// samples; 0 disables rejection.
	MaxCV float64 `json:"max_cv,omitempty"`
	// CPUs, when set, is the explicit per-unit CPU assignment (one entry
	// per worker thread, co-run units interleaved A,B,A,B…), overriding
	// the placement policy's own topology walk. The parallel Scheduler
	// fills it in when allocating a trial onto the currently free cores,
	// and it travels to subprocess workers with the rest of the trial.
	CPUs []int `json:"cpus,omitempty"`
	// Counters, when non-nil, makes the executor meter hardware activity
	// around every repetition's measured region. The planner stamps the
	// normalized spec (explicit backend + event list), so a serialized
	// trial reproduces the same counter configuration in a worker child.
	Counters *perf.Spec `json:"counters,omitempty"`
	// SampleInterval, when positive, makes the executor poll the energy
	// meter (and any counter sessions) on this period during each measured
	// repetition, recording a time-resolved series per sample. It serializes
	// with the trial, so subprocess workers sample identically.
	SampleInterval time.Duration `json:"sample_interval_ns,omitempty"`
	// Extern, when non-nil, makes this an external-workload trial: the
	// metered region is a launched child process instead of kernel worker
	// threads. Spec then carries only the workload's name (no kernel), and
	// the configuration key grows a "|w:workload" dimension. Only an
	// extern-aware executor (internal/extwork) can run such trials.
	Extern *ExternSpec `json:"extern,omitempty"`
}

// Name labels the trial for logs and errors: "specA" or "specA+specB".
func (t Trial) Name() string {
	if t.SpecB != nil {
		return t.Spec.Name + "+" + t.SpecB.Name
	}
	return t.Spec.Name
}

// IsCoRun reports whether the trial pairs two specs.
func (t Trial) IsCoRun() bool { return t.SpecB != nil }

// configKey is the canonical configuration identity shared by trials and
// results. Iteration counts are part of the identity because energy totals
// are only comparable at equal work.
func configKey(spec, specB string, threads, threadsB int, placement Placement, meterName string, iters, itersB int) string {
	return fmt.Sprintf("%s|%s|t%d+%d|%s|%s|i%d+%d",
		spec, specB, threads, threadsB, placement, meterName, iters, itersB)
}

// Key returns the trial's configuration key under the given meter backend.
// It matches ResultKey of the Result an executor produces for this trial, so
// resumable sweeps can skip trials whose key the store already holds.
func (t Trial) Key(meterName string) string {
	specB, threadsB, itersB := "", 0, 0
	if t.SpecB != nil {
		specB, threadsB, itersB = t.SpecB.Name, t.Threads, t.ItersB
	}
	key := configKey(t.Spec.Name, specB, t.Threads, threadsB, t.Placement, meterName, t.Iters, itersB)
	if t.Extern != nil {
		key += "|w:" + t.Extern.Workload
	}
	return key
}

// ResultKey derives the configuration identity of a measured result: two
// results with the same key measured the same configuration. An external
// workload carries a "|w:workload" dimension right after the six base
// fields, so a workload and a kernel spec sharing a name stay two live
// records. A result stamped with a host (a fleet merge) then carries the
// host — and, when known, the microarchitecture — as trailing key
// dimensions, so the same configuration measured on two machines yields two
// live records instead of one clobbering the other under last-wins dedup.
// Workload-less, hostless results keep the exact historical six-field key,
// so single-host kernel stores are byte-identical to earlier builds.
func ResultKey(r Result) string {
	key := configKey(r.Spec, r.SpecB, r.Threads, r.ThreadsB, r.Placement, r.Meter, r.Iters, r.ItersB)
	if r.Workload != "" {
		key += "|w:" + r.Workload
	}
	if r.Host != "" {
		key += "|h:" + r.Host
		if r.Microarch != "" {
			key += "|u:" + r.Microarch
		}
	}
	return key
}

// StripHostKey removes the host and microarch dimensions from a
// configuration key, leaving the six-field single-host form. It is how
// fleet consumers compare a merged multi-host store against single-host
// plans: a trial is done when *some* host has measured its stripped key.
// Keys without a host dimension pass through unchanged.
func StripHostKey(key string) string {
	if i := strings.Index(key, "|h:"); i >= 0 {
		return key[:i]
	}
	return key
}

// KeyFields are the configuration components encoded in a key, as
// recovered by ParseKey.
type KeyFields struct {
	Spec      string
	SpecB     string
	Threads   int
	ThreadsB  int
	Placement Placement
	Meter     string
	Iters     int
	ItersB    int
	// Workload is the optional external-workload dimension ("|w:workload");
	// empty for kernel keys.
	Workload string
	// Host and Microarch are the optional trailing fleet dimensions
	// ("|h:host|u:microarch"); empty for single-host keys.
	Host      string
	Microarch string
}

// ParseKey decodes a configuration key produced by Trial.Key/ResultKey
// back into its components, letting stores filter on spec, threads,
// placement, meter, and workload from their key index alone — without
// deserializing any result. Six-field keys are the historical single-host
// kernel form; optional trailing fields follow in strict order — "w:workload"
// (external workload), then "h:host", then "u:microarch" (fleet dimensions,
// a microarch only ever after a host). ok is false for keys in an unknown
// format (e.g. written by a different build); callers using keys as a query
// pre-filter must then fall back to reading the record itself.
func ParseKey(key string) (KeyFields, bool) {
	parts := strings.Split(key, "|")
	if len(parts) < 6 || len(parts) > 9 {
		return KeyFields{}, false
	}
	kf := KeyFields{
		Spec:      parts[0],
		SpecB:     parts[1],
		Placement: Placement(parts[3]),
		Meter:     parts[4],
	}
	var ok bool
	if kf.Threads, kf.ThreadsB, ok = parseKeyPair(parts[2], 't'); !ok {
		return KeyFields{}, false
	}
	if kf.Iters, kf.ItersB, ok = parseKeyPair(parts[5], 'i'); !ok {
		return KeyFields{}, false
	}
	// Trailing optional dimensions, each at most once, in w: → h: → u:
	// order; u: requires a preceding h:.
	rest := parts[6:]
	if len(rest) > 0 {
		if w, ok := strings.CutPrefix(rest[0], "w:"); ok {
			if w == "" {
				return KeyFields{}, false
			}
			kf.Workload = w
			rest = rest[1:]
		}
	}
	if len(rest) > 0 {
		host, ok := strings.CutPrefix(rest[0], "h:")
		if !ok || host == "" {
			return KeyFields{}, false
		}
		kf.Host = host
		rest = rest[1:]
	}
	if len(rest) > 0 {
		uarch, ok := strings.CutPrefix(rest[0], "u:")
		if !ok || uarch == "" {
			return KeyFields{}, false
		}
		kf.Microarch = uarch
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return KeyFields{}, false
	}
	return kf, true
}

// parseKeyPair strictly decodes a "<prefix>N+M" key component, rejecting
// any trailing garbage so a foreign key can never silently parse wrong.
func parseKeyPair(s string, prefix byte) (a, b int, ok bool) {
	if len(s) == 0 || s[0] != prefix {
		return 0, 0, false
	}
	aStr, bStr, found := strings.Cut(s[1:], "+")
	if !found {
		return 0, 0, false
	}
	var err error
	if a, err = strconv.Atoi(aStr); err != nil {
		return 0, 0, false
	}
	if b, err = strconv.Atoi(bStr); err != nil {
		return 0, 0, false
	}
	return a, b, true
}

// Plan validates the space and expands it into the explicit ordered trial
// list: solo specs first, then co-run pairs, each crossed with every thread
// count and placement in order.
func Plan(space Space) ([]Trial, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	minReps, maxReps := space.repBounds()
	var counters *perf.Spec
	if space.Counters != nil {
		norm, err := space.Counters.Normalize()
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		counters = &norm
	}
	var trials []Trial
	add := func(specA bench.Spec, specB *bench.Spec, threads int, placement Placement) {
		t := Trial{
			Seq:       len(trials),
			Spec:      specA,
			SpecB:     specB,
			Threads:   threads,
			Placement: placement,
			Iters:     scaleIters(specA.Iters, space.IterScale),
			Warmup:    space.Warmup,
			MinReps:   minReps,
			MaxReps:   maxReps,
			CVTarget:  space.CVTarget,
			MaxCV:     space.MaxCV,
			Counters:  counters,

			SampleInterval: space.SampleInterval,
		}
		if specB != nil {
			t.ItersB = scaleIters(specB.Iters, space.IterScale)
		}
		trials = append(trials, t)
	}
	for _, spec := range space.Specs {
		for _, threads := range space.ThreadCounts {
			for _, placement := range space.Placements {
				add(spec, nil, threads, placement)
			}
		}
	}
	for _, pair := range space.Pairs {
		b := pair.B
		for _, threads := range space.ThreadCounts {
			for _, placement := range space.Placements {
				add(pair.A, &b, threads, placement)
			}
		}
	}
	return trials, nil
}

// FilterTrials drops every trial for which skip returns true, preserving
// order and original Seq numbers, and reports how many were dropped. Used by
// resumable sweeps to skip configurations the store already holds.
func FilterTrials(trials []Trial, skip func(Trial) bool) (kept []Trial, skipped int) {
	for _, t := range trials {
		if skip(t) {
			skipped++
			continue
		}
		kept = append(kept, t)
	}
	return kept, skipped
}
