package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"energybench/internal/bench"
	"energybench/internal/meter"
	"energybench/internal/perf"
	"energybench/internal/stats"
)

// Executor runs one planned trial and produces its aggregated result. The
// in-process implementation below runs kernels on pinned OS threads of this
// process; the interface exists so alternative backends (forked processes,
// remote agents) can slot under the same planner and sinks.
type Executor interface {
	Execute(ctx context.Context, t Trial) (Result, error)
}

// InProcess executes trials on this process's own threads: per-thread
// workspaces behind a start barrier, the meter read tightly around the
// parallel section, and adaptive repetitions driven by the running CV of the
// energy samples.
type InProcess struct {
	Meter meter.EnergyMeter
	// pin overrides the thread-pinning syscall in tests; nil means the
	// platform pinThread.
	pin func(cpu int) error
	// newActivity overrides ActivityMeter construction in tests; nil means
	// perf.NewMeter over the trial's counter spec.
	newActivity func(perf.Spec) (perf.ActivityMeter, error)
}

func (e *InProcess) pinFunc() func(int) error {
	if e.pin != nil {
		return e.pin
	}
	return pinThread
}

func (e *InProcess) activityMeter(spec perf.Spec) (perf.ActivityMeter, error) {
	if e.newActivity != nil {
		return e.newActivity(spec)
	}
	return perf.NewMeter(spec)
}

// workUnit is one worker thread's assignment: which kernel to run on which
// workspace, which spec group (A=0, B=1) its wall time belongs to, and the
// component name hinting the mock activity backend at its planted rates.
type workUnit struct {
	kernel bench.Kernel
	ws     *bench.Workspace
	iters  int
	group  int
	comp   string
}

func scaleIters(iters int, scale float64) int {
	if scale > 0 {
		iters = int(float64(iters) * scale)
		if iters < 1 {
			iters = 1
		}
	}
	return iters
}

// Execute runs the trial's warm-up and measured repetitions. After MinReps
// measured repetitions it stops early once the running CV of the energy
// samples reaches CVTarget (the paper's repeat-until-stable criterion);
// MaxReps is the hard cap for configurations that never settle.
func (e *InProcess) Execute(ctx context.Context, t Trial) (Result, error) {
	res := Result{
		Spec:      t.Spec.Name,
		Component: t.Spec.Component,
		Threads:   t.Threads,
		Iters:     t.Iters,
		Placement: t.Placement,
		Meter:     e.Meter.Name(),

		SampleInterval: t.SampleInterval,
	}
	for _, d := range e.Meter.Domains() {
		res.Domains = append(res.Domains, d.Name)
	}

	// Per-thread workspaces, distinct seeds so chase cycles differ and
	// threads never share buffers. Co-run units are interleaved A,B,A,B…
	// so compact placement lands each A/B pair on SMT siblings of one core
	// and scatter lands them on distinct physical cores.
	var units []workUnit
	seed := func(i int) uint64 { return uint64(i)*0x9e3779b9 + 12345 }
	if t.SpecB == nil {
		for i := 0; i < t.Threads; i++ {
			units = append(units, workUnit{t.Spec.Kernel, bench.NewWorkspace(t.Spec, seed(i)), t.Iters, 0, string(t.Spec.Component)})
		}
	} else {
		res.SpecB = t.SpecB.Name
		res.ComponentB = t.SpecB.Component
		res.ThreadsB = t.Threads
		res.ItersB = t.ItersB
		for i := 0; i < t.Threads; i++ {
			units = append(units,
				workUnit{t.Spec.Kernel, bench.NewWorkspace(t.Spec, seed(2*i)), t.Iters, 0, string(t.Spec.Component)},
				workUnit{t.SpecB.Kernel, bench.NewWorkspace(*t.SpecB, seed(2*i+1)), t.ItersB, 1, string(t.SpecB.Component)})
		}
	}
	cpus := t.CPUs
	if cpus == nil {
		cpus = cpuAssignment(t.Placement, len(units))
	} else if len(cpus) != len(units) {
		return res, fmt.Errorf("harness: trial has %d explicit CPUs for %d worker threads", len(cpus), len(units))
	}

	// A load-aware meter (the mock's planted linear model) draws power as a
	// function of the running configuration: hand it the trial's nominal
	// activity vector — the same component→threads map the nominal power
	// model regresses on — before any repetition starts.
	if la, ok := e.Meter.(meter.LoadAware); ok {
		load := map[string]float64{string(t.Spec.Component): float64(t.Threads)}
		if t.SpecB != nil {
			load[string(t.SpecB.Component)] += float64(t.Threads)
		}
		la.SetLoad(load)
	}

	var activity perf.ActivityMeter
	if t.Counters != nil {
		am, err := e.activityMeter(*t.Counters)
		if err != nil {
			return res, fmt.Errorf("harness: activity meter: %w", err)
		}
		activity = am
	}

	var conv stats.Accumulator
	var repCounts [][]perf.Counts
	for rep := 0; rep < t.Warmup+t.MaxReps; rep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sample, counts, err := e.runOnce(t, units, cpus, activity)
		if err != nil {
			return res, err
		}
		if rep < t.Warmup {
			continue
		}
		res.Samples = append(res.Samples, sample)
		if counts != nil {
			repCounts = append(repCounts, counts)
		}
		conv.Push(sample.EnergyJ)
		// Converged means the CV target genuinely cut reps short: at the
		// cap (which includes every fixed-rep run, where min == max) the
		// loop is ending anyway and the label would be noise.
		if len(res.Samples) < t.MaxReps && conv.Converged(t.CVTarget, t.MinReps) {
			res.Converged = true
			break
		}
	}
	if activity != nil {
		res.Counters = buildCounters(activity.Name(), activity.Events(), units, cpus, repCounts)
	}

	n := len(res.Samples)
	energies := make([]float64, n)
	times := make([]float64, n)
	powers := make([]float64, n)
	timesA := make([]float64, n)
	timesB := make([]float64, n)
	for i, s := range res.Samples {
		energies[i], times[i], powers[i] = s.EnergyJ, s.TimeS, s.PowerW
		timesA[i], timesB[i] = s.TimeAS, s.TimeBS
	}
	summarize := func(xs []float64) stats.Summary {
		if t.MaxCV > 0 {
			return stats.SummarizeRobust(xs, t.MaxCV, 2)
		}
		return stats.Summarize(xs)
	}
	res.EnergyJ = summarize(energies)
	res.TimeS = summarize(times)
	res.PowerW = summarize(powers)
	if t.SpecB != nil {
		ta, tb := summarize(timesA), summarize(timesB)
		res.TimeA, res.TimeB = &ta, &tb
	}
	res.EDP = res.EnergyJ.Mean * res.TimeS.Mean
	res.EDDP = res.EDP * res.TimeS.Mean
	return res, nil
}

// runOnce executes one repetition: all threads start together behind a
// barrier, the meter is read immediately around the parallel section, and
// the sample's energy is the meter delta across it. Each thread's own wall
// time is recorded so co-runs can report per-spec times. With an activity
// meter, every worker thread opens its own counter group (on its pinned CPU,
// when pinned) and counts exactly the measured region; the per-thread counts
// come back parallel to units. A positive trial SampleInterval additionally
// runs a meter.Sampler across the measured region, polling the meter (and
// the worker counter sessions) on a ticker and attaching the resulting
// series to the sample.
func (e *InProcess) runOnce(trial Trial, units []workUnit, cpus []int, activity perf.ActivityMeter) (Sample, []perf.Counts, error) {
	corun := trial.SpecB != nil
	threads := len(units)
	start := make(chan struct{})
	abort := make(chan struct{})
	var ready, done sync.WaitGroup
	ready.Add(threads)
	done.Add(threads)
	// errBox gives every Store the same concrete type: atomic.Value panics
	// on stores of differing types, and these slots receive errors of
	// several concrete kinds (syscall errnos, wrapped fmt errors).
	type errBox struct{ err error }
	var pinErr, ctrErr atomic.Value
	var sink uint64
	var t0 time.Time
	elapsedPer := make([]float64, threads)
	var countsPer []perf.Counts
	// sessPer exposes each worker's counter session to the sampling
	// goroutine. Slots are written before ready.Done(), so ready.Wait()
	// orders them before the sampler starts polling.
	var sessPer []perf.Session
	if activity != nil {
		countsPer = make([]perf.Counts, threads)
		sessPer = make([]perf.Session, threads)
	}
	pin := e.pinFunc()

	for t := 0; t < threads; t++ {
		go func(t int) {
			defer done.Done()
			// The OS thread must stay fixed whenever it is pinned *or*
			// counted: a per-thread perf session binds to the OS thread that
			// opened it, so goroutine migration mid-kernel would silently
			// divorce the counts from the work.
			if cpus != nil || activity != nil {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			if cpus != nil {
				if err := pin(cpus[t]); err != nil {
					pinErr.Store(errBox{err})
				}
			}
			// Counter groups open after pinning so a per-CPU session lands
			// on the right CPU. An open failure is recorded, not fatal here:
			// the thread still participates in the barrier (abandoning it
			// would wedge the others) and the repetition is rejected after.
			var sess perf.Session
			if activity != nil {
				cpu := -1
				if cpus != nil {
					cpu = cpus[t]
				}
				s, err := activity.OpenThread(cpu, units[t].comp)
				if err != nil {
					ctrErr.Store(errBox{err})
				} else {
					sess = s
					sessPer[t] = s
					defer sess.Close()
				}
			}
			ready.Done()
			select {
			case <-start:
			case <-abort:
				return
			}
			u := units[t]
			if sess != nil {
				if err := sess.Start(); err != nil {
					ctrErr.Store(errBox{err})
					sess = nil
				}
			}
			v := u.kernel(u.ws, u.iters)
			// t0 is written before close(start), so reading it here is
			// ordered by the channel close.
			elapsedPer[t] = time.Since(t0).Seconds()
			if sess != nil {
				counts, err := sess.Stop()
				if err != nil {
					ctrErr.Store(errBox{err})
				} else {
					countsPer[t] = counts
				}
			}
			atomic.AddUint64(&sink, v)
		}(t)
	}
	ready.Wait()
	before, err := e.Meter.Read()
	if err != nil {
		// Release the parked workers (which hold locked OS threads) before
		// surfacing the error.
		close(abort)
		done.Wait()
		return Sample{}, nil, err
	}
	// The sampler anchors on the before reading, so its first interval and
	// the trial's energy delta share a start point. It must start before the
	// workers are released and stop before the closing read, keeping every
	// series point inside the meter window.
	var sampling *meter.Sampling
	if trial.SampleInterval > 0 {
		smp := &meter.Sampler{Meter: e.Meter, Interval: trial.SampleInterval}
		if activity != nil {
			smp.Events = activity.Events()
			smp.Counts = pollSessions(sessPer, len(activity.Events()))
		}
		sampling = smp.Start(before)
	}
	t0 = time.Now()
	close(start)
	done.Wait()
	elapsed := time.Since(t0).Seconds()
	var series *meter.Series
	var sampleErr error
	if sampling != nil {
		ser, err := sampling.Stop()
		series, sampleErr = &ser, err
	}
	after, readErr := e.Meter.Read()
	atomic.AddUint64(&bench.Sink, sink)
	// A pin failure invalidates the placement and must not be masked by a
	// meter error on the closing read (or vice versa) — and a counter
	// failure invalidates the activity vector the model will regress
	// against: join them all.
	var errs []error
	if p := pinErr.Load(); p != nil {
		errs = append(errs, p.(errBox).err)
	}
	if c := ctrErr.Load(); c != nil {
		errs = append(errs, c.(errBox).err)
	}
	if readErr != nil {
		errs = append(errs, readErr)
	}
	if sampleErr != nil {
		errs = append(errs, sampleErr)
	}
	if len(errs) > 0 {
		return Sample{}, nil, errors.Join(errs...)
	}
	domainJ, err := meter.DeltaPerDomain(e.Meter, before, after)
	if err != nil {
		return Sample{}, nil, err
	}
	var energy float64
	for _, j := range domainJ {
		energy += j
	}
	s := Sample{EnergyJ: energy, TimeS: elapsed, DomainJ: domainJ, Series: series}
	// The energy delta spans the meter's own before→after window, which
	// includes the reads' latency on both ends; the thread wall clock starts
	// after the first read returns and stops before the second begins.
	// Dividing by the meter window matches numerator and denominator;
	// dividing by the (shorter) thread window would overestimate power on
	// every sample. Meters that do not timestamp readings leave the window
	// at zero; fall back to the thread clock for those.
	if w := after.At.Sub(before.At).Seconds(); w > 0 {
		s.MeterTimeS = w
		s.PowerW = energy / w
	} else if elapsed > 0 {
		s.PowerW = energy / elapsed
	}
	if corun {
		for t, u := range units {
			if u.group == 0 {
				s.TimeAS = max(s.TimeAS, elapsedPer[t])
			} else {
				s.TimeBS = max(s.TimeBS, elapsedPer[t])
			}
		}
	}
	return s, countsPer, nil
}

// pollSessions builds the sampler's cumulative-counts source: each poll sums
// the scaled per-event counts across every worker session that supports
// non-destructive reads (perf.Poller). Sessions that failed to open, or
// backends without Poll, simply contribute nothing — counter sampling
// degrades instead of failing the trial.
func pollSessions(sessions []perf.Session, events int) func() ([]float64, error) {
	return func() ([]float64, error) {
		out := make([]float64, events)
		for _, s := range sessions {
			p, ok := s.(perf.Poller)
			if !ok {
				continue
			}
			c, err := p.Poll()
			if err != nil {
				return nil, err
			}
			for i, v := range c.Values {
				if i < len(out) {
					out[i] += v.Scaled
				}
			}
		}
		return out, nil
	}
}
