package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Placement is a thread-to-CPU assignment policy for the worker threads of
// one benchmark configuration. The CMP/SMT energy trade-off the paper
// studies hinges on exactly this choice: co-scheduling threads on SMT
// siblings of few cores versus spreading them one per physical core.
type Placement string

const (
	// PlaceNone leaves scheduling to the OS (no pinning). Always available;
	// the only policy used in tests and CI.
	PlaceNone Placement = "none"
	// PlaceCompact fills SMT siblings of a core before moving to the next
	// core, minimizing the number of active cores.
	PlaceCompact Placement = "compact"
	// PlaceScatter assigns one thread per physical core before reusing SMT
	// siblings, maximizing per-thread resources.
	PlaceScatter Placement = "scatter"
)

// ParsePlacement validates a placement name.
func ParsePlacement(s string) (Placement, error) {
	switch p := Placement(s); p {
	case PlaceNone, PlaceCompact, PlaceScatter:
		return p, nil
	}
	return "", fmt.Errorf("harness: unknown placement %q (want none|compact|scatter)", s)
}

// cpuAssignment returns the logical-CPU id each of n threads should pin to,
// or nil when the policy is PlaceNone. Topology is read from sysfs when
// available; otherwise CPUs are assumed to be enumerated core-major.
func cpuAssignment(p Placement, n int) []int {
	if p == PlaceNone || n <= 0 {
		return nil
	}
	return assignFromGroups(p, n, coreGroups())
}

// CPUAssignment exposes the placement policy's topology walk to executors
// outside this package: the external-workload executor pins child processes
// to the same CPUs a kernel trial's worker threads would get. Nil for
// PlaceNone (leave scheduling to the OS).
func CPUAssignment(p Placement, n int) []int {
	return cpuAssignment(p, n)
}

// assignFromGroups orders logical CPUs per the placement policy over the
// given physical-core groups and assigns n threads round-robin over that
// order.
func assignFromGroups(p Placement, n int, cores [][]int) []int {
	var order []int
	switch p {
	case PlaceCompact:
		// Walk cores in order, taking every sibling of a core before the
		// next core.
		for _, siblings := range cores {
			order = append(order, siblings...)
		}
	case PlaceScatter:
		// Round-robin over cores: first sibling of every core, then second
		// siblings, and so on.
		for rank := 0; ; rank++ {
			added := false
			for _, siblings := range cores {
				if rank < len(siblings) {
					order = append(order, siblings[rank])
					added = true
				}
			}
			if !added {
				break
			}
		}
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = order[i%len(order)]
	}
	return assign
}

// coreGroups returns logical CPUs grouped by physical core, each group
// sorted, groups ordered by their first CPU. Falls back to one group per
// logical CPU when the sysfs topology is unreadable (containers, non-Linux).
func coreGroups() [][]int {
	groups := sysfsCoreGroups("/sys/devices/system/cpu")
	if len(groups) > 0 {
		return groups
	}
	n := runtime.NumCPU()
	groups = make([][]int, n)
	for i := 0; i < n; i++ {
		groups[i] = []int{i}
	}
	return groups
}

func sysfsCoreGroups(root string) [][]int {
	seen := map[int]bool{}
	var groups [][]int
	for _, cpu := range onlineCPUs(root) {
		if seen[cpu] {
			continue
		}
		b, err := os.ReadFile(fmt.Sprintf("%s/cpu%d/topology/thread_siblings_list", root, cpu))
		if err != nil {
			return nil
		}
		siblings, err := parseCPUList(strings.TrimSpace(string(b)))
		if err != nil || len(siblings) == 0 {
			return nil
		}
		for _, s := range siblings {
			seen[s] = true
		}
		groups = append(groups, siblings)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// onlineCPUs returns the logical CPUs this process may actually run on:
// the intersection of the online CPU list and the process's affinity mask.
// CPU ids can be sparse (offline CPUs, cgroup cpusets like "8-11"), so
// enumerating 0..NumCPU()-1 would pin to CPUs outside the cpuset and make
// sched_setaffinity fail with EINVAL.
func onlineCPUs(root string) []int {
	b, err := os.ReadFile(filepath.Join(root, "online"))
	if err != nil {
		// No online list (non-standard sysfs): fall back to dense ids.
		cpus := make([]int, runtime.NumCPU())
		for i := range cpus {
			cpus[i] = i
		}
		return cpus
	}
	online, err := parseCPUList(strings.TrimSpace(string(b)))
	if err != nil || len(online) == 0 {
		return nil
	}
	if allowed := affinityCPUs(); allowed != nil {
		var both []int
		for _, c := range online {
			if allowed[c] {
				both = append(both, c)
			}
		}
		online = both
	}
	return online
}

// parseCPUList parses sysfs CPU list syntax: "0-3,8,10-11".
func parseCPUList(s string) ([]int, error) {
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("harness: bad CPU range %q", part)
			}
			for c := a; c <= b; c++ {
				cpus = append(cpus, c)
			}
		} else {
			c, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("harness: bad CPU id %q", part)
			}
			cpus = append(cpus, c)
		}
	}
	sort.Ints(cpus)
	return cpus, nil
}
