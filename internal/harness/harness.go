// Package harness expands an exploration space (benchmark specs × thread
// counts × placements), executes each configuration with warm-up and
// repetitions, and aggregates energy/time/power/EDP with internal/stats.
// Configurations can also pair two heterogeneous specs (co-runs) to measure
// SMT/CMP interference, the core scenario of the MICRO 2012 methodology.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"energybench/internal/bench"
	"energybench/internal/meter"
	"energybench/internal/stats"
)

// Pair is a co-run configuration: two heterogeneous specs sharing the
// machine. The harness runs an equal number of threads of each, interleaved
// in placement order so compact puts A/B on SMT siblings of the same core
// and scatter puts them on separate physical cores.
type Pair struct {
	A, B bench.Spec
}

// Space is the exploration space to sweep: the cartesian product of
// (Specs ∪ Pairs), ThreadCounts, and Placements, each run Warmup+Reps times.
// For a Pair, a thread count of n means n threads of each spec (2n total).
type Space struct {
	Specs        []bench.Spec
	Pairs        []Pair
	ThreadCounts []int
	Placements   []Placement
	Reps         int // measured repetitions per configuration
	Warmup       int // discarded warm-up repetitions per configuration
	IterScale    float64
	// MaxCV is the coefficient-of-variation threshold for outlier
	// rejection over the energy samples; 0 disables rejection.
	MaxCV float64
}

// Validate checks the space is runnable.
func (s Space) Validate() error {
	if len(s.Specs) == 0 && len(s.Pairs) == 0 {
		return fmt.Errorf("harness: space has no specs or pairs")
	}
	for _, sp := range s.Specs {
		if err := sp.Validate(); err != nil {
			return err
		}
	}
	for _, p := range s.Pairs {
		if err := p.A.Validate(); err != nil {
			return err
		}
		if err := p.B.Validate(); err != nil {
			return err
		}
	}
	if len(s.ThreadCounts) == 0 {
		return fmt.Errorf("harness: space has no thread counts")
	}
	for _, t := range s.ThreadCounts {
		if t <= 0 {
			return fmt.Errorf("harness: non-positive thread count %d", t)
		}
	}
	if len(s.Placements) == 0 {
		return fmt.Errorf("harness: space has no placements")
	}
	if s.Reps <= 0 {
		return fmt.Errorf("harness: reps must be positive, got %d", s.Reps)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("harness: warmup must be non-negative, got %d", s.Warmup)
	}
	return nil
}

// Sample is one measured repetition of one configuration. For co-runs,
// TimeAS/TimeBS are the wall times of the slowest thread of each spec, so
// per-spec slowdowns can be computed against solo baselines; DomainJ breaks
// EnergyJ down per meter domain in Result.Domains order.
type Sample struct {
	EnergyJ float64   `json:"energy_j"`
	TimeS   float64   `json:"time_s"`
	PowerW  float64   `json:"power_w"`
	TimeAS  float64   `json:"time_a_s,omitempty"`
	TimeBS  float64   `json:"time_b_s,omitempty"`
	DomainJ []float64 `json:"domain_j,omitempty"`
}

// Result aggregates all repetitions of one configuration: a solo
// (spec, threads, placement) run, or a co-run where ThreadsB threads of
// SpecB share the machine. EDP is the energy-delay product mean(E)·mean(T);
// EDDP (energy·delay²) weights delay harder, as the paper's Pareto analyses
// do.
type Result struct {
	Spec      string          `json:"spec"`
	Component bench.Component `json:"component"`
	Threads   int             `json:"threads"`
	Iters     int             `json:"iters"`
	// Co-run fields; zero for solo runs.
	SpecB      string          `json:"spec_b,omitempty"`
	ComponentB bench.Component `json:"component_b,omitempty"`
	ThreadsB   int             `json:"threads_b,omitempty"`
	ItersB     int             `json:"iters_b,omitempty"`
	Placement  Placement       `json:"placement"`
	Meter      string          `json:"meter"`
	Domains    []string        `json:"domains,omitempty"`
	Samples    []Sample        `json:"samples"`
	EnergyJ    stats.Summary   `json:"energy_j_summary"`
	TimeS      stats.Summary   `json:"time_s_summary"`
	PowerW     stats.Summary   `json:"power_w_summary"`
	// TimeA/TimeB summarize per-spec wall times; only set for co-runs.
	TimeA *stats.Summary `json:"time_a_s_summary,omitempty"`
	TimeB *stats.Summary `json:"time_b_s_summary,omitempty"`
	EDP   float64        `json:"edp_js"`
	EDDP  float64        `json:"eddp_js2"`
}

// IsCoRun reports whether the result measured two specs sharing the machine.
func (r Result) IsCoRun() bool { return r.SpecB != "" }

// Runner executes a Space against an EnergyMeter.
type Runner struct {
	Meter meter.EnergyMeter
	// Log, when non-nil, receives one progress line per configuration.
	Log func(format string, args ...any)
	// pin overrides the thread-pinning syscall in tests; nil means the
	// platform pinThread.
	pin func(cpu int) error
}

func (r *Runner) pinFunc() func(int) error {
	if r.pin != nil {
		return r.pin
	}
	return pinThread
}

// Run sweeps the whole exploration space. Configurations run strictly
// sequentially — concurrent configurations would share the package-level
// energy counters and corrupt each other's deltas. On context cancellation
// the results accumulated so far are returned alongside the context error,
// so long sweeps are resumable via the store.
func (r *Runner) Run(ctx context.Context, space Space) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if r.Meter == nil {
		return nil, fmt.Errorf("harness: no meter configured")
	}
	var results []Result
	runOne := func(specA bench.Spec, specB *bench.Spec, threads int, placement Placement) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := r.runConfig(ctx, space, specA, specB, threads, placement)
		if err != nil {
			name := specA.Name
			if specB != nil {
				name += "+" + specB.Name
			}
			return fmt.Errorf("harness: %s/t%d/%s: %w", name, threads, placement, err)
		}
		results = append(results, res)
		if r.Log != nil {
			label := res.Spec
			if res.IsCoRun() {
				label += "+" + res.SpecB
			}
			r.Log("%-20s threads=%d placement=%-7s E=%.3fJ t=%.4fs P=%.2fW EDP=%.4f",
				label, res.Threads, res.Placement,
				res.EnergyJ.Mean, res.TimeS.Mean, res.PowerW.Mean, res.EDP)
		}
		return nil
	}
	for _, spec := range space.Specs {
		for _, threads := range space.ThreadCounts {
			for _, placement := range space.Placements {
				if err := runOne(spec, nil, threads, placement); err != nil {
					return results, err
				}
			}
		}
	}
	for _, pair := range space.Pairs {
		pair := pair
		for _, threads := range space.ThreadCounts {
			for _, placement := range space.Placements {
				if err := runOne(pair.A, &pair.B, threads, placement); err != nil {
					return results, err
				}
			}
		}
	}
	return results, nil
}

// workUnit is one worker thread's assignment: which kernel to run on which
// workspace, and which spec group (A=0, B=1) its wall time belongs to.
type workUnit struct {
	kernel bench.Kernel
	ws     *bench.Workspace
	iters  int
	group  int
}

func scaleIters(iters int, scale float64) int {
	if scale > 0 {
		iters = int(float64(iters) * scale)
		if iters < 1 {
			iters = 1
		}
	}
	return iters
}

func (r *Runner) runConfig(ctx context.Context, space Space, specA bench.Spec, specB *bench.Spec, threads int, placement Placement) (Result, error) {
	itersA := scaleIters(specA.Iters, space.IterScale)
	res := Result{
		Spec:      specA.Name,
		Component: specA.Component,
		Threads:   threads,
		Iters:     itersA,
		Placement: placement,
		Meter:     r.Meter.Name(),
	}
	for _, d := range r.Meter.Domains() {
		res.Domains = append(res.Domains, d.Name)
	}

	// Per-thread workspaces, distinct seeds so chase cycles differ and
	// threads never share buffers. Co-run units are interleaved A,B,A,B…
	// so compact placement lands each A/B pair on SMT siblings of one core
	// and scatter lands them on distinct physical cores.
	var units []workUnit
	seed := func(i int) uint64 { return uint64(i)*0x9e3779b9 + 12345 }
	if specB == nil {
		for i := 0; i < threads; i++ {
			units = append(units, workUnit{specA.Kernel, bench.NewWorkspace(specA, seed(i)), itersA, 0})
		}
	} else {
		itersB := scaleIters(specB.Iters, space.IterScale)
		res.SpecB = specB.Name
		res.ComponentB = specB.Component
		res.ThreadsB = threads
		res.ItersB = itersB
		for i := 0; i < threads; i++ {
			units = append(units,
				workUnit{specA.Kernel, bench.NewWorkspace(specA, seed(2*i)), itersA, 0},
				workUnit{specB.Kernel, bench.NewWorkspace(*specB, seed(2*i+1)), itersB, 1})
		}
	}
	cpus := cpuAssignment(placement, len(units))

	for rep := 0; rep < space.Warmup+space.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sample, err := r.runOnce(units, cpus, specB != nil)
		if err != nil {
			return res, err
		}
		if rep >= space.Warmup {
			res.Samples = append(res.Samples, sample)
		}
	}

	n := len(res.Samples)
	energies := make([]float64, n)
	times := make([]float64, n)
	powers := make([]float64, n)
	timesA := make([]float64, n)
	timesB := make([]float64, n)
	for i, s := range res.Samples {
		energies[i], times[i], powers[i] = s.EnergyJ, s.TimeS, s.PowerW
		timesA[i], timesB[i] = s.TimeAS, s.TimeBS
	}
	summarize := func(xs []float64) stats.Summary {
		if space.MaxCV > 0 {
			return stats.SummarizeRobust(xs, space.MaxCV, 2)
		}
		return stats.Summarize(xs)
	}
	res.EnergyJ = summarize(energies)
	res.TimeS = summarize(times)
	res.PowerW = summarize(powers)
	if specB != nil {
		ta, tb := summarize(timesA), summarize(timesB)
		res.TimeA, res.TimeB = &ta, &tb
	}
	res.EDP = res.EnergyJ.Mean * res.TimeS.Mean
	res.EDDP = res.EDP * res.TimeS.Mean
	return res, nil
}

// runOnce executes one repetition: all threads start together behind a
// barrier, the meter is read immediately around the parallel section, and
// the sample is energy delta over wall time of the slowest thread. Each
// thread's own wall time is recorded so co-runs can report per-spec times.
func (r *Runner) runOnce(units []workUnit, cpus []int, corun bool) (Sample, error) {
	threads := len(units)
	start := make(chan struct{})
	abort := make(chan struct{})
	var ready, done sync.WaitGroup
	ready.Add(threads)
	done.Add(threads)
	var pinErr atomic.Value
	var sink uint64
	var t0 time.Time
	elapsedPer := make([]float64, threads)
	pin := r.pinFunc()

	for t := 0; t < threads; t++ {
		go func(t int) {
			defer done.Done()
			if cpus != nil {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
				if err := pin(cpus[t]); err != nil {
					pinErr.Store(err)
				}
			}
			ready.Done()
			select {
			case <-start:
			case <-abort:
				return
			}
			u := units[t]
			v := u.kernel(u.ws, u.iters)
			// t0 is written before close(start), so reading it here is
			// ordered by the channel close.
			elapsedPer[t] = time.Since(t0).Seconds()
			atomic.AddUint64(&sink, v)
		}(t)
	}
	ready.Wait()
	before, err := r.Meter.Read()
	if err != nil {
		// Release the parked workers (which hold locked OS threads) before
		// surfacing the error.
		close(abort)
		done.Wait()
		return Sample{}, err
	}
	t0 = time.Now()
	close(start)
	done.Wait()
	elapsed := time.Since(t0).Seconds()
	after, readErr := r.Meter.Read()
	atomic.AddUint64(&bench.Sink, sink)
	// A pin failure invalidates the placement and must not be masked by a
	// meter error on the closing read (or vice versa): join both.
	var errs []error
	if e := pinErr.Load(); e != nil {
		errs = append(errs, e.(error))
	}
	if readErr != nil {
		errs = append(errs, readErr)
	}
	if len(errs) > 0 {
		return Sample{}, errors.Join(errs...)
	}
	domainJ, err := meter.DeltaPerDomain(r.Meter, before, after)
	if err != nil {
		return Sample{}, err
	}
	var energy float64
	for _, j := range domainJ {
		energy += j
	}
	s := Sample{EnergyJ: energy, TimeS: elapsed, DomainJ: domainJ}
	if elapsed > 0 {
		s.PowerW = energy / elapsed
	}
	if corun {
		for t, u := range units {
			if u.group == 0 {
				s.TimeAS = max(s.TimeAS, elapsedPer[t])
			} else {
				s.TimeBS = max(s.TimeBS, elapsedPer[t])
			}
		}
	}
	return s, nil
}
