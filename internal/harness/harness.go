package harness

import (
	"context"
	"fmt"
	"time"

	"energybench/internal/bench"
	"energybench/internal/meter"
	"energybench/internal/perf"
	"energybench/internal/stats"
)

// Pair is a co-run configuration: two heterogeneous specs sharing the
// machine. The harness runs an equal number of threads of each, interleaved
// in placement order so compact puts A/B on SMT siblings of the same core
// and scatter puts them on separate physical cores.
type Pair struct {
	A, B bench.Spec
}

// Space is the exploration space to sweep: the cartesian product of
// (Specs ∪ Pairs), ThreadCounts, and Placements. For a Pair, a thread count
// of n means n threads of each spec (2n total).
//
// Each configuration runs Warmup discarded repetitions, then at least
// MinReps measured ones, stopping early once the running CV of the energy
// samples falls to CVTarget (if positive), and never exceeding MaxReps.
// Reps is the fixed-budget shorthand: when MinReps/MaxReps are zero it
// stands in for both, preserving the original fixed-repetition behavior.
type Space struct {
	Specs        []bench.Spec
	Pairs        []Pair
	ThreadCounts []int
	Placements   []Placement
	Reps         int     // fixed repetitions; shorthand for MinReps = MaxReps = Reps
	MinReps      int     // minimum measured repetitions (0: fall back to Reps)
	MaxReps      int     // repetition hard cap (0: fall back to MinReps)
	CVTarget     float64 // energy-CV convergence target for early stop; 0 disables
	Warmup       int     // discarded warm-up repetitions per configuration
	IterScale    float64
	// MaxCV is the coefficient-of-variation threshold for outlier
	// rejection over the energy samples; 0 disables rejection.
	MaxCV float64
	// Counters, when non-nil, attaches per-thread hardware activity
	// metering to every trial: each worker thread counts the spec'd events
	// around the measured region and the scaled counts ride on the result
	// (internal/perf).
	Counters *perf.Spec
	// SampleInterval, when positive, polls the energy meter (and, with
	// Counters set, the worker perf sessions) on this period during every
	// measured repetition, attaching a time-resolved Series to each sample.
	// 0 disables in-trial sampling.
	SampleInterval time.Duration
}

// repBounds resolves the Reps/MinReps/MaxReps shorthand into the effective
// (min, max) repetition budget.
func (s Space) repBounds() (minReps, maxReps int) {
	minReps = s.MinReps
	if minReps == 0 {
		minReps = s.Reps
	}
	maxReps = s.MaxReps
	if maxReps == 0 {
		maxReps = minReps
	}
	return minReps, maxReps
}

// Validate checks the space is runnable.
func (s Space) Validate() error {
	if len(s.Specs) == 0 && len(s.Pairs) == 0 {
		return fmt.Errorf("harness: space has no specs or pairs")
	}
	for _, sp := range s.Specs {
		if err := sp.Validate(); err != nil {
			return err
		}
	}
	for _, p := range s.Pairs {
		if err := p.A.Validate(); err != nil {
			return err
		}
		if err := p.B.Validate(); err != nil {
			return err
		}
	}
	if len(s.ThreadCounts) == 0 {
		return fmt.Errorf("harness: space has no thread counts")
	}
	for _, t := range s.ThreadCounts {
		if t <= 0 {
			return fmt.Errorf("harness: non-positive thread count %d", t)
		}
	}
	if len(s.Placements) == 0 {
		return fmt.Errorf("harness: space has no placements")
	}
	minReps, maxReps := s.repBounds()
	if minReps <= 0 {
		return fmt.Errorf("harness: min reps must be positive, got %d", minReps)
	}
	if maxReps < minReps {
		return fmt.Errorf("harness: max reps %d below min reps %d", maxReps, minReps)
	}
	if s.CVTarget < 0 {
		return fmt.Errorf("harness: cv target must be non-negative, got %v", s.CVTarget)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("harness: warmup must be non-negative, got %d", s.Warmup)
	}
	if s.Counters != nil {
		if _, err := s.Counters.Normalize(); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	if s.SampleInterval < 0 {
		return fmt.Errorf("harness: sample interval must be non-negative, got %v", s.SampleInterval)
	}
	return nil
}

// Sample is one measured repetition of one configuration. For co-runs,
// TimeAS/TimeBS are the wall times of the slowest thread of each spec, so
// per-spec slowdowns can be computed against solo baselines; DomainJ breaks
// EnergyJ down per meter domain in Result.Domains order.
//
// Two windows are recorded per repetition: TimeS is the wall time of the
// slowest worker thread (the throughput clock), MeterTimeS is the meter's
// own before→after read window (the energy clock). PowerW divides EnergyJ by
// the meter window, since that is the span the energy delta was measured
// over; dividing by the shorter thread window would systematically inflate
// power by the meter's read latency.
type Sample struct {
	EnergyJ    float64   `json:"energy_j"`
	TimeS      float64   `json:"time_s"`
	MeterTimeS float64   `json:"meter_time_s,omitempty"`
	PowerW     float64   `json:"power_w"`
	TimeAS     float64   `json:"time_a_s,omitempty"`
	TimeBS     float64   `json:"time_b_s,omitempty"`
	DomainJ    []float64 `json:"domain_j,omitempty"`
	// Series is the repetition's time-resolved samples; set when the trial
	// ran with a positive SampleInterval. Store schema v3.
	Series *meter.Series `json:"series,omitempty"`
}

// Result aggregates all repetitions of one configuration: a solo
// (spec, threads, placement) run, or a co-run where ThreadsB threads of
// SpecB share the machine. EDP is the energy-delay product mean(E)·mean(T);
// EDDP (energy·delay²) weights delay harder, as the paper's Pareto analyses
// do.
type Result struct {
	Spec      string          `json:"spec"`
	Component bench.Component `json:"component"`
	Threads   int             `json:"threads"`
	Iters     int             `json:"iters"`
	// Co-run fields; zero for solo runs.
	SpecB      string          `json:"spec_b,omitempty"`
	ComponentB bench.Component `json:"component_b,omitempty"`
	ThreadsB   int             `json:"threads_b,omitempty"`
	ItersB     int             `json:"iters_b,omitempty"`
	Placement  Placement       `json:"placement"`
	Meter      string          `json:"meter"`
	Domains    []string        `json:"domains,omitempty"`
	// Converged is set when adaptive repetitions stopped early because the
	// energy CV reached the trial's target before the rep cap.
	Converged bool          `json:"converged,omitempty"`
	Samples   []Sample      `json:"samples"`
	EnergyJ   stats.Summary `json:"energy_j_summary"`
	TimeS     stats.Summary `json:"time_s_summary"`
	PowerW    stats.Summary `json:"power_w_summary"`
	// TimeA/TimeB summarize per-spec wall times; only set for co-runs.
	TimeA *stats.Summary `json:"time_a_s_summary,omitempty"`
	TimeB *stats.Summary `json:"time_b_s_summary,omitempty"`
	EDP   float64        `json:"edp_js"`
	EDDP  float64        `json:"eddp_js2"`
	// Counters is the measured activity vector (scaled hardware event
	// counts, aggregated over measured repetitions); set when the trial
	// carried a counter spec. Store schema v2.
	Counters *Counters `json:"counters,omitempty"`
	// SampleInterval is the in-trial sampling period the trial ran with;
	// 0 when sampling was off. The per-rep series live on the samples.
	// Store schema v3.
	SampleInterval time.Duration `json:"sample_interval_ns,omitempty"`
	// Workload names the external workload this result measured; empty for
	// kernel results (keys and stores are then byte-identical to earlier
	// builds). WorkloadComponents echoes the workload's declared per-thread
	// activity mix, so model validation can rebuild the nominal activity
	// vector from the store alone. Store schema v5.
	Workload           string                      `json:"workload,omitempty"`
	WorkloadComponents map[bench.Component]float64 `json:"workload_components,omitempty"`
	// Host and Microarch identify the machine that executed the trial.
	// They are empty for single-host runs (keys and stores are then
	// byte-identical to earlier builds) and stamped by the fleet
	// coordinator when merging results from remote agents, making the
	// store key three-dimensional: (host, microarch, configuration).
	// Store schema v4.
	Host      string `json:"host,omitempty"`
	Microarch string `json:"microarch,omitempty"`
}

// IsCoRun reports whether the result measured two specs sharing the machine.
func (r Result) IsCoRun() bool { return r.SpecB != "" }

// Runner orchestrates the pipeline: plan a Space, execute each trial, and
// stream results through sinks.
type Runner struct {
	// Meter backs the default in-process executor; ignored when Executor is
	// set explicitly.
	Meter meter.EnergyMeter
	// Executor runs trials; nil means an InProcess executor over Meter.
	Executor Executor
	// Log, when non-nil, receives one progress line per completed trial.
	Log func(format string, args ...any)
	// pin overrides the thread-pinning syscall in tests; nil means the
	// platform pinThread. Forwarded to the default in-process executor.
	pin func(cpu int) error
}

func (r *Runner) executor() (Executor, error) {
	if r.Executor != nil {
		return r.Executor, nil
	}
	if r.Meter == nil {
		return nil, fmt.Errorf("harness: no meter configured")
	}
	return &InProcess{Meter: r.Meter, pin: r.pin}, nil
}

// Run plans and sweeps the whole exploration space, collecting the results
// in memory. On context cancellation the results accumulated so far are
// returned alongside the context error. Callers that want streaming (store
// flushes per trial, partial JSON output) should use RunPlan with explicit
// sinks instead.
func (r *Runner) Run(ctx context.Context, space Space) ([]Result, error) {
	trials, err := Plan(space)
	if err != nil {
		return nil, err
	}
	var c Collector
	err = r.RunPlan(ctx, trials, &c)
	return c.Results, err
}

// RunPlan executes the trials strictly sequentially — concurrent trials
// would share the machine's energy counters and corrupt each other's deltas
// — streaming each completed result into sink before the next trial starts,
// so an interrupted sweep loses nothing that finished. The caller owns
// closing the sink. A nil sink discards results.
func (r *Runner) RunPlan(ctx context.Context, trials []Trial, sink ResultSink) error {
	exec, err := r.executor()
	if err != nil {
		return err
	}
	if sink == nil {
		sink = SinkFunc(func(Result) error { return nil })
	}
	for i, t := range trials {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := exec.Execute(ctx, t)
		if err != nil {
			return fmt.Errorf("harness: %s/t%d/%s: %w", t.Name(), t.Threads, t.Placement, err)
		}
		if err := sink.Consume(res); err != nil {
			return fmt.Errorf("harness: sink: %w", err)
		}
		if r.Log != nil {
			logTrialResult(r.Log, i+1, len(trials), res)
		}
	}
	return nil
}

// logTrialResult emits the one-line progress record shared by the serial
// Runner and the parallel Scheduler, so both sweep modes produce
// identically shaped progress output.
func logTrialResult(log func(format string, args ...any), finished, total int, res Result) {
	label := res.Spec
	if res.IsCoRun() {
		label += "+" + res.SpecB
	}
	conv := ""
	if res.Converged {
		conv = " (converged)"
	}
	log("[%d/%d] %-20s threads=%d placement=%-7s reps=%d%s E=%.3fJ t=%.4fs P=%.2fW EDP=%.4f",
		finished, total, label, res.Threads, res.Placement, len(res.Samples), conv,
		res.EnergyJ.Mean, res.TimeS.Mean, res.PowerW.Mean, res.EDP)
}
