// Package harness expands an exploration space (benchmark specs × thread
// counts × placements), executes each configuration with warm-up and
// repetitions, and aggregates energy/time/power/EDP with internal/stats.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"energybench/internal/bench"
	"energybench/internal/meter"
	"energybench/internal/stats"
)

// Space is the exploration space to sweep: the cartesian product of Specs,
// ThreadCounts, and Placements, each run Warmup+Reps times.
type Space struct {
	Specs        []bench.Spec
	ThreadCounts []int
	Placements   []Placement
	Reps         int // measured repetitions per configuration
	Warmup       int // discarded warm-up repetitions per configuration
	IterScale    float64
	// MaxCV is the coefficient-of-variation threshold for outlier
	// rejection over the energy samples; 0 disables rejection.
	MaxCV float64
}

// Validate checks the space is runnable.
func (s Space) Validate() error {
	if len(s.Specs) == 0 {
		return fmt.Errorf("harness: space has no specs")
	}
	for _, sp := range s.Specs {
		if err := sp.Validate(); err != nil {
			return err
		}
	}
	if len(s.ThreadCounts) == 0 {
		return fmt.Errorf("harness: space has no thread counts")
	}
	for _, t := range s.ThreadCounts {
		if t <= 0 {
			return fmt.Errorf("harness: non-positive thread count %d", t)
		}
	}
	if len(s.Placements) == 0 {
		return fmt.Errorf("harness: space has no placements")
	}
	if s.Reps <= 0 {
		return fmt.Errorf("harness: reps must be positive, got %d", s.Reps)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("harness: warmup must be non-negative, got %d", s.Warmup)
	}
	return nil
}

// Sample is one measured repetition of one configuration.
type Sample struct {
	EnergyJ float64 `json:"energy_j"`
	TimeS   float64 `json:"time_s"`
	PowerW  float64 `json:"power_w"`
}

// Result aggregates all repetitions of one (spec, threads, placement)
// configuration. EDP is the energy-delay product mean(E)·mean(T); EDDP
// (energy·delay²) weights delay harder, as the paper's Pareto analyses do.
type Result struct {
	Spec      string          `json:"spec"`
	Component bench.Component `json:"component"`
	Threads   int             `json:"threads"`
	Placement Placement       `json:"placement"`
	Meter     string          `json:"meter"`
	Iters     int             `json:"iters"`
	Samples   []Sample        `json:"samples"`
	EnergyJ   stats.Summary   `json:"energy_j_summary"`
	TimeS     stats.Summary   `json:"time_s_summary"`
	PowerW    stats.Summary   `json:"power_w_summary"`
	EDP       float64         `json:"edp_js"`
	EDDP      float64         `json:"eddp_js2"`
}

// Runner executes a Space against an EnergyMeter.
type Runner struct {
	Meter meter.EnergyMeter
	// Log, when non-nil, receives one progress line per configuration.
	Log func(format string, args ...any)
}

// Run sweeps the whole exploration space. Configurations run strictly
// sequentially — concurrent configurations would share the package-level
// energy counters and corrupt each other's deltas.
func (r *Runner) Run(ctx context.Context, space Space) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if r.Meter == nil {
		return nil, fmt.Errorf("harness: no meter configured")
	}
	var results []Result
	for _, spec := range space.Specs {
		for _, threads := range space.ThreadCounts {
			for _, placement := range space.Placements {
				if err := ctx.Err(); err != nil {
					return results, err
				}
				res, err := r.runConfig(ctx, space, spec, threads, placement)
				if err != nil {
					return results, fmt.Errorf("harness: %s/t%d/%s: %w", spec.Name, threads, placement, err)
				}
				results = append(results, res)
				if r.Log != nil {
					r.Log("%-12s threads=%d placement=%-7s E=%.3fJ t=%.4fs P=%.2fW EDP=%.4f",
						res.Spec, res.Threads, res.Placement,
						res.EnergyJ.Mean, res.TimeS.Mean, res.PowerW.Mean, res.EDP)
				}
			}
		}
	}
	return results, nil
}

func (r *Runner) runConfig(ctx context.Context, space Space, spec bench.Spec, threads int, placement Placement) (Result, error) {
	iters := spec.Iters
	if space.IterScale > 0 {
		iters = int(float64(iters) * space.IterScale)
		if iters < 1 {
			iters = 1
		}
	}
	// Per-thread workspaces, distinct seeds so chase cycles differ and
	// threads never share buffers.
	workspaces := make([]*bench.Workspace, threads)
	for i := range workspaces {
		workspaces[i] = bench.NewWorkspace(spec, uint64(i)*0x9e3779b9+12345)
	}
	cpus := cpuAssignment(placement, threads)

	res := Result{
		Spec:      spec.Name,
		Component: spec.Component,
		Threads:   threads,
		Placement: placement,
		Meter:     r.Meter.Name(),
		Iters:     iters,
	}
	for rep := 0; rep < space.Warmup+space.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sample, err := r.runOnce(spec, workspaces, cpus, iters)
		if err != nil {
			return res, err
		}
		if rep >= space.Warmup {
			res.Samples = append(res.Samples, sample)
		}
	}

	energies := make([]float64, len(res.Samples))
	times := make([]float64, len(res.Samples))
	powers := make([]float64, len(res.Samples))
	for i, s := range res.Samples {
		energies[i], times[i], powers[i] = s.EnergyJ, s.TimeS, s.PowerW
	}
	if space.MaxCV > 0 {
		res.EnergyJ = stats.SummarizeRobust(energies, space.MaxCV, 2)
		res.TimeS = stats.SummarizeRobust(times, space.MaxCV, 2)
		res.PowerW = stats.SummarizeRobust(powers, space.MaxCV, 2)
	} else {
		res.EnergyJ = stats.Summarize(energies)
		res.TimeS = stats.Summarize(times)
		res.PowerW = stats.Summarize(powers)
	}
	res.EDP = res.EnergyJ.Mean * res.TimeS.Mean
	res.EDDP = res.EDP * res.TimeS.Mean
	return res, nil
}

// runOnce executes one repetition: all threads start together behind a
// barrier, the meter is read immediately around the parallel section, and
// the sample is energy delta over wall time of the slowest thread.
func (r *Runner) runOnce(spec bench.Spec, workspaces []*bench.Workspace, cpus []int, iters int) (Sample, error) {
	threads := len(workspaces)
	start := make(chan struct{})
	abort := make(chan struct{})
	var ready, done sync.WaitGroup
	ready.Add(threads)
	done.Add(threads)
	var pinErr atomic.Value
	var sink uint64

	for t := 0; t < threads; t++ {
		go func(t int) {
			defer done.Done()
			if cpus != nil {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
				if err := pinThread(cpus[t]); err != nil {
					pinErr.Store(err)
				}
			}
			ready.Done()
			select {
			case <-start:
			case <-abort:
				return
			}
			v := spec.Kernel(workspaces[t], iters)
			atomic.AddUint64(&sink, v)
		}(t)
	}
	ready.Wait()
	before, err := r.Meter.Read()
	if err != nil {
		// Release the parked workers (which hold locked OS threads) before
		// surfacing the error.
		close(abort)
		done.Wait()
		return Sample{}, err
	}
	t0 := time.Now()
	close(start)
	done.Wait()
	elapsed := time.Since(t0).Seconds()
	after, err := r.Meter.Read()
	if err != nil {
		return Sample{}, err
	}
	atomic.AddUint64(&bench.Sink, sink)
	if e := pinErr.Load(); e != nil {
		return Sample{}, e.(error)
	}
	energy, err := meter.Delta(r.Meter, before, after)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{EnergyJ: energy, TimeS: elapsed}
	if elapsed > 0 {
		s.PowerW = energy / elapsed
	}
	return s, nil
}
