package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"energybench/internal/bench"
	"energybench/internal/meter"
)

func tinySpace(t *testing.T) Space {
	t.Helper()
	specs := []bench.Spec{
		{Name: "tiny-int", Component: bench.CompIntALU, Iters: 2000, Kernel: bench.KernelIntALU},
		{Name: "tiny-chase", Component: bench.CompL1, WorkingSet: 4096, Iters: 2000, Kernel: bench.KernelChase},
	}
	return Space{
		Specs:        specs,
		ThreadCounts: []int{1, 2},
		Placements:   []Placement{PlaceNone},
		Reps:         3,
		Warmup:       1,
	}
}

func TestRunnerSweepsFullSpace(t *testing.T) {
	r := &Runner{Meter: meter.NewMock(42)}
	results, err := r.Run(context.Background(), tinySpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 { // 2 specs × 2 thread counts × 1 placement
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, res := range results {
		if len(res.Samples) != 3 {
			t.Errorf("%s/t%d: %d samples, want 3 (warmup must be discarded)", res.Spec, res.Threads, len(res.Samples))
		}
		if res.TimeS.Mean <= 0 {
			t.Errorf("%s/t%d: non-positive mean time %v", res.Spec, res.Threads, res.TimeS.Mean)
		}
		if res.EnergyJ.Mean < 0 {
			t.Errorf("%s/t%d: negative mean energy %v", res.Spec, res.Threads, res.EnergyJ.Mean)
		}
		if res.EDP != res.EnergyJ.Mean*res.TimeS.Mean {
			t.Errorf("%s/t%d: EDP %v != mean(E)·mean(T) %v", res.Spec, res.Threads, res.EDP, res.EnergyJ.Mean*res.TimeS.Mean)
		}
		if res.Meter != "mock" {
			t.Errorf("%s/t%d: meter = %q, want mock", res.Spec, res.Threads, res.Meter)
		}
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Meter: meter.NewMock(42)}
	if _, err := r.Run(ctx, tinySpace(t)); err == nil {
		t.Error("want context error from cancelled run, got nil")
	}
}

func TestSpaceValidate(t *testing.T) {
	good := tinySpace(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Space)
	}{
		{"no-specs", func(s *Space) { s.Specs = nil }},
		{"no-threads", func(s *Space) { s.ThreadCounts = nil }},
		{"zero-threads", func(s *Space) { s.ThreadCounts = []int{0} }},
		{"no-placements", func(s *Space) { s.Placements = nil }},
		{"zero-reps", func(s *Space) { s.Reps = 0 }},
		{"negative-warmup", func(s *Space) { s.Warmup = -1 }},
		{"invalid-spec", func(s *Space) { s.Specs = []bench.Spec{{Name: "broken"}} }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			s := tinySpace(t)
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid space accepted")
			}
		})
	}
}

func TestRunnerIterScale(t *testing.T) {
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	space.IterScale = 0.5
	r := &Runner{Meter: meter.NewMock(42)}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Iters != 1000 {
		t.Errorf("Iters = %d, want 1000 after 0.5 scale of 2000", results[0].Iters)
	}
}

// failingMeter errors on every Read, exercising the harness error path.
type failingMeter struct{}

func (failingMeter) Name() string            { return "failing" }
func (failingMeter) Domains() []meter.Domain { return []meter.Domain{{Name: "d"}} }
func (failingMeter) Read() (meter.Reading, error) {
	return meter.Reading{}, errors.New("meter read failed")
}

// TestRunnerMeterFailureReleasesWorkers is a regression test: a meter read
// error must surface as an error AND unpark the worker goroutines (which
// hold locked OS threads) rather than leaking them on the start barrier.
func TestRunnerMeterFailureReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	space := tinySpace(t)
	space.ThreadCounts = []int{4}
	r := &Runner{Meter: failingMeter{}}
	if _, err := r.Run(context.Background(), space); err == nil {
		t.Fatal("want error from failing meter, got nil")
	}
	// Workers exit asynchronously after done.Wait; give the scheduler a
	// few chances before declaring a leak.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunnerCoRunPairs checks a paired configuration runs both specs
// concurrently and reports per-spec wall times alongside the shared energy.
func TestRunnerCoRunPairs(t *testing.T) {
	specs := tinySpace(t).Specs
	space := Space{
		Pairs:        []Pair{{A: specs[0], B: specs[1]}},
		ThreadCounts: []int{1, 2},
		Placements:   []Placement{PlaceNone},
		Reps:         2,
		Warmup:       0,
	}
	r := &Runner{Meter: meter.NewMock(42)}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 { // 1 pair × 2 thread counts × 1 placement
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, res := range results {
		if !res.IsCoRun() {
			t.Fatalf("co-run result not flagged: %+v", res)
		}
		if res.Spec != "tiny-int" || res.SpecB != "tiny-chase" {
			t.Errorf("specs = %q+%q, want tiny-int+tiny-chase", res.Spec, res.SpecB)
		}
		if res.ThreadsB != res.Threads {
			t.Errorf("threads_b = %d, want %d", res.ThreadsB, res.Threads)
		}
		if res.TimeA == nil || res.TimeB == nil {
			t.Fatalf("co-run result missing per-spec time summaries")
		}
		if res.TimeA.Mean <= 0 || res.TimeB.Mean <= 0 {
			t.Errorf("per-spec times = %v/%v, want both positive", res.TimeA.Mean, res.TimeB.Mean)
		}
		for _, s := range res.Samples {
			if s.TimeAS <= 0 || s.TimeBS <= 0 {
				t.Errorf("sample per-spec times = %v/%v, want both positive", s.TimeAS, s.TimeBS)
			}
			if s.TimeS < s.TimeAS && s.TimeS < s.TimeBS {
				t.Errorf("overall time %v below both per-spec times %v/%v", s.TimeS, s.TimeAS, s.TimeBS)
			}
		}
		if len(res.Domains) == 0 {
			t.Error("result missing meter domain names")
		}
	}
	// Solo results must not carry co-run summaries.
	solo, err := r.Run(context.Background(), tinySpace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range solo {
		if res.IsCoRun() || res.TimeA != nil || res.TimeB != nil {
			t.Errorf("solo result carries co-run fields: %+v", res)
		}
	}
}

func TestSpaceValidateCoRun(t *testing.T) {
	specs := tinySpace(t).Specs
	good := Space{Pairs: []Pair{{A: specs[0], B: specs[1]}}, ThreadCounts: []int{1}, Placements: []Placement{PlaceNone}, Reps: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid pair-only space rejected: %v", err)
	}
	bad := good
	bad.Pairs = []Pair{{A: specs[0], B: bench.Spec{Name: "broken"}}}
	if err := bad.Validate(); err == nil {
		t.Error("space with invalid pair member accepted")
	}
}

// TestRunnerMidSweepCancellation cancels after the first configuration
// completes: the sweep must return the partial results with the context
// error, and must not leak the worker goroutines holding locked OS threads.
func TestRunnerMidSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{
		Meter: meter.NewMock(42),
		// Stub the pin syscall so PlaceCompact (which locks OS threads)
		// works in any sandbox; the locking path is what we exercise.
		pin: func(int) error { return nil },
	}
	r.Log = func(string, ...any) { cancel() }
	space := tinySpace(t)
	space.Placements = []Placement{PlaceCompact}
	results, err := r.Run(ctx, space)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 {
		t.Fatal("mid-sweep cancellation dropped the completed partial results")
	}
	if len(results) >= 4 {
		t.Fatalf("got all %d results despite cancellation after the first", len(results))
	}
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after cancellation: %d before, %d after", before, runtime.NumGoroutine())
}

// secondReadFailsMeter succeeds on the opening read and fails on the closing
// one, modelling a meter that dies mid-measurement.
type secondReadFailsMeter struct {
	inner meter.EnergyMeter
	reads int
}

func (m *secondReadFailsMeter) Name() string            { return m.inner.Name() }
func (m *secondReadFailsMeter) Domains() []meter.Domain { return m.inner.Domains() }
func (m *secondReadFailsMeter) Read() (meter.Reading, error) {
	m.reads++
	if m.reads%2 == 0 {
		return meter.Reading{}, errors.New("closing read failed")
	}
	return m.inner.Read()
}

// TestRunnerPinErrorNotMaskedByReadError is a regression test: when both the
// thread pin and the closing meter read fail, the returned error must carry
// both — the pin error used to be dropped.
func TestRunnerPinErrorNotMaskedByReadError(t *testing.T) {
	pinFailure := errors.New("pin failed")
	r := &Runner{
		Meter: &secondReadFailsMeter{inner: meter.NewMock(42)},
		pin:   func(int) error { return pinFailure },
	}
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{2}
	space.Placements = []Placement{PlaceCompact}
	space.Warmup = 0
	_, err := r.Run(context.Background(), space)
	if err == nil {
		t.Fatal("want error, got nil")
	}
	if !errors.Is(err, pinFailure) {
		t.Errorf("pin error dropped from %v", err)
	}
	if !strings.Contains(err.Error(), "closing read failed") {
		t.Errorf("meter read error dropped from %v", err)
	}
}

func TestParsePlacement(t *testing.T) {
	for _, ok := range []string{"none", "compact", "scatter"} {
		if _, err := ParsePlacement(ok); err != nil {
			t.Errorf("ParsePlacement(%q) = %v", ok, err)
		}
	}
	if _, err := ParsePlacement("diagonal"); err == nil {
		t.Error("want error for unknown placement")
	}
}

func TestParseCPUList(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0,2,4", []int{0, 2, 4}, false},
		{"0-1,8,10-11", []int{0, 1, 8, 10, 11}, false},
		{"7", []int{7}, false},
		{"3-1", nil, true},
		{"x", nil, true},
	}
	for _, tc := range tests {
		got, err := parseCPUList(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseCPUList(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCPUList(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestCPUAssignmentPolicies(t *testing.T) {
	if got := cpuAssignment(PlaceNone, 4); got != nil {
		t.Errorf("PlaceNone assignment = %v, want nil", got)
	}
	for _, p := range []Placement{PlaceCompact, PlaceScatter} {
		got := cpuAssignment(p, 3)
		if len(got) != 3 {
			t.Errorf("%s: assignment length = %d, want 3", p, len(got))
		}
		for _, cpu := range got {
			if cpu < 0 {
				t.Errorf("%s: negative CPU id %d", p, cpu)
			}
		}
	}
}

// TestSysfsCoreGroupsRespectsOnlineList checks topology discovery walks the
// sysfs online CPU list (which can be sparse under cpusets) rather than
// assuming dense ids, and degrades to nil on malformed trees.
func TestSysfsCoreGroupsRespectsOnlineList(t *testing.T) {
	root := t.TempDir()
	writeFile := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// CPU 0 online and always in the affinity mask; its core has only
	// itself as sibling.
	writeFile("online", "0\n")
	writeFile("cpu0/topology/thread_siblings_list", "0\n")
	groups := sysfsCoreGroups(root)
	if !reflect.DeepEqual(groups, [][]int{{0}}) {
		t.Errorf("groups = %v, want [[0]]", groups)
	}

	// Missing topology file for a listed CPU → give up (nil), triggering
	// the dense fallback in coreGroups.
	bare := t.TempDir()
	if err := os.WriteFile(filepath.Join(bare, "online"), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := sysfsCoreGroups(bare); got != nil {
		t.Errorf("groups = %v, want nil for incomplete topology", got)
	}
}

func TestOnlineCPUsFallsBackWithoutOnlineFile(t *testing.T) {
	cpus := onlineCPUs(t.TempDir())
	if len(cpus) != runtime.NumCPU() {
		t.Fatalf("got %d cpus, want %d", len(cpus), runtime.NumCPU())
	}
	for i, c := range cpus {
		if c != i {
			t.Errorf("cpus[%d] = %d, want dense ids", i, c)
		}
	}
}

// TestCPUAssignmentWithSyntheticTopology checks that compact fills SMT
// siblings first while scatter spreads across physical cores, using a fake
// 2-core/4-thread topology (cores {0,2} and {1,3}).
func TestCPUAssignmentWithSyntheticTopology(t *testing.T) {
	cores := [][]int{{0, 2}, {1, 3}}
	compact := assignFromGroups(PlaceCompact, 4, cores)
	if !reflect.DeepEqual(compact, []int{0, 2, 1, 3}) {
		t.Errorf("compact = %v, want [0 2 1 3]", compact)
	}
	scatter := assignFromGroups(PlaceScatter, 4, cores)
	if !reflect.DeepEqual(scatter, []int{0, 1, 2, 3}) {
		t.Errorf("scatter = %v, want [0 1 2 3]", scatter)
	}
	wrap := assignFromGroups(PlaceScatter, 5, cores)
	if wrap[4] != 0 {
		t.Errorf("assignment must wrap around: got %v", wrap)
	}
}
