package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"energybench/internal/bench"
)

// fakeGroups simulates a 4-core/8-CPU SMT machine for scheduler tests.
func fakeGroups() [][]int {
	return [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
}

// recordingExecutor is a fake Executor that tracks, under its own lock, how
// many in-flight trials hold each CPU (read from the assignment the
// scheduler stamped into Trial.CPUs) and how many run concurrently overall.
// Run under -race it doubles as a memory-model check on the scheduler's
// lease table and fan-in.
type recordingExecutor struct {
	hold time.Duration
	fail func(t Trial) error

	mu          sync.Mutex
	perCPU      map[int]int
	active      int
	maxActive   int
	overlapped  bool
	partialPair bool
	pinnedRuns  [][]int // every pinned trial's assignment, in start order
}

func newRecordingExecutor(hold time.Duration) *recordingExecutor {
	return &recordingExecutor{hold: hold, perCPU: map[int]int{}}
}

func (e *recordingExecutor) Execute(ctx context.Context, t Trial) (Result, error) {
	cpus := uniqueCPUs(t.CPUs)
	e.mu.Lock()
	e.active++
	if e.active > e.maxActive {
		e.maxActive = e.active
	}
	if t.CPUs != nil {
		e.pinnedRuns = append(e.pinnedRuns, append([]int(nil), t.CPUs...))
	}
	for _, c := range cpus {
		e.perCPU[c]++
		if e.perCPU[c] > 1 {
			e.overlapped = true
		}
	}
	// For a co-run trial the whole interleaved set must appear at once: if
	// any of its CPUs is held without the others, the lease wasn't atomic.
	if t.IsCoRun() {
		for _, c := range cpus {
			if e.perCPU[c] != 1 {
				e.partialPair = true
			}
		}
	}
	e.mu.Unlock()

	time.Sleep(e.hold)

	e.mu.Lock()
	for _, c := range cpus {
		e.perCPU[c]--
	}
	e.active--
	e.mu.Unlock()

	if e.fail != nil {
		if err := e.fail(t); err != nil {
			return Result{}, err
		}
	}
	res := Result{Spec: t.Spec.Name, Threads: t.Threads, Placement: t.Placement, Iters: t.Iters, Meter: "fake"}
	if t.SpecB != nil {
		res.SpecB = t.SpecB.Name
		res.ThreadsB = t.Threads
		res.ItersB = t.ItersB
	}
	return res, nil
}

func schedTrial(seq int, name string, threads int, p Placement) Trial {
	return Trial{
		Seq: seq, Spec: bench.Spec{Name: name}, Threads: threads,
		Placement: p, Iters: 100, MinReps: 1, MaxReps: 1,
	}
}

func schedCoRunTrial(seq int, a, b string, threads int, p Placement) Trial {
	t := schedTrial(seq, a, threads, p)
	specB := bench.Spec{Name: b}
	t.SpecB = &specB
	t.ItersB = 100
	return t
}

// TestSchedulerNeverOverlapsLeasedCPUs is the lease-table stress test: many
// pinned trials competing for a small fake topology, high parallelism, run
// under -race. No two in-flight trials may hold the same CPU, yet pinned
// trials must genuinely overlap in time (the allocator re-walks the
// placement over free cores instead of always starting from CPU 0).
func TestSchedulerNeverOverlapsLeasedCPUs(t *testing.T) {
	var trials []Trial
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0:
			trials = append(trials, schedTrial(i, fmt.Sprintf("compact-%d", i), 2, PlaceCompact))
		case 1:
			trials = append(trials, schedTrial(i, fmt.Sprintf("scatter-%d", i), 2, PlaceScatter))
		case 2:
			trials = append(trials, schedTrial(i, fmt.Sprintf("compact-wide-%d", i), 4, PlaceCompact))
		case 3:
			trials = append(trials, schedTrial(i, fmt.Sprintf("none-%d", i), 1, PlaceNone))
		}
	}
	exec := newRecordingExecutor(time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 8, groups: fakeGroups()}
	var c Collector
	if err := s.RunPlan(context.Background(), trials, &c); err != nil {
		t.Fatal(err)
	}
	if exec.overlapped {
		t.Error("two concurrent trials held the same CPU: the lease table failed")
	}
	if len(c.Results) != len(trials) {
		t.Errorf("sink saw %d results, want %d", len(c.Results), len(trials))
	}
	if exec.maxActive < 2 {
		t.Errorf("max concurrency %d; the scheduler never actually overlapped trials", exec.maxActive)
	}
	if exec.maxActive > 8 {
		t.Errorf("max concurrency %d exceeds Parallel=8", exec.maxActive)
	}
}

// TestSchedulerParallelizesPinnedTrials pins down the allocator's whole
// point: two compact 2-thread trials fit on different cores of the 4-core
// fake machine, so they must at some point run at the same time — and on
// disjoint CPU sets.
func TestSchedulerParallelizesPinnedTrials(t *testing.T) {
	var trials []Trial
	for i := 0; i < 12; i++ {
		trials = append(trials, schedTrial(i, fmt.Sprintf("compact-%d", i), 2, PlaceCompact))
	}
	exec := newRecordingExecutor(2 * time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 4, groups: fakeGroups()}
	if err := s.RunPlan(context.Background(), trials, nil); err != nil {
		t.Fatal(err)
	}
	if exec.overlapped {
		t.Error("concurrent pinned trials shared a CPU")
	}
	if exec.maxActive < 2 {
		t.Errorf("max concurrency %d: pinned trials never ran in parallel — allocation is still serializing on a shared first CPU", exec.maxActive)
	}
	// Every compact 2-thread assignment must be one core's SMT sibling
	// pair, whichever core was free — placement semantics survive
	// concurrent allocation.
	for _, cpus := range exec.pinnedRuns {
		if len(cpus) != 2 || cpus[0]/2 != cpus[1]/2 {
			t.Errorf("compact trial ran on %v, want both SMT siblings of one core", cpus)
		}
	}
}

// TestSchedulerCoRunLeasesAtomically verifies a co-run pair's interleaved
// A/B CPU set is acquired in one atomic step: solo trials hammering the
// same cores never observe a half-leased pair.
func TestSchedulerCoRunLeasesAtomically(t *testing.T) {
	var trials []Trial
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			// 2 threads of each spec → compact needs two full cores.
			trials = append(trials, schedCoRunTrial(i, "a", "b", 2, PlaceCompact))
		} else {
			trials = append(trials, schedTrial(i, fmt.Sprintf("solo-%d", i), 2, PlaceCompact))
		}
	}
	exec := newRecordingExecutor(time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 6, groups: fakeGroups()}
	if err := s.RunPlan(context.Background(), trials, nil); err != nil {
		t.Fatal(err)
	}
	if exec.overlapped {
		t.Error("co-run CPUs overlapped with another trial")
	}
	if exec.partialPair {
		t.Error("a co-run trial observed its own pair half-leased: acquisition was not atomic")
	}
}

// TestSchedulerOversubscribedTrialFailsFast: a pinned trial wanting more
// threads than the machine has CPUs can never be allocated from the lease
// table; it must be rejected as a *TrialError before dispatch while the
// rest of the sweep proceeds (a co-run pair counts both specs' threads).
func TestSchedulerOversubscribedTrialFailsFast(t *testing.T) {
	trials := []Trial{
		schedTrial(0, "wide", 16, PlaceCompact),           // 16 units on 8 CPUs
		schedCoRunTrial(1, "a", "b", 5, PlaceScatter),     // 10 interleaved units on 8 CPUs
		schedTrial(2, "narrow", 1, PlaceScatter),          // fits
		schedTrial(3, "unpinned-wide", 16, PlaceNone),     // unpinned: leases nothing, runs
		schedTrial(4, "exactly-machine", 8, PlaceCompact), // fits exactly
	}
	exec := newRecordingExecutor(time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 4, groups: fakeGroups()}
	var c Collector
	err := s.RunPlan(context.Background(), trials, &c)
	if err == nil {
		t.Fatal("want *TrialError for the oversubscribed trials")
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error %v does not unwrap to a *TrialError", err)
	}
	if !strings.Contains(err.Error(), "wide") || !strings.Contains(err.Error(), "never be scheduled") {
		t.Errorf("error %q should name the unschedulable trial and say why", err)
	}
	// Both pinned oversized trials are rejected, nothing else.
	rejected := map[string]bool{}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			var t2 *TrialError
			if errors.As(e, &t2) {
				rejected[t2.Trial.Spec.Name] = true
			}
		}
	} else {
		var t2 *TrialError
		if errors.As(err, &t2) {
			rejected[t2.Trial.Spec.Name] = true
		}
	}
	if len(rejected) != 2 || !rejected["wide"] || !rejected["a"] {
		t.Errorf("rejected trials = %v, want exactly wide and the a+b co-run", rejected)
	}
	if len(c.Results) != 3 {
		t.Fatalf("sink saw %d results, want 3 — the runnable trials must still sweep", len(c.Results))
	}
	if exec.overlapped {
		t.Error("concurrent trials shared CPUs")
	}
}

// TestSchedulerContinuesPastCrashingTrial is the durability half of the
// tentpole: a subprocess worker killed mid-trial must surface as a
// *TrialError for that trial only, with every other trial measured and in
// the sink.
func TestSchedulerContinuesPastCrashingTrial(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	sub := &Subprocess{
		Binary: "/bin/sh",
		// The worker SIGKILLs itself when the serialized trial names the
		// crashing spec — a faithful stand-in for `kill -9` of one child.
		Args: []string{"-c", `in=$(cat); case "$in" in *crash-me*) kill -9 $$;; esac; echo '{"v":1,"result":{"spec":"ok","meter":"fake"}}'`},
	}
	trials := []Trial{
		schedTrial(0, "fine-1", 1, PlaceNone),
		schedTrial(1, "crash-me", 1, PlaceNone),
		schedTrial(2, "fine-2", 1, PlaceNone),
		schedTrial(3, "fine-3", 1, PlaceNone),
	}
	var c Collector
	s := &Scheduler{Executor: sub, Parallel: 2}
	err := s.RunPlan(context.Background(), trials, &c)
	if err == nil {
		t.Fatal("want an error reporting the crashed trial")
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error %v does not unwrap to a *TrialError", err)
	}
	if te.Trial.Spec.Name != "crash-me" {
		t.Errorf("TrialError names trial %q, want crash-me", te.Trial.Spec.Name)
	}
	if !strings.Contains(err.Error(), "worker crashed") {
		t.Errorf("error %q should identify the worker crash", err)
	}
	if len(c.Results) != 3 {
		t.Errorf("sink saw %d results, want 3 — exactly the crashed trial lost", len(c.Results))
	}
}

// TestSchedulerFakeExecutorErrorsDontStopSweep checks the same per-trial
// error tolerance without processes, so it runs everywhere (and under -race
// exercises the error fan-in).
func TestSchedulerFakeExecutorErrorsDontStopSweep(t *testing.T) {
	var trials []Trial
	for i := 0; i < 12; i++ {
		trials = append(trials, schedTrial(i, fmt.Sprintf("s%d", i), 1, PlaceNone))
	}
	exec := newRecordingExecutor(0)
	exec.fail = func(tr Trial) error {
		if tr.Seq%4 == 1 {
			return fmt.Errorf("injected failure for %s", tr.Spec.Name)
		}
		return nil
	}
	var c Collector
	s := &Scheduler{Executor: exec, Parallel: 4, groups: fakeGroups()}
	err := s.RunPlan(context.Background(), trials, &c)
	if err == nil {
		t.Fatal("want joined trial errors")
	}
	if len(c.Results) != 9 {
		t.Errorf("sink saw %d results, want 9 (12 trials, 3 injected failures)", len(c.Results))
	}
	var te *TrialError
	if !errors.As(err, &te) {
		t.Errorf("error should carry *TrialError values, got %v", err)
	}
}

func TestSchedulerSerialWhenParallelOne(t *testing.T) {
	trials := []Trial{
		schedTrial(0, "a", 1, PlaceNone),
		schedTrial(1, "b", 1, PlaceNone),
		schedTrial(2, "c", 1, PlaceNone),
	}
	exec := newRecordingExecutor(time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 1, groups: fakeGroups()}
	if err := s.RunPlan(context.Background(), trials, nil); err != nil {
		t.Fatal(err)
	}
	if exec.maxActive != 1 {
		t.Errorf("max concurrency %d with Parallel=1, want strictly serial", exec.maxActive)
	}
}

func TestSchedulerHonorsCancellation(t *testing.T) {
	var trials []Trial
	for i := 0; i < 50; i++ {
		trials = append(trials, schedTrial(i, fmt.Sprintf("s%d", i), 1, PlaceNone))
	}
	exec := newRecordingExecutor(5 * time.Millisecond)
	s := &Scheduler{Executor: exec, Parallel: 2, groups: fakeGroups()}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(12 * time.Millisecond)
		cancel()
	}()
	var c Collector
	err := s.RunPlan(ctx, trials, &c)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(c.Results) == len(trials) {
		t.Error("cancellation should have stopped the sweep early")
	}
	// A sweep-level interrupt is the user's doing, not N trial failures.
	var te *TrialError
	if errors.As(err, &te) {
		t.Errorf("cancellation was misreported as a per-trial failure: %v", err)
	}
}

func TestSchedulerSinkErrorStopsDispatch(t *testing.T) {
	var trials []Trial
	for i := 0; i < 20; i++ {
		trials = append(trials, schedTrial(i, fmt.Sprintf("s%d", i), 1, PlaceNone))
	}
	exec := newRecordingExecutor(0)
	s := &Scheduler{Executor: exec, Parallel: 2, groups: fakeGroups()}
	consumed := 0
	sink := SinkFunc(func(Result) error {
		consumed++
		if consumed >= 3 {
			return fmt.Errorf("disk full")
		}
		return nil
	})
	err := s.RunPlan(context.Background(), trials, sink)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if consumed >= 20 {
		t.Errorf("sink consumed %d results after failing; dispatch should stop", consumed)
	}
}

func TestSchedulerRequiresExecutor(t *testing.T) {
	s := &Scheduler{}
	if err := s.RunPlan(context.Background(), nil, nil); err == nil {
		t.Error("want an error when no executor is configured")
	}
}
