// Package harness explores a benchmark space through three layers connected
// by small interfaces: a planner that expands a Space into an explicit
// ordered []Trial (plan.go), an Executor that runs one trial at a time with
// warm-up, pinning, metering, and adaptive repetitions (execute.go), and a
// ResultSink pipeline that streams each completed configuration out as it
// finishes (sink.go). Configurations can pair two heterogeneous specs
// (co-runs) to measure SMT/CMP interference, the core scenario of the
// MICRO 2012 methodology.
//
// Every configuration is identified by a stable key
// (spec|specB|tN+M|placement|meter|iN+M, see plan.go) that the store layer
// dedupes and resumes on. Fleet results carry an optional |h:host|u:microarch
// suffix — ResultKey builds it, StripHostKey removes it — so one central
// store can hold the same configuration measured on many machines. The full
// key grammar is documented in docs/WIRE.md.
package harness
