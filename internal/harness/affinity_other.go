//go:build !linux

package harness

import "fmt"

// pinThread is unsupported off Linux; placements other than "none" fail.
func pinThread(cpu int) error {
	return fmt.Errorf("harness: CPU pinning not supported on this platform (cpu=%d)", cpu)
}

// affinityCPUs is unknowable off Linux.
func affinityCPUs() map[int]bool { return nil }
