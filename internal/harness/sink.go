package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ResultSink consumes completed configurations as they finish, one at a
// time, in plan order. Streaming results instead of collecting them means an
// interrupted sweep loses nothing that completed: every sink has already
// seen every finished trial. Consume returning an error aborts the sweep;
// Close is called exactly once when the sweep ends (normally or not).
type ResultSink interface {
	Consume(r Result) error
	Close() error
}

// Collector is an in-memory ResultSink accumulating results in order.
type Collector struct {
	Results []Result
}

func (c *Collector) Consume(r Result) error {
	c.Results = append(c.Results, r)
	return nil
}

func (c *Collector) Close() error { return nil }

// SinkFunc adapts a function to the ResultSink interface (Close is a no-op).
type SinkFunc func(Result) error

func (f SinkFunc) Consume(r Result) error { return f(r) }
func (f SinkFunc) Close() error           { return nil }

// MultiSink fans each result out to every sink in order. Consume stops at
// the first error; Close closes every sink and joins their errors.
type MultiSink []ResultSink

func (m MultiSink) Consume(r Result) error {
	for _, s := range m {
		if err := s.Consume(r); err != nil {
			return err
		}
	}
	return nil
}

func (m MultiSink) Close() error {
	var errs []error
	for _, s := range m {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// JSONArraySink streams results to w as one indented JSON array, writing
// each element as it completes rather than buffering the sweep. Close
// terminates the array (emitting "[]" if nothing was consumed), so even an
// interrupted sweep leaves well-formed JSON covering the completed trials.
type JSONArraySink struct {
	w      io.Writer
	n      int
	closed bool
}

// NewJSONArraySink returns a sink streaming a JSON array of results to w.
func NewJSONArraySink(w io.Writer) *JSONArraySink {
	return &JSONArraySink{w: w}
}

func (s *JSONArraySink) Consume(r Result) error {
	sep := "[\n"
	if s.n > 0 {
		sep = ",\n"
	}
	b, err := json.MarshalIndent(r, "  ", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding result: %w", err)
	}
	if _, err := fmt.Fprintf(s.w, "%s  %s", sep, b); err != nil {
		return fmt.Errorf("harness: writing result: %w", err)
	}
	s.n++
	return nil
}

func (s *JSONArraySink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	out := "[]\n"
	if s.n > 0 {
		out = "\n]\n"
	}
	_, err := io.WriteString(s.w, out)
	return err
}
