package harness

import (
	"reflect"
	"testing"
)

// TestAssignFromGroupsTable covers compact vs scatter ordering on symmetric
// and asymmetric topologies (odd core counts, uneven SMT sibling counts) and
// oversubscription (threads > logical CPUs wraps around).
func TestAssignFromGroupsTable(t *testing.T) {
	tests := []struct {
		name    string
		p       Placement
		n       int
		cores   [][]int
		want    []int
		comment string
	}{
		{
			name: "compact-2x2", p: PlaceCompact, n: 4,
			cores: [][]int{{0, 2}, {1, 3}},
			want:  []int{0, 2, 1, 3},
		},
		{
			name: "scatter-2x2", p: PlaceScatter, n: 4,
			cores: [][]int{{0, 2}, {1, 3}},
			want:  []int{0, 1, 2, 3},
		},
		{
			name: "compact-asymmetric-siblings", p: PlaceCompact, n: 6,
			cores: [][]int{{0, 1}, {2}, {3, 4, 5}},
			want:  []int{0, 1, 2, 3, 4, 5},
		},
		{
			// Scatter walks sibling ranks: rank 0 of each core (0,2,3),
			// then rank 1 of the cores that have one (1,4), then rank 2 (5).
			name: "scatter-asymmetric-siblings", p: PlaceScatter, n: 6,
			cores: [][]int{{0, 1}, {2}, {3, 4, 5}},
			want:  []int{0, 2, 3, 1, 4, 5},
		},
		{
			name: "compact-odd-core-count", p: PlaceCompact, n: 3,
			cores: [][]int{{0, 3}, {1, 4}, {2, 5}},
			want:  []int{0, 3, 1},
		},
		{
			name: "scatter-odd-core-count", p: PlaceScatter, n: 3,
			cores: [][]int{{0, 3}, {1, 4}, {2, 5}},
			want:  []int{0, 1, 2},
		},
		{
			// 5 threads on 3 logical CPUs: assignment wraps round-robin.
			name: "compact-oversubscribed", p: PlaceCompact, n: 5,
			cores: [][]int{{0, 1}, {2}},
			want:  []int{0, 1, 2, 0, 1},
		},
		{
			name: "scatter-oversubscribed", p: PlaceScatter, n: 7,
			cores: [][]int{{0, 1}, {2}},
			want:  []int{0, 2, 1, 0, 2, 1, 0},
		},
		{
			name: "single-core-many-threads", p: PlaceScatter, n: 3,
			cores: [][]int{{0}},
			want:  []int{0, 0, 0},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := assignFromGroups(tc.p, tc.n, tc.cores)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("assignFromGroups(%s, %d, %v) = %v, want %v",
					tc.p, tc.n, tc.cores, got, tc.want)
			}
		})
	}
}

// coreOf maps a logical CPU back to its physical-core index in cores.
func coreOf(t *testing.T, cores [][]int, cpu int) int {
	t.Helper()
	for i, siblings := range cores {
		for _, c := range siblings {
			if c == cpu {
				return i
			}
		}
	}
	t.Fatalf("cpu %d not in topology %v", cpu, cores)
	return -1
}

// TestCoRunInterleavedPlacement pins the co-run placement semantics: work
// units are interleaved A,B,A,B…, so under compact each A/B pair must land
// on SMT siblings of the same physical core (sharing the core is the
// interference scenario), while under scatter each A/B pair must land on
// distinct physical cores.
func TestCoRunInterleavedPlacement(t *testing.T) {
	cores := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	const pairs = 4 // 4 A-threads + 4 B-threads, exactly filling the machine

	compact := assignFromGroups(PlaceCompact, 2*pairs, cores)
	for i := 0; i < pairs; i++ {
		a, b := compact[2*i], compact[2*i+1] // unit order is A,B,A,B…
		if coreOf(t, cores, a) != coreOf(t, cores, b) {
			t.Errorf("compact pair %d: A on cpu%d, B on cpu%d — want SMT siblings of one core", i, a, b)
		}
	}

	scatter := assignFromGroups(PlaceScatter, 2*pairs, cores)
	for i := 0; i < pairs; i++ {
		a, b := scatter[2*i], scatter[2*i+1]
		if coreOf(t, cores, a) == coreOf(t, cores, b) {
			t.Errorf("scatter pair %d: A and B both on core %d — want distinct physical cores", i, coreOf(t, cores, a))
		}
	}
}
