package harness

import (
	"fmt"
	"strings"
	"time"

	"energybench/internal/bench"
)

// ExternSpec makes a trial an external-workload trial: instead of running a
// catalog kernel in worker threads, the executor builds (once) and launches
// an arbitrary binary as the metered region. It is fully serializable, so
// extern trials travel through campaign plans, the parallel Scheduler, and
// fleet batches exactly like kernel trials; only an extern-aware executor
// (internal/extwork) can run them.
type ExternSpec struct {
	// Workload names the workload; it becomes the "|w:" key dimension and
	// the result's Workload field. Must not contain '|' or '/'.
	Workload string `json:"workload"`
	// Exec is the argv to launch. "${THREADS}" and "${CPUS}" in any element
	// expand to the trial's thread count and comma-separated CPU assignment.
	Exec []string `json:"exec"`
	// Env are extra environment variables for the child, with the same
	// ${THREADS}/${CPUS} expansion — how e.g. OMP_NUM_THREADS joins the
	// threads axis.
	Env map[string]string `json:"env,omitempty"`
	// Dir is the working directory for the build step and the child;
	// empty means the harness process's own working directory.
	Dir string `json:"dir,omitempty"`
	// Build, when non-empty, is a command run once per workload (not per
	// trial) before the first launch; a build failure fails every trial of
	// the workload.
	Build []string `json:"build,omitempty"`
	// ExpectExit is the exit status that counts as success (usually 0).
	ExpectExit int `json:"expect_exit,omitempty"`
	// Timeout bounds one repetition's child process; 0 falls back to the
	// executor-level trial timeout, and 0 there means unbounded.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Components declares the workload's nominal per-thread activity mix
	// over the kernel component vocabulary (e.g. {int-alu: 1}), used by
	// model validation to build the predicted-activity vector and by the
	// mock meter/counter backends to plant a matching load.
	Components map[bench.Component]float64 `json:"components,omitempty"`
}

// Validate checks the spec can be keyed and launched.
func (s *ExternSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("harness: extern spec has no workload name")
	}
	if strings.ContainsAny(s.Workload, "|/") {
		return fmt.Errorf("harness: workload name %q may not contain '|' or '/'", s.Workload)
	}
	if len(s.Exec) == 0 || s.Exec[0] == "" {
		return fmt.Errorf("harness: workload %q has no exec command", s.Workload)
	}
	if s.ExpectExit < 0 || s.ExpectExit > 255 {
		return fmt.Errorf("harness: workload %q expect_exit %d outside 0..255", s.Workload, s.ExpectExit)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("harness: workload %q has negative timeout", s.Workload)
	}
	for c, w := range s.Components {
		if c == "" {
			return fmt.Errorf("harness: workload %q has an unnamed component", s.Workload)
		}
		if w < 0 {
			return fmt.Errorf("harness: workload %q component %s has negative weight %v", s.Workload, c, w)
		}
	}
	return nil
}
