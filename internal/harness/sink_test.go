package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func sampleResult(spec string, threads int) Result {
	return Result{Spec: spec, Threads: threads, Iters: 100, Placement: PlaceNone, Meter: "mock"}
}

func TestJSONArraySinkStreamsValidArray(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONArraySink(&buf)
	if err := s.Consume(sampleResult("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Consume(sampleResult("b", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Result
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("streamed output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 || got[0].Spec != "a" || got[1].Spec != "b" {
		t.Errorf("decoded %+v", got)
	}
}

func TestJSONArraySinkEmptyAndIdempotentClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONArraySink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Result
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil || len(got) != 0 {
		t.Errorf("empty sink output = %q (err %v), want a valid empty array", buf.String(), err)
	}
}

func TestMultiSinkFansOutAndStopsOnError(t *testing.T) {
	var c1, c2 Collector
	m := MultiSink{&c1, &c2}
	if err := m.Consume(sampleResult("a", 1)); err != nil {
		t.Fatal(err)
	}
	if len(c1.Results) != 1 || len(c2.Results) != 1 {
		t.Errorf("fan-out missed a sink: %d/%d", len(c1.Results), len(c2.Results))
	}

	boom := errors.New("boom")
	var after Collector
	failing := MultiSink{SinkFunc(func(Result) error { return boom }), &after}
	if err := failing.Consume(sampleResult("b", 1)); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if len(after.Results) != 0 {
		t.Error("sink after the failing one still consumed the result")
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
}
