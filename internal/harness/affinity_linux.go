//go:build linux

package harness

import (
	"fmt"
	"syscall"
	"unsafe"
)

// pinThread binds the calling OS thread to one logical CPU via
// sched_setaffinity. Callers must hold runtime.LockOSThread for the pin to
// stay meaningful. Best-effort: restricted environments (containers without
// CAP_SYS_NICE over the full cpuset) surface the error to the caller, who
// decides whether pinning is mandatory.
func pinThread(cpu int) error {
	if cpu < 0 || cpu >= 64*16 {
		return fmt.Errorf("harness: cpu %d out of supported range", cpu)
	}
	var mask [16]uint64 // 1024 CPUs
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0, // current thread
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])),
	)
	if errno != 0 {
		return fmt.Errorf("harness: sched_setaffinity(cpu=%d): %w", cpu, errno)
	}
	return nil
}

// affinityCPUs returns the set of CPUs the process is allowed to run on
// (cgroup cpusets, taskset), or nil when it cannot be determined.
func affinityCPUs() map[int]bool {
	var mask [16]uint64 // 1024 CPUs
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_GETAFFINITY,
		0, // current process
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])),
	)
	if errno != 0 {
		return nil
	}
	allowed := make(map[int]bool)
	for w, bits := range mask {
		for b := 0; bits != 0; b++ {
			if bits&1 != 0 {
				allowed[w*64+b] = true
			}
			bits >>= 1
		}
	}
	return allowed
}
