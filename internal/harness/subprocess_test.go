package harness

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"energybench/internal/bench"
)

// shWorker builds a Subprocess executor whose "worker" is a shell script,
// so the protocol (envelope parsing, crash detection, timeouts) is testable
// without building the real CLI binary.
func shWorker(t *testing.T, script string) *Subprocess {
	t.Helper()
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh on this platform")
	}
	return &Subprocess{Binary: "/bin/sh", Args: []string{"-c", script}}
}

func fakeTrial(name string) Trial {
	return Trial{Spec: bench.Spec{Name: name}, Threads: 1, Placement: PlaceNone, MinReps: 1, MaxReps: 1}
}

func TestSubprocessDecodesResultEnvelope(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo '{"v":1,"result":{"spec":"echoed","threads":3,"placement":"none","meter":"mock"}}'`)
	res, err := e.Execute(context.Background(), fakeTrial("x"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec != "echoed" || res.Threads != 3 || res.Meter != "mock" {
		t.Errorf("decoded result %+v, want the envelope's fields", res)
	}
}

func TestSubprocessForwardsTrialOnStdin(t *testing.T) {
	// The worker echoes the spec name it read from stdin back through the
	// result, proving the trial actually crosses the process boundary.
	e := shWorker(t, `in=$(cat); case "$in" in *round-trip*) echo '{"v":1,"result":{"spec":"saw-round-trip"}}';; *) echo '{"v":1,"error":"trial not received"}';; esac`)
	res, err := e.Execute(context.Background(), fakeTrial("round-trip"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec != "saw-round-trip" {
		t.Errorf("worker did not see the serialized trial: %+v", res)
	}
}

func TestSubprocessErrorEnvelope(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo '{"v":1,"error":"meter exploded"}'; exit 1`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "meter exploded") {
		t.Errorf("err = %v, want the worker's structured message", err)
	}
}

func TestSubprocessCrashSurfacesExitAndStderr(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo "boom diagnostics" >&2; exit 3`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil {
		t.Fatal("want an error for a crashed worker")
	}
	for _, want := range []string{"worker crashed", "exit status 3", "boom diagnostics"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("crash error %q missing %q", err, want)
		}
	}
}

func TestSubprocessSIGKILLedWorker(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; kill -9 $$`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "worker crashed") {
		t.Errorf("err = %v, want a crash error for a SIGKILLed worker", err)
	}
}

func TestSubprocessMalformedEnvelope(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo 'this is not json'`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "malformed envelope") {
		t.Errorf("err = %v, want a malformed-envelope error", err)
	}
}

func TestSubprocessEmptyEnvelope(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo '{"v":1}'`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "neither result nor error") {
		t.Errorf("err = %v, want a neither-result-nor-error protocol error", err)
	}
}

func TestSubprocessRejectsNewerProtocol(t *testing.T) {
	e := shWorker(t, `cat >/dev/null; echo '{"v":99,"result":{"spec":"x"}}'`)
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "protocol v99") {
		t.Errorf("err = %v, want a protocol-version error", err)
	}
}

func TestSubprocessTimeoutKillsWorker(t *testing.T) {
	e := shWorker(t, `sleep 30`)
	e.Timeout = 100 * time.Millisecond
	start := time.Now()
	_, err := e.Execute(context.Background(), fakeTrial("x"))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v, want a timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v; the child was not killed promptly", elapsed)
	}
}

func TestSubprocessContextCancellation(t *testing.T) {
	e := shWorker(t, `sleep 30`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := e.Execute(ctx, fakeTrial("x"))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSubprocessNoBinary(t *testing.T) {
	e := &Subprocess{}
	if _, err := e.Execute(context.Background(), fakeTrial("x")); err == nil {
		t.Error("want an error when no binary is configured")
	}
}
