package harness

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"energybench/internal/bench"
	"energybench/internal/meter"
	"energybench/internal/perf"
)

func counterTrial(threads int, events ...string) Trial {
	spec, _ := bench.Lookup("int-alu")
	spec.Iters = 20_000
	return Trial{
		Spec: spec, Threads: threads, Placement: PlaceNone,
		Iters: spec.Iters, MinReps: 2, MaxReps: 2,
		Counters: &perf.Spec{Backend: perf.BackendMock, Events: events},
	}
}

// TestInProcessCollectsCounters runs a mock-counter trial end to end: the
// result must carry scaled counts whose per-thread rates reproduce the mock
// backend's planted table and whose totals sum across threads.
func TestInProcessCollectsCounters(t *testing.T) {
	e := &InProcess{Meter: meter.NewMock(10)}
	trial := counterTrial(2, "instructions", "llc-misses")
	res, err := e.Execute(context.Background(), trial)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c == nil {
		t.Fatal("result has no counters despite a counter spec on the trial")
	}
	if c.Backend != perf.BackendMock {
		t.Errorf("backend = %q, want mock", c.Backend)
	}
	if c.Reps != 2 {
		t.Errorf("aggregated reps = %d, want 2", c.Reps)
	}
	if len(c.Events) != 2 || c.Events[0].Event != "instructions" || c.Events[1].Event != "llc-misses" {
		t.Fatalf("events = %+v, want instructions, llc-misses", c.Events)
	}
	if len(c.Threads) != 2 {
		t.Fatalf("got %d thread entries, want 2", len(c.Threads))
	}
	// The mock counts exactly rate × elapsed per thread, so each thread's
	// rate is the planted rate and the event aggregate is threads × rate.
	planted := perf.MockRate("int-alu", "instructions")
	for i, th := range c.Threads {
		if got := th.RateHzMean[0]; math.Abs(got-planted) > planted*0.05 {
			t.Errorf("thread %d instruction rate = %v, want ~%v", i, got, planted)
		}
		if th.CPU != -1 {
			t.Errorf("thread %d CPU = %d, want -1 for an unpinned trial", i, th.CPU)
		}
	}
	if got := c.Events[0].RateHzMean; math.Abs(got-2*planted) > 2*planted*0.05 {
		t.Errorf("aggregate instruction rate = %v, want ~%v (2 threads)", got, 2*planted)
	}
	if c.Events[0].TotalMean <= 0 {
		t.Error("aggregate instruction total should be positive")
	}
	if c.Events[0].Multiplexed {
		t.Error("unmultiplexed mock counts reported Multiplexed")
	}
}

// TestInProcessCoRunCounterGroups: co-run counters must attribute each
// worker thread to its spec group with that spec's component rates, so the
// model can build a two-component activity vector from one trial.
func TestInProcessCoRunCounterGroups(t *testing.T) {
	specA, _ := bench.Lookup("int-alu")
	specB, _ := bench.Lookup("chase-dram")
	specA.Iters, specB.Iters = 20_000, 2_000
	trial := Trial{
		Spec: specA, SpecB: &specB, Threads: 1, Placement: PlaceNone,
		Iters: specA.Iters, ItersB: specB.Iters, MinReps: 1, MaxReps: 1,
		Counters: &perf.Spec{Backend: perf.BackendMock, Events: []string{"instructions", "llc-misses"}},
	}
	e := &InProcess{Meter: meter.NewMock(10)}
	res, err := e.Execute(context.Background(), trial)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c == nil {
		t.Fatal("no counters on co-run result")
	}
	if len(c.Threads) != 2 {
		t.Fatalf("got %d thread entries, want 2 (one per co-run unit)", len(c.Threads))
	}
	groups := map[int]bool{}
	for _, th := range c.Threads {
		groups[th.Group] = true
	}
	if !groups[0] || !groups[1] {
		t.Fatalf("thread groups = %+v, want one thread in group 0 and one in group 1", c.Threads)
	}
	// Group 0 ran int-alu (high instruction rate); group 1 ran the DRAM
	// chase (high LLC miss rate). TotalRateHz must separate them.
	aInstr, ok := c.TotalRateHz("instructions", 0)
	if !ok {
		t.Fatal("instructions not counted for group 0")
	}
	bMiss, ok := c.TotalRateHz("llc-misses", 1)
	if !ok {
		t.Fatal("llc-misses not counted for group 1")
	}
	wantA := perf.MockRate("int-alu", "instructions")
	wantB := perf.MockRate("dram", "llc-misses")
	if math.Abs(aInstr-wantA) > wantA*0.05 {
		t.Errorf("group A instruction rate = %v, want ~%v", aInstr, wantA)
	}
	if math.Abs(bMiss-wantB) > wantB*0.05 {
		t.Errorf("group B llc-miss rate = %v, want ~%v", bMiss, wantB)
	}
}

// TestInProcessCounterOpenFailureFailsTrial: a counter session that cannot
// open must fail the repetition (the activity vector would be a lie), and
// the error must surface through Execute.
func TestInProcessCounterOpenFailureFailsTrial(t *testing.T) {
	e := &InProcess{
		Meter: meter.NewMock(10),
		newActivity: func(perf.Spec) (perf.ActivityMeter, error) {
			return failingActivityMeter{}, nil
		},
	}
	_, err := e.Execute(context.Background(), counterTrial(1, "instructions"))
	if err == nil || !strings.Contains(err.Error(), "no PMU access") {
		t.Fatalf("err = %v, want the counter open failure", err)
	}
}

// TestInProcessCounterConstructionFailureFailsTrial: an unconstructible
// activity meter (e.g. perf backend on a host without access) fails the
// trial before any repetition runs.
func TestInProcessCounterConstructionFailureFailsTrial(t *testing.T) {
	e := &InProcess{
		Meter: meter.NewMock(10),
		newActivity: func(perf.Spec) (perf.ActivityMeter, error) {
			return nil, fmt.Errorf("paranoid kernel")
		},
	}
	_, err := e.Execute(context.Background(), counterTrial(1, "instructions"))
	if err == nil || !strings.Contains(err.Error(), "paranoid kernel") {
		t.Fatalf("err = %v, want the activity meter construction failure", err)
	}
}

// TestNoCountersMeansNoCounters: trials without a counter spec keep the
// pre-counter result shape.
func TestNoCountersMeansNoCounters(t *testing.T) {
	spec, _ := bench.Lookup("int-alu")
	spec.Iters = 10_000
	e := &InProcess{Meter: meter.NewMock(10)}
	res, err := e.Execute(context.Background(), Trial{
		Spec: spec, Threads: 1, Placement: PlaceNone,
		Iters: spec.Iters, MinReps: 1, MaxReps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != nil {
		t.Errorf("counters = %+v on a trial with no counter spec, want nil", res.Counters)
	}
}

// TestPlanStampsNormalizedCounterSpec: the planner must attach the
// normalized spec (explicit backend and expanded event list) to every trial
// so serialized trials are self-describing.
func TestPlanStampsNormalizedCounterSpec(t *testing.T) {
	spec, _ := bench.Lookup("int-alu")
	space := Space{
		Specs: []bench.Spec{spec}, ThreadCounts: []int{1}, Placements: []Placement{PlaceNone},
		Reps: 1, Counters: &perf.Spec{Backend: perf.BackendMock},
	}
	trials, err := Plan(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 {
		t.Fatalf("planned %d trials, want 1", len(trials))
	}
	c := trials[0].Counters
	if c == nil {
		t.Fatal("trial has no counter spec")
	}
	if c.Backend != perf.BackendMock || len(c.Events) != len(perf.DefaultEvents()) {
		t.Errorf("stamped spec = %+v, want mock backend with the default events expanded", c)
	}

	space.Counters = &perf.Spec{Events: []string{"tlb-flushes"}}
	if err := space.Validate(); err == nil {
		t.Error("Validate should reject an unknown counter event")
	}
}

// failingActivityMeter is an ActivityMeter whose sessions never open.
type failingActivityMeter struct{}

func (failingActivityMeter) Name() string     { return "failing" }
func (failingActivityMeter) Events() []string { return []string{"instructions"} }
func (failingActivityMeter) OpenThread(int, string) (perf.Session, error) {
	return nil, fmt.Errorf("no PMU access")
}
