package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"
	"strings"
	"time"
)

// WorkerProtocolVersion is the version of the JSON envelope exchanged
// between the Subprocess executor and a `worker-trial` child. The child
// stamps it into every envelope; the parent rejects envelopes from a newer
// protocol so a version-skewed binary fails loudly instead of silently
// misparsing.
const WorkerProtocolVersion = 1

// WorkerEnvelope is the worker child's entire stdout: either the measured
// result or a structured execution error, never both. Keeping the protocol
// to one JSON document per process keeps crash detection trivial — anything
// that does not parse as an envelope is a crashed or misbehaving child.
type WorkerEnvelope struct {
	V      int     `json:"v"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// TrialError attributes an execution failure to one planned trial. The
// Scheduler records these and keeps sweeping: a crashed or timed-out worker
// child loses exactly one trial, not the whole campaign.
type TrialError struct {
	Trial Trial
	Err   error
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d (%s/t%d/%s): %v",
		e.Trial.Seq, e.Trial.Name(), e.Trial.Threads, e.Trial.Placement, e.Err)
}

func (e *TrialError) Unwrap() error { return e.Err }

// Subprocess executes each trial in a freshly exec'd single-purpose child
// process, so pinning, warm-up, and metering happen in a quiet address space
// unperturbed by the coordinator's own GC cycles and goroutines (the
// isolation nanoBench argues is what makes micro-benchmark numbers
// trustworthy). The trial is serialized as JSON on the child's stdin; the
// child replies with one WorkerEnvelope on stdout. A crash, timeout, or
// protocol violation surfaces as an error for that trial only — callers like
// the Scheduler continue the sweep.
type Subprocess struct {
	// Binary is the executable to spawn, typically the running energybench
	// binary itself (os.Executable()).
	Binary string
	// Args is the full argument vector after the binary name, e.g.
	// ["worker-trial", "--meter=mock", "--mock-watts=42"]. The caller owns
	// meter configuration; this executor is meter-agnostic.
	Args []string
	// Env entries are appended to the child's inherited environment.
	// Tests use this to make a re-exec'd test binary act as the CLI.
	Env []string
	// Timeout bounds one trial's wall clock; 0 means no limit. On expiry the
	// child is killed and the trial fails with a timeout error.
	Timeout time.Duration
}

// stderrTailLimit bounds how much child stderr is quoted in crash errors.
const stderrTailLimit = 2048

// Execute serializes the trial to a child process and decodes its envelope.
func (e *Subprocess) Execute(ctx context.Context, t Trial) (Result, error) {
	if e.Binary == "" {
		return Result{}, fmt.Errorf("harness: subprocess executor has no binary")
	}
	payload, err := json.Marshal(t)
	if err != nil {
		return Result{}, fmt.Errorf("harness: encoding trial: %w", err)
	}
	parent := ctx
	if e.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Timeout)
		defer cancel()
	}
	cmd := exec.CommandContext(ctx, e.Binary, e.Args...)
	cmd.Stdin = bytes.NewReader(payload)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	cmd.Env = append(cmd.Environ(), e.Env...)
	// After the child is killed (timeout, cancellation), don't wait forever
	// for its stdio pipes: a grandchild inheriting stdout would otherwise
	// wedge the whole sweep on one dead worker.
	cmd.WaitDelay = 3 * time.Second
	runErr := cmd.Run()

	// A cancellation or deadline on the caller's own context is the
	// caller's story (sweep-level SIGINT or budget) and must not be
	// misreported as a per-trial timeout; only a deadline this executor
	// added itself is the worker timing out.
	if err := parent.Err(); err != nil {
		return Result{}, err
	}
	if e.Timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return Result{}, fmt.Errorf("harness: worker timed out after %v", e.Timeout)
	}

	// Decode the envelope even when the child exited nonzero: a worker that
	// failed cleanly (bad spec, meter error) reports through the envelope
	// with a nonzero exit, and the structured message beats an exit status.
	var env WorkerEnvelope
	if decErr := json.Unmarshal(stdout.Bytes(), &env); decErr != nil {
		if runErr != nil {
			return Result{}, fmt.Errorf("harness: worker crashed: %v%s", runErr, stderrTail(stderr.Bytes()))
		}
		return Result{}, fmt.Errorf("harness: worker wrote malformed envelope: %v%s", decErr, stderrTail(stderr.Bytes()))
	}
	if env.V > WorkerProtocolVersion {
		return Result{}, fmt.Errorf("harness: worker speaks protocol v%d, this build reads up to v%d (version-skewed binary?)",
			env.V, WorkerProtocolVersion)
	}
	if env.Error != "" {
		return Result{}, fmt.Errorf("harness: worker: %s", env.Error)
	}
	if env.Result == nil {
		return Result{}, fmt.Errorf("harness: worker envelope has neither result nor error%s", stderrTail(stderr.Bytes()))
	}
	return *env.Result, nil
}

// stderrTail formats the tail of a child's stderr for inclusion in an error.
func stderrTail(b []byte) string {
	s := strings.TrimSpace(string(b))
	if s == "" {
		return ""
	}
	if len(s) > stderrTailLimit {
		s = "…" + s[len(s)-stderrTailLimit:]
	}
	return "; stderr: " + s
}
