package harness

import "energybench/internal/perf"

// CounterEvent aggregates one hardware event over a trial's measured
// repetitions. TotalMean is the mean over repetitions of the scaled count
// summed across worker threads; RateHzMean is the mean over repetitions of
// the summed per-thread rates (each thread's scaled count divided by its own
// enabled time), the activity-factor form the power model consumes.
type CounterEvent struct {
	Event       string  `json:"event"`
	TotalMean   float64 `json:"total_mean"`
	RateHzMean  float64 `json:"rate_hz_mean"`
	Multiplexed bool    `json:"multiplexed,omitempty"`
}

// CounterThread is one worker thread's per-event means, aligned with
// Counters.Events. CPU is the pinned logical CPU (-1 when the trial ran
// unpinned); Group attributes the thread to a co-run side (0 = spec A,
// 1 = spec B).
type CounterThread struct {
	CPU        int       `json:"cpu"`
	Group      int       `json:"group,omitempty"`
	TotalMean  []float64 `json:"total_mean"`
	RateHzMean []float64 `json:"rate_hz_mean"`
}

// Counters is the measured activity vector of one trial: scaled event
// counts from every worker thread's counter group, aggregated over the
// measured repetitions. It rides on Result (and through the worker-trial
// envelope and the store) next to the energy summaries it explains.
type Counters struct {
	Backend string          `json:"backend"`
	Events  []CounterEvent  `json:"events"`
	Threads []CounterThread `json:"threads"`
	// Reps is how many measured repetitions the means aggregate.
	Reps int `json:"reps"`
}

// EventIndex returns the position of the named event in Events, or -1.
func (c *Counters) EventIndex(name string) int {
	for i, e := range c.Events {
		if e.Event == name {
			return i
		}
	}
	return -1
}

// TotalRateHz returns the summed RateHzMean of the named event over the
// threads of one co-run group (solo trials put every thread in group 0),
// falling back to the event-level aggregate when per-thread data is absent.
// The second return is false when the event is not counted.
func (c *Counters) TotalRateHz(name string, group int) (float64, bool) {
	i := c.EventIndex(name)
	if i < 0 {
		return 0, false
	}
	if len(c.Threads) == 0 {
		if group != 0 {
			return 0, false
		}
		return c.Events[i].RateHzMean, true
	}
	var sum float64
	found := false
	for _, th := range c.Threads {
		if th.Group != group {
			continue
		}
		found = true
		if i < len(th.RateHzMean) {
			sum += th.RateHzMean[i]
		}
	}
	if !found {
		return 0, false
	}
	return sum, true
}

// buildCounters folds per-repetition, per-thread counts into the stored
// aggregate. reps[r][t] is worker thread t's counts in measured repetition
// r; every inner slice is parallel to units/cpus.
func buildCounters(backend string, events []string, units []workUnit, cpus []int, reps [][]perf.Counts) *Counters {
	if len(reps) == 0 || len(events) == 0 {
		return nil
	}
	threads := len(units)
	out := &Counters{Backend: backend, Reps: len(reps)}
	perThread := make([]CounterThread, threads)
	for t := range perThread {
		cpu := -1
		if cpus != nil {
			cpu = cpus[t]
		}
		perThread[t] = CounterThread{
			CPU:        cpu,
			Group:      units[t].group,
			TotalMean:  make([]float64, len(events)),
			RateHzMean: make([]float64, len(events)),
		}
	}
	out.Events = make([]CounterEvent, len(events))
	for i, name := range events {
		out.Events[i].Event = name
	}
	n := float64(len(reps))
	for _, rep := range reps {
		for t, counts := range rep {
			for i, v := range counts.Values {
				if i >= len(events) {
					break
				}
				perThread[t].TotalMean[i] += v.Scaled / n
				if v.TimeEnabledNS > 0 {
					rate := v.Scaled / (float64(v.TimeEnabledNS) / 1e9)
					perThread[t].RateHzMean[i] += rate / n
				}
				if v.Multiplexed() {
					out.Events[i].Multiplexed = true
				}
			}
		}
	}
	for _, th := range perThread {
		for i := range out.Events {
			out.Events[i].TotalMean += th.TotalMean[i]
			out.Events[i].RateHzMean += th.RateHzMean[i]
		}
	}
	out.Threads = perThread
	return out
}
