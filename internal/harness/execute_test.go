package harness

import (
	"context"
	"testing"
	"time"

	"energybench/internal/meter"
	"energybench/internal/perf"
)

// scriptedMeter returns counter values from a caller-provided function of
// the read index, so tests control the exact energy delta of every
// repetition (the executor reads the meter twice per rep: before and after).
type scriptedMeter struct {
	reads   int
	counter func(read int) uint64
}

func (m *scriptedMeter) Name() string            { return "scripted" }
func (m *scriptedMeter) Domains() []meter.Domain { return []meter.Domain{{Name: "scripted-0"}} }
func (m *scriptedMeter) Read() (meter.Reading, error) {
	v := m.counter(m.reads)
	m.reads++
	return meter.Reading{Counters: []uint64{v}}, nil
}

// constantDeltaCounter yields exactly deltaMicroJ between the before/after
// reads of every repetition and nothing in between.
func constantDeltaCounter(deltaMicroJ uint64) func(int) uint64 {
	return func(read int) uint64 { return deltaMicroJ * uint64((read+1)/2) }
}

// sampleSequenceCounter yields the given per-repetition energy deltas in
// order (repeating the last one), with no energy between repetitions.
func sampleSequenceCounter(deltasMicroJ []uint64) func(int) uint64 {
	return func(read int) uint64 {
		rep := read / 2
		var sum uint64
		for i := 0; i < rep && i < len(deltasMicroJ); i++ {
			sum += deltasMicroJ[i]
		}
		if rep >= len(deltasMicroJ) {
			sum += deltasMicroJ[len(deltasMicroJ)-1] * uint64(rep-len(deltasMicroJ)+1)
		}
		if read%2 == 1 {
			if rep < len(deltasMicroJ) {
				sum += deltasMicroJ[rep]
			} else {
				sum += deltasMicroJ[len(deltasMicroJ)-1]
			}
		}
		return sum
	}
}

func adaptiveSpace(t *testing.T) Space {
	s := tinySpace(t)
	s.Specs = s.Specs[:1]
	s.ThreadCounts = []int{1}
	s.Warmup = 1
	s.Reps = 0
	s.MinReps = 3
	s.MaxReps = 10
	s.CVTarget = 0.05
	return s
}

// TestAdaptiveRepsStopEarlyOnStableConfig is the acceptance-criteria test:
// with a low-variance (here: perfectly constant) energy source, adaptive
// repetitions must stop at the minimum rep count, well under --max-reps.
func TestAdaptiveRepsStopEarlyOnStableConfig(t *testing.T) {
	m := &scriptedMeter{counter: constantDeltaCounter(1000)}
	r := &Runner{Meter: m}
	results, err := r.Run(context.Background(), adaptiveSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Samples) != 3 {
		t.Errorf("executed %d reps, want exactly MinReps=3 for a zero-CV config (MaxReps=10)", len(res.Samples))
	}
	if !res.Converged {
		t.Error("result not marked converged")
	}
	if res.EnergyJ.CV > 0.05 {
		t.Errorf("energy CV = %v, want ≤ target 0.05", res.EnergyJ.CV)
	}
}

// TestAdaptiveRepsRunToCapOnNoisyConfig is the dual: an energy source whose
// CV never reaches the target must run all the way to MaxReps and not be
// marked converged.
func TestAdaptiveRepsRunToCapOnNoisyConfig(t *testing.T) {
	// Period-3 cycle keeps the sample CV ~0.9 forever.
	m := &scriptedMeter{counter: sampleSequenceCounter([]uint64{100, 100, 10000, 100, 100, 10000, 100, 100, 10000, 100, 100, 10000})}
	r := &Runner{Meter: m}
	space := adaptiveSpace(t)
	space.MaxCV = 0 // keep every sample so the count is exact
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Samples) != 10 {
		t.Errorf("executed %d reps, want the MaxReps cap of 10", len(res.Samples))
	}
	if res.Converged {
		t.Error("noisy config marked converged")
	}
}

// TestFixedRepsUnchanged pins the legacy behavior: with the Reps shorthand
// exactly Reps repetitions run, and even a zero-CV config is not labeled
// converged — nothing stopped early.
func TestFixedRepsUnchanged(t *testing.T) {
	m := &scriptedMeter{counter: constantDeltaCounter(1000)}
	r := &Runner{Meter: m}
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	space.CVTarget = 0.05 // the CLI default; must be inert when min == max reps
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(results[0].Samples); n != 3 {
		t.Errorf("fixed-rep run executed %d reps, want 3", n)
	}
	if results[0].Converged {
		t.Error("fixed-rep run marked converged despite no early stop")
	}
}

// latencyMeter models a meter whose reads cost a fixed latency: its internal
// clock advances by latency on every Read and energy accrues at powerW on
// that clock. Thread wall time never advances this clock, so every
// repetition's meter window is exactly one read latency and its energy delta
// exactly powerW × latency.
type latencyMeter struct {
	powerW  float64
	latency time.Duration
	clock   time.Time
	epoch   time.Time
}

func newLatencyMeter(powerW float64, latency time.Duration) *latencyMeter {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return &latencyMeter{powerW: powerW, latency: latency, clock: base, epoch: base}
}

func (m *latencyMeter) Name() string            { return "latency" }
func (m *latencyMeter) Domains() []meter.Domain { return []meter.Domain{{Name: "lat-0"}} }
func (m *latencyMeter) Read() (meter.Reading, error) {
	m.clock = m.clock.Add(m.latency)
	elapsed := m.clock.Sub(m.epoch).Seconds()
	return meter.Reading{At: m.clock, Counters: []uint64{uint64(elapsed * m.powerW * 1e6)}}, nil
}

// TestPowerUsesMeterWindow is the power-window regression test: the energy
// delta is measured over the meter's before→after window, so PowerW must be
// energy over that same window. With a 50 ms read latency the meter window
// is 50 ms while the threads' wall clock (measured between the reads) is
// microseconds; dividing by the thread clock — the old computation — reports
// thousands of watts for a 40 W meter.
func TestPowerUsesMeterWindow(t *testing.T) {
	const watts = 40.0
	m := newLatencyMeter(watts, 50*time.Millisecond)
	r := &Runner{Meter: m}
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range res.Samples {
		if diff := s.MeterTimeS - 0.05; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("sample %d MeterTimeS = %v, want the meter's own 0.05 s window", i, s.MeterTimeS)
		}
		if s.TimeS <= 0 {
			t.Errorf("sample %d TimeS = %v, want positive thread wall time", i, s.TimeS)
		}
		if diff := s.PowerW - watts; diff < -watts*0.01 || diff > watts*0.01 {
			t.Errorf("sample %d PowerW = %v W, want %v W: power must divide the meter-window energy by the meter window, not the thread wall time",
				i, s.PowerW, watts)
		}
	}
}

// TestScriptedMeterPowerFallsBackToThreadClock: meters that do not timestamp
// readings (zero Reading.At) have no meter window; power falls back to the
// thread wall clock instead of reporting zero.
func TestScriptedMeterPowerFallsBackToThreadClock(t *testing.T) {
	m := &scriptedMeter{counter: constantDeltaCounter(1_000_000)} // 1 J per rep
	r := &Runner{Meter: m}
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range results[0].Samples {
		if s.MeterTimeS != 0 {
			t.Errorf("sample %d MeterTimeS = %v, want 0 for an At-less meter", i, s.MeterTimeS)
		}
		if s.PowerW <= 0 {
			t.Errorf("sample %d PowerW = %v, want positive fallback power", i, s.PowerW)
		}
	}
}

func TestSamplingAttachesSeries(t *testing.T) {
	m := meter.NewMock(42)
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	space.SampleInterval = time.Millisecond
	r := &Runner{Meter: m}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.SampleInterval != time.Millisecond {
		t.Errorf("SampleInterval = %v, want 1ms", res.SampleInterval)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range res.Samples {
		if s.Series == nil {
			t.Fatalf("sample %d has no series", i)
		}
		if s.Series.IntervalS != 0.001 {
			t.Errorf("sample %d IntervalS = %v, want 0.001", i, s.Series.IntervalS)
		}
		if s.Series.StartAt.IsZero() {
			t.Errorf("sample %d series StartAt is zero", i)
		}
		// The final flush guarantees at least one point per repetition no
		// matter how short the kernel runs.
		if len(s.Series.Points) < 1 {
			t.Errorf("sample %d series has no points", i)
		}
		for j, pt := range s.Series.Points {
			if pt.TS <= 0 {
				t.Errorf("sample %d point %d TS = %v, want positive offset", i, j, pt.TS)
			}
			if len(pt.DomainUJ) != 1 {
				t.Errorf("sample %d point %d DomainUJ = %v, want one domain", i, j, pt.DomainUJ)
			}
		}
	}
}

func TestSamplingWithCountersCollectsEventSeries(t *testing.T) {
	m := meter.NewMock(42)
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{2}
	space.SampleInterval = time.Millisecond
	space.Counters = &perf.Spec{Backend: perf.BackendMock}
	r := &Runner{Meter: m}
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	events := perf.DefaultEvents()
	if res.Counters == nil {
		t.Fatal("no aggregated counters")
	}
	for i, s := range res.Samples {
		if s.Series == nil {
			t.Fatalf("sample %d has no series", i)
		}
		if len(s.Series.Events) != len(events) {
			t.Fatalf("sample %d series events = %v, want %v", i, s.Series.Events, events)
		}
		for j, pt := range s.Series.Points {
			if len(pt.Counts) != len(events) {
				t.Errorf("sample %d point %d has %d counts, want %d", i, j, len(pt.Counts), len(events))
			}
			for k, c := range pt.Counts {
				if c < 0 {
					t.Errorf("sample %d point %d count %s = %v, want non-negative", i, j, events[k], c)
				}
			}
		}
	}
}
