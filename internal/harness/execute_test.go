package harness

import (
	"context"
	"testing"

	"energybench/internal/meter"
)

// scriptedMeter returns counter values from a caller-provided function of
// the read index, so tests control the exact energy delta of every
// repetition (the executor reads the meter twice per rep: before and after).
type scriptedMeter struct {
	reads   int
	counter func(read int) uint64
}

func (m *scriptedMeter) Name() string            { return "scripted" }
func (m *scriptedMeter) Domains() []meter.Domain { return []meter.Domain{{Name: "scripted-0"}} }
func (m *scriptedMeter) Read() (meter.Reading, error) {
	v := m.counter(m.reads)
	m.reads++
	return meter.Reading{Counters: []uint64{v}}, nil
}

// constantDeltaCounter yields exactly deltaMicroJ between the before/after
// reads of every repetition and nothing in between.
func constantDeltaCounter(deltaMicroJ uint64) func(int) uint64 {
	return func(read int) uint64 { return deltaMicroJ * uint64((read+1)/2) }
}

// sampleSequenceCounter yields the given per-repetition energy deltas in
// order (repeating the last one), with no energy between repetitions.
func sampleSequenceCounter(deltasMicroJ []uint64) func(int) uint64 {
	return func(read int) uint64 {
		rep := read / 2
		var sum uint64
		for i := 0; i < rep && i < len(deltasMicroJ); i++ {
			sum += deltasMicroJ[i]
		}
		if rep >= len(deltasMicroJ) {
			sum += deltasMicroJ[len(deltasMicroJ)-1] * uint64(rep-len(deltasMicroJ)+1)
		}
		if read%2 == 1 {
			if rep < len(deltasMicroJ) {
				sum += deltasMicroJ[rep]
			} else {
				sum += deltasMicroJ[len(deltasMicroJ)-1]
			}
		}
		return sum
	}
}

func adaptiveSpace(t *testing.T) Space {
	s := tinySpace(t)
	s.Specs = s.Specs[:1]
	s.ThreadCounts = []int{1}
	s.Warmup = 1
	s.Reps = 0
	s.MinReps = 3
	s.MaxReps = 10
	s.CVTarget = 0.05
	return s
}

// TestAdaptiveRepsStopEarlyOnStableConfig is the acceptance-criteria test:
// with a low-variance (here: perfectly constant) energy source, adaptive
// repetitions must stop at the minimum rep count, well under --max-reps.
func TestAdaptiveRepsStopEarlyOnStableConfig(t *testing.T) {
	m := &scriptedMeter{counter: constantDeltaCounter(1000)}
	r := &Runner{Meter: m}
	results, err := r.Run(context.Background(), adaptiveSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Samples) != 3 {
		t.Errorf("executed %d reps, want exactly MinReps=3 for a zero-CV config (MaxReps=10)", len(res.Samples))
	}
	if !res.Converged {
		t.Error("result not marked converged")
	}
	if res.EnergyJ.CV > 0.05 {
		t.Errorf("energy CV = %v, want ≤ target 0.05", res.EnergyJ.CV)
	}
}

// TestAdaptiveRepsRunToCapOnNoisyConfig is the dual: an energy source whose
// CV never reaches the target must run all the way to MaxReps and not be
// marked converged.
func TestAdaptiveRepsRunToCapOnNoisyConfig(t *testing.T) {
	// Period-3 cycle keeps the sample CV ~0.9 forever.
	m := &scriptedMeter{counter: sampleSequenceCounter([]uint64{100, 100, 10000, 100, 100, 10000, 100, 100, 10000, 100, 100, 10000})}
	r := &Runner{Meter: m}
	space := adaptiveSpace(t)
	space.MaxCV = 0 // keep every sample so the count is exact
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if len(res.Samples) != 10 {
		t.Errorf("executed %d reps, want the MaxReps cap of 10", len(res.Samples))
	}
	if res.Converged {
		t.Error("noisy config marked converged")
	}
}

// TestFixedRepsUnchanged pins the legacy behavior: with the Reps shorthand
// exactly Reps repetitions run, and even a zero-CV config is not labeled
// converged — nothing stopped early.
func TestFixedRepsUnchanged(t *testing.T) {
	m := &scriptedMeter{counter: constantDeltaCounter(1000)}
	r := &Runner{Meter: m}
	space := tinySpace(t)
	space.Specs = space.Specs[:1]
	space.ThreadCounts = []int{1}
	space.CVTarget = 0.05 // the CLI default; must be inert when min == max reps
	results, err := r.Run(context.Background(), space)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(results[0].Samples); n != 3 {
		t.Errorf("fixed-rep run executed %d reps, want 3", n)
	}
	if results[0].Converged {
		t.Error("fixed-rep run marked converged despite no early stop")
	}
}
