package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Scheduler runs a planned trial list with bounded parallelism under a
// core-leasing discipline: a pinned trial is *allocated* onto physical
// cores that are entirely free at dispatch time — the placement policy's
// topology walk is re-run over just those free cores, and the resulting
// explicit CPU assignment is stamped into the trial (Trial.CPUs) and leased
// until the trial finishes. Two concurrently running trials therefore never
// share a core or an SMT sibling pair, and compact/scatter semantics hold
// *within* each trial even when several run at once. Co-run trials allocate
// the union of both specs' interleaved CPU sets in one atomic step, and
// unpinned (PlaceNone) trials lease nothing — they are bounded only by
// Parallel.
//
// Parallel trials share the machine's energy counters, so concurrent
// execution only yields meaningful absolute energies when the meter's
// domains don't overlap across trials (mock sweeps, per-core counters, or
// functional/CI runs). The core lease keeps the *performance* side honest:
// no two trials contend for the same execution resources.
//
// Results are fanned into the sink under a mutex, one Consume at a time, so
// per-configuration store flushing, --resume keys, and SIGINT durability
// behave exactly as in the serial pipeline. A trial that fails — most
// commonly a crashed or timed-out worker child — is recorded as a
// *TrialError and the sweep continues; the joined failures come back as the
// final error, so one killed worker loses one trial, not the campaign. A
// pinned trial wider than the whole lease table is rejected the same way
// before dispatch: it could never be allocated, so waiting for it would
// stall the sweep forever.
type Scheduler struct {
	// Executor runs each trial; required. Use Subprocess for trials that
	// must not share the coordinator's address space.
	Executor Executor
	// Parallel is the maximum number of concurrently running trials;
	// values below 1 mean serial.
	Parallel int
	// Log, when non-nil, receives one progress line per finished trial.
	Log func(format string, args ...any)
	// groups overrides the sysfs CPU topology in tests; nil means the
	// machine's own coreGroups().
	groups [][]int
}

// trialUnits is the number of worker threads the trial runs (co-runs
// interleave one unit per spec per thread).
func trialUnits(t Trial) int {
	units := t.Threads
	if t.IsCoRun() {
		units *= 2
	}
	return units
}

// uniqueCPUs returns the sorted distinct CPU ids of an assignment.
func uniqueCPUs(cpus []int) []int {
	seen := map[int]bool{}
	var uniq []int
	for _, c := range cpus {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	sort.Ints(uniq)
	return uniq
}

// RunPlan sweeps the trials, dispatching any pending trial that can be
// allocated onto currently free cores whenever a parallelism slot is open
// (not strictly in plan order — a blocked compact trial does not starve an
// independent scatter trial). It returns after every started trial has
// finished. The error joins the context error (if interrupted), the first
// sink error (if any), and one *TrialError per failed trial. Every result
// consumed before a sink failure is already durable in the sink; results
// finishing after a sink failure are reported as discarded-trial errors
// rather than pushed into the broken sink.
func (s *Scheduler) RunPlan(ctx context.Context, trials []Trial, sink ResultSink) error {
	if s.Executor == nil {
		return fmt.Errorf("harness: scheduler has no executor")
	}
	if sink == nil {
		sink = SinkFunc(func(Result) error { return nil })
	}
	par := s.Parallel
	if par < 1 {
		par = 1
	}
	groups := s.groups
	if groups == nil {
		groups = coreGroups()
	}
	totalCPUs := 0
	for _, g := range groups {
		totalCPUs += len(g)
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		leased    = map[int]bool{}
		running   = 0
		finished  = 0
		trialErrs []error
		sinkErr   error
	)
	total := len(trials)

	// A pinned trial wider than the whole lease table can never be
	// allocated: no amount of waiting frees CPUs that don't exist. Reject
	// such trials up front as per-trial failures so the sweep proceeds
	// instead of degrading their placement (or stalling behind them).
	var pending []Trial
	for _, t := range trials {
		if t.Placement != PlaceNone && totalCPUs > 0 && trialUnits(t) > totalCPUs {
			finished++
			trialErrs = append(trialErrs, &TrialError{Trial: t, Err: fmt.Errorf(
				"harness: placement %s needs %d CPUs but only %d are leasable: the trial can never be scheduled",
				t.Placement, trialUnits(t), totalCPUs)})
			if s.Log != nil {
				s.Log("[%d/%d] %-20s threads=%d placement=%-7s REJECTED: needs %d CPUs, machine leases %d",
					finished, total, t.Name(), t.Threads, t.Placement, trialUnits(t), totalCPUs)
			}
			continue
		}
		pending = append(pending, t)
	}

	// A context cancellation must wake the dispatch loop out of cond.Wait
	// so it stops launching and drains the in-flight trials (whose
	// executors observe the same ctx and return promptly).
	stopWatch := context.AfterFunc(ctx, func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	defer stopWatch()

	// allocate places a pinned trial onto the cores that are entirely free
	// right now: the placement walk runs over just those cores, so the
	// trial keeps its compact/scatter semantics without colliding with any
	// in-flight trial's CPUs. It must see every CPU it needs (trials wider
	// than the machine were rejected above); with fewer free it waits
	// rather than degrade the placement. Returns the per-unit assignment
	// and whether allocation succeeded. Callers hold mu.
	allocate := func(t Trial) ([]int, bool) {
		if t.Placement == PlaceNone || totalCPUs == 0 {
			// Unpinned, or no usable topology: nothing to lease — the
			// executor falls back to its own placement walk.
			return nil, true
		}
		units := trialUnits(t)
		var freeGroups [][]int
		freeCPUs := 0
		for _, g := range groups {
			free := true
			for _, c := range g {
				if leased[c] {
					free = false
					break
				}
			}
			if free {
				freeGroups = append(freeGroups, g)
				freeCPUs += len(g)
			}
		}
		if freeCPUs < units {
			return nil, false
		}
		return assignFromGroups(t.Placement, units, freeGroups), true
	}

	launch := func(t Trial, assignment []int) {
		t.CPUs = assignment
		lease := uniqueCPUs(assignment)
		for _, c := range lease {
			leased[c] = true
		}
		running++
		go func() {
			res, err := s.Executor.Execute(ctx, t)
			mu.Lock()
			defer mu.Unlock()
			for _, c := range lease {
				delete(leased, c)
			}
			running--
			finished++
			switch {
			case err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()):
				// A sweep-level cancellation (SIGINT, caller deadline)
				// reaches every in-flight trial; reporting it once via the
				// joined ctx error is enough — N per-trial "failures" would
				// misattribute the user's own interrupt to the trials.
			case err != nil:
				trialErrs = append(trialErrs, &TrialError{Trial: t, Err: err})
				if s.Log != nil {
					s.Log("[%d/%d] %-20s threads=%d placement=%-7s FAILED: %v",
						finished, total, t.Name(), t.Threads, t.Placement, err)
				}
			case sinkErr != nil:
				// The sink already failed: pushing more results into it
				// would violate its abort contract, so this measurement is
				// lost — record that loss per trial instead of dropping it
				// silently.
				trialErrs = append(trialErrs, &TrialError{Trial: t,
					Err: fmt.Errorf("harness: result discarded: sink failed before this trial finished")})
				if s.Log != nil {
					s.Log("[%d/%d] %-20s threads=%d placement=%-7s DISCARDED: sink failed earlier",
						finished, total, t.Name(), t.Threads, t.Placement)
				}
			default:
				// The fan-in point: one Consume at a time, under the same
				// mutex as the lease table, so sinks see the serial
				// contract they were written against.
				if err := sink.Consume(res); err != nil {
					sinkErr = fmt.Errorf("harness: sink: %w", err)
				} else if s.Log != nil {
					logTrialResult(s.Log, finished, total, res)
				}
			}
			cond.Broadcast()
		}()
	}

	mu.Lock()
	for {
		if (ctx.Err() != nil || sinkErr != nil) && running == 0 {
			break // stop dispatching; in-flight trials have drained
		}
		if len(pending) == 0 && running == 0 {
			break // swept everything
		}
		launched := false
		if ctx.Err() == nil && sinkErr == nil && running < par {
			for i, t := range pending {
				if assignment, ok := allocate(t); ok {
					pending = append(pending[:i], pending[i+1:]...)
					launch(t, assignment)
					launched = true
					break
				}
			}
		}
		if launched {
			continue // try to fill remaining slots before sleeping
		}
		cond.Wait()
	}
	mu.Unlock()

	var errs []error
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if sinkErr != nil {
		errs = append(errs, sinkErr)
	}
	errs = append(errs, trialErrs...)
	return errors.Join(errs...)
}
