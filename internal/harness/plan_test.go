package harness

import (
	"context"
	"strings"
	"testing"

	"energybench/internal/meter"
)

func TestPlanExpandsSpaceInOrder(t *testing.T) {
	space := tinySpace(t)
	space.Pairs = []Pair{{A: space.Specs[0], B: space.Specs[1]}}
	trials, err := Plan(space)
	if err != nil {
		t.Fatal(err)
	}
	// 2 specs × 2 thread counts + 1 pair × 2 thread counts, 1 placement.
	if len(trials) != 6 {
		t.Fatalf("got %d trials, want 6", len(trials))
	}
	for i, tr := range trials {
		if tr.Seq != i {
			t.Errorf("trials[%d].Seq = %d", i, tr.Seq)
		}
		if tr.MinReps != 3 || tr.MaxReps != 3 {
			t.Errorf("trials[%d]: rep bounds %d/%d, want 3/3 from Reps shorthand", i, tr.MinReps, tr.MaxReps)
		}
		if tr.Warmup != 1 {
			t.Errorf("trials[%d]: warmup %d, want 1", i, tr.Warmup)
		}
	}
	// Solo trials first (plan order is the sweep order), pairs after.
	if trials[0].IsCoRun() || !trials[4].IsCoRun() {
		t.Errorf("plan order wrong: solo trials must precede co-run trials")
	}
	if trials[4].Name() != "tiny-int+tiny-chase" {
		t.Errorf("pair trial name = %q", trials[4].Name())
	}
}

func TestPlanAppliesIterScaleAndRepBounds(t *testing.T) {
	space := tinySpace(t)
	space.IterScale = 0.5
	space.Reps = 2
	space.MinReps = 3
	space.MaxReps = 9
	space.CVTarget = 0.1
	trials, err := Plan(space)
	if err != nil {
		t.Fatal(err)
	}
	if trials[0].Iters != 1000 {
		t.Errorf("Iters = %d, want 1000 after 0.5 scale of 2000", trials[0].Iters)
	}
	if trials[0].MinReps != 3 || trials[0].MaxReps != 9 || trials[0].CVTarget != 0.1 {
		t.Errorf("rep budget = %d/%d cv %v, want 3/9 cv 0.1",
			trials[0].MinReps, trials[0].MaxReps, trials[0].CVTarget)
	}
}

func TestSpaceValidateRepBounds(t *testing.T) {
	s := tinySpace(t)
	s.Reps = 0
	s.MinReps = 0
	s.MaxReps = 5
	if err := s.Validate(); err == nil {
		t.Error("space with no minimum reps accepted")
	}
	s = tinySpace(t)
	s.MinReps = 5
	s.MaxReps = 2
	if err := s.Validate(); err == nil {
		t.Error("space with max < min reps accepted")
	}
	s = tinySpace(t)
	s.CVTarget = -1
	if err := s.Validate(); err == nil {
		t.Error("space with negative cv target accepted")
	}
	s = tinySpace(t)
	s.Reps = 0
	s.MinReps = 2
	if err := s.Validate(); err != nil {
		t.Errorf("MinReps without Reps rejected: %v", err)
	}
}

// TestTrialKeyMatchesResultKey pins the resume contract: the key a planned
// trial computes must equal the key derived from the result its execution
// produces, for both solo and co-run configurations.
func TestTrialKeyMatchesResultKey(t *testing.T) {
	space := tinySpace(t)
	space.Pairs = []Pair{{A: space.Specs[0], B: space.Specs[1]}}
	space.ThreadCounts = []int{2}
	space.Reps = 1
	space.Warmup = 0
	trials, err := Plan(space)
	if err != nil {
		t.Fatal(err)
	}
	m := meter.NewMock(42)
	exec := &InProcess{Meter: m}
	for _, tr := range trials {
		res, err := exec.Execute(context.Background(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ResultKey(res), tr.Key(m.Name()); got != want {
			t.Errorf("%s: ResultKey %q != Trial.Key %q", tr.Name(), got, want)
		}
	}
}

// TestParseKeyRoundTrip: ParseKey must invert configKey exactly — the store
// leans on it to answer filtered queries from key indexes alone.
func TestParseKeyRoundTrip(t *testing.T) {
	cases := []Result{
		{Spec: "int-alu", Threads: 1, Iters: 1000, Placement: PlaceNone, Meter: "mock"},
		{Spec: "fp-mac", Threads: 8, Iters: 250, Placement: PlaceScatter, Meter: "rapl"},
		{Spec: "chase-l1", SpecB: "chase-dram", Threads: 2, ThreadsB: 2,
			Iters: 1000, ItersB: 500, Placement: PlaceCompact, Meter: "mock"},
	}
	for _, r := range cases {
		key := ResultKey(r)
		kf, ok := ParseKey(key)
		if !ok {
			t.Errorf("ParseKey(%q) failed", key)
			continue
		}
		want := KeyFields{Spec: r.Spec, SpecB: r.SpecB, Threads: r.Threads, ThreadsB: r.ThreadsB,
			Placement: r.Placement, Meter: r.Meter, Iters: r.Iters, ItersB: r.ItersB}
		if kf != want {
			t.Errorf("ParseKey(%q) = %+v, want %+v", key, kf, want)
		}
	}

	// Foreign formats must be rejected, not half-parsed.
	for _, bad := range []string{
		"", "free text", "a|b|c|d|e|f", "a|b|t1+1|d|e|f", "a|b|t1+1|d|e|i1",
		"a|b|x1+1|d|e|i1+1", "a|b|t1+1x|d|e|i1+1", "a|b|t1+1|d|e|i1+1|extra",
	} {
		if _, ok := ParseKey(bad); ok {
			t.Errorf("ParseKey(%q) = ok, want rejection", bad)
		}
	}
}

func TestFilterTrials(t *testing.T) {
	trials, err := Plan(tinySpace(t))
	if err != nil {
		t.Fatal(err)
	}
	kept, skipped := FilterTrials(trials, func(tr Trial) bool { return tr.Threads == 2 })
	if skipped != 2 || len(kept) != 2 {
		t.Fatalf("kept %d skipped %d, want 2/2", len(kept), skipped)
	}
	for _, tr := range kept {
		if tr.Threads != 2 {
			continue
		}
		t.Errorf("kept a trial the filter should skip: %+v", tr)
	}
	// Seq numbers survive filtering so progress can reference the full plan.
	if kept[0].Seq == 0 && kept[1].Seq == 1 && trials[1].Threads == 2 {
		t.Errorf("Seq renumbered after filtering: %d,%d", kept[0].Seq, kept[1].Seq)
	}
}

func TestRunPlanNilSinkAndErrors(t *testing.T) {
	trials, err := Plan(tinySpace(t))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Meter: meter.NewMock(42)}
	if err := r.RunPlan(context.Background(), trials[:1], nil); err != nil {
		t.Errorf("nil sink must discard results, got %v", err)
	}
	if err := (&Runner{}).RunPlan(context.Background(), trials, nil); err == nil ||
		!strings.Contains(err.Error(), "no meter") {
		t.Errorf("runner without meter/executor: err = %v", err)
	}
}
