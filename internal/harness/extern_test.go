package harness

import (
	"strings"
	"testing"
	"time"

	"energybench/internal/bench"
)

func TestExternSpecValidate(t *testing.T) {
	good := ExternSpec{Workload: "stress", Exec: []string{"./stress"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*ExternSpec)
		wantErr string
	}{
		{"no name", func(s *ExternSpec) { s.Workload = "" }, "no workload name"},
		{"pipe in name", func(s *ExternSpec) { s.Workload = "a|b" }, "may not contain"},
		{"slash in name", func(s *ExternSpec) { s.Workload = "a/b" }, "may not contain"},
		{"no exec", func(s *ExternSpec) { s.Exec = nil }, "no exec command"},
		{"empty argv0", func(s *ExternSpec) { s.Exec = []string{""} }, "no exec command"},
		{"exit out of range", func(s *ExternSpec) { s.ExpectExit = 256 }, "outside 0..255"},
		{"negative timeout", func(s *ExternSpec) { s.Timeout = -time.Second }, "negative timeout"},
		{"unnamed component", func(s *ExternSpec) {
			s.Components = map[bench.Component]float64{"": 1}
		}, "unnamed component"},
		{"negative weight", func(s *ExternSpec) {
			s.Components = map[bench.Component]float64{"int-alu": -1}
		}, "negative weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted, want error containing %q", tc.wantErr)
			}
			if got := err.Error(); !strings.Contains(got, tc.wantErr) {
				t.Errorf("error %q does not contain %q", got, tc.wantErr)
			}
		})
	}
}

// TestExternKeyCompat pins the key grammar both ways: a workload-less key
// must stay byte-identical to the historical six-field form (so every
// pre-v5 store and resume file remains valid), and an extern trial's key
// must append exactly "|w:<workload>" and match the key of the result the
// executor produces for it.
func TestExternKeyCompat(t *testing.T) {
	kernel := Trial{Spec: bench.Spec{Name: "int-alu"}, Threads: 2, Iters: 1000, Placement: PlaceNone}
	if got, want := kernel.Key("mock"), "int-alu||t2+0|none|mock|i1000+0"; got != want {
		t.Errorf("kernel key = %q, want the historical six-field form %q", got, want)
	}

	ext := Trial{
		Spec: bench.Spec{Name: "stress", Iters: 1}, Threads: 2, Iters: 1,
		Placement: PlaceNone,
		Extern:    &ExternSpec{Workload: "stress", Exec: []string{"./stress"}},
	}
	if got, want := ext.Key("mock"), "stress||t2+0|none|mock|i1+0|w:stress"; got != want {
		t.Errorf("extern key = %q, want %q", got, want)
	}
	res := Result{Spec: "stress", Threads: 2, Iters: 1, Placement: PlaceNone,
		Meter: "mock", Workload: "stress"}
	if got, want := ResultKey(res), ext.Key("mock"); got != want {
		t.Errorf("ResultKey %q != Trial.Key %q", got, want)
	}
}

// TestParseKeyWorkloadDimension round-trips every trailing-dimension
// combination through ParseKey and rejects malformed trailers: the store's
// pushdown filters depend on parsing "|w:" without reading the record.
func TestParseKeyWorkloadDimension(t *testing.T) {
	cases := []Result{
		{Spec: "stress", Threads: 1, Iters: 1, Placement: PlaceNone, Meter: "mock",
			Workload: "stress"},
		{Spec: "stress", Threads: 4, Iters: 1, Placement: PlaceCompact, Meter: "rapl",
			Workload: "stress", Host: "h1"},
		{Spec: "app", Threads: 2, Iters: 1, Placement: PlaceScatter, Meter: "mock",
			Workload: "app", Host: "h2", Microarch: "Zen 3"},
		{Spec: "int-alu", Threads: 2, Iters: 500, Placement: PlaceNone, Meter: "mock",
			Host: "h3", Microarch: "Icelake"},
	}
	for _, r := range cases {
		key := ResultKey(r)
		kf, ok := ParseKey(key)
		if !ok {
			t.Errorf("ParseKey(%q) failed", key)
			continue
		}
		if kf.Workload != r.Workload || kf.Host != r.Host || kf.Microarch != r.Microarch {
			t.Errorf("ParseKey(%q): w=%q h=%q u=%q, want w=%q h=%q u=%q",
				key, kf.Workload, kf.Host, kf.Microarch, r.Workload, r.Host, r.Microarch)
		}
		if kf.Spec != r.Spec || kf.Threads != r.Threads {
			t.Errorf("ParseKey(%q): base fields %+v do not match %+v", key, kf, r)
		}
	}

	// Malformed trailers must be rejected whole, never half-parsed: empty
	// values, dimensions out of the strict w: → h: → u: order, duplicates,
	// and a u: with no preceding h:.
	base := "stress||t1+0|none|mock|i1+0"
	for _, bad := range []string{
		base + "|w:",
		base + "|w:a|w:b",
		base + "|h:h1|w:a",
		base + "|u:zen3",
		base + "|w:a|u:zen3",
		base + "|w:a|h:h1|u:zen3|x:extra",
		base + "|w:a|h:",
		base + "|w:a|h:h1|u:",
	} {
		if _, ok := ParseKey(bad); ok {
			t.Errorf("ParseKey(%q) = ok, want rejection", bad)
		}
	}
}
