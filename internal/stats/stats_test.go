package stats

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"uniform", []float64{2, 2, 2}, 2},
		{"mixed", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEq(got, tc.want) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"unsorted-dups", []float64{5, 1, 5, 1}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Median(tc.in); !almostEq(got, tc.want) {
				t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestStdDev(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 0},
		{"uniform", []float64{4, 4, 4}, 0},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 2.138089935299395}, // sample stddev
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := StdDev(tc.in); !almostEq(got, tc.want) {
				t.Errorf("StdDev(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestCV(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"zero-mean", []float64{-1, 1}, 0},
		{"uniform", []float64{5, 5}, 0},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 2.138089935299395 / 5},
		// Negated samples must report the same (positive) dispersion; a
		// signed CV would sit below any positive convergence target.
		{"negative-mean", []float64{-2, -4, -4, -4, -5, -5, -7, -9}, 2.138089935299395 / 5},
		{"negative-uniform", []float64{-5, -5}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := CV(tc.in); !almostEq(got, tc.want) {
				t.Errorf("CV(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestSummarizeNegativeMeanCV(t *testing.T) {
	s := Summarize([]float64{-2, -4, -4, -4, -5, -5, -7, -9})
	if want := 2.138089935299395 / 5; !almostEq(s.CV, want) {
		t.Errorf("Summarize CV = %v, want %v", s.CV, want)
	}
	if z := Summarize([]float64{-1, 1}); z.CV != 0 {
		t.Errorf("Summarize zero-mean CV = %v, want 0", z.CV)
	}
}

func TestRejectOutliers(t *testing.T) {
	tests := []struct {
		name         string
		in           []float64
		maxCV        float64
		minKeep      int
		wantKept     []float64
		wantRejected int
	}{
		{
			name:         "no-rejection-needed",
			in:           []float64{10, 10.1, 9.9},
			maxCV:        0.05,
			minKeep:      2,
			wantKept:     []float64{10, 10.1, 9.9},
			wantRejected: 0,
		},
		{
			name:         "single-spike-removed",
			in:           []float64{10, 10.2, 9.8, 100},
			maxCV:        0.05,
			minKeep:      2,
			wantKept:     []float64{10, 10.2, 9.8},
			wantRejected: 1,
		},
		{
			name:         "min-keep-floor",
			in:           []float64{1, 100, 10000},
			maxCV:        0.001,
			minKeep:      2,
			wantKept:     []float64{1, 100},
			wantRejected: 1,
		},
		{
			name:         "preserves-order",
			in:           []float64{9.9, 50, 10.1, 10},
			maxCV:        0.05,
			minKeep:      2,
			wantKept:     []float64{9.9, 10.1, 10},
			wantRejected: 1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			kept, rejected := RejectOutliers(tc.in, tc.maxCV, tc.minKeep)
			if rejected != tc.wantRejected {
				t.Errorf("rejected = %d, want %d", rejected, tc.wantRejected)
			}
			if len(kept) != len(tc.wantKept) {
				t.Fatalf("kept = %v, want %v", kept, tc.wantKept)
			}
			for i := range kept {
				if !almostEq(kept[i], tc.wantKept[i]) {
					t.Errorf("kept[%d] = %v, want %v", i, kept[i], tc.wantKept[i])
				}
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 {
		t.Errorf("N = %d, want 4", s.N)
	}
	if !almostEq(s.Mean, 2.5) || !almostEq(s.Median, 2.5) {
		t.Errorf("Mean/Median = %v/%v, want 2.5/2.5", s.Mean, s.Median)
	}
	if !almostEq(s.Min, 1) || !almostEq(s.Max, 4) {
		t.Errorf("Min/Max = %v/%v, want 1/4", s.Min, s.Max)
	}
	if !almostEq(s.CV, s.StdDev/s.Mean) {
		t.Errorf("CV = %v, want StdDev/Mean = %v", s.CV, s.StdDev/s.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero value", empty)
	}
}

func TestSummarizeRobust(t *testing.T) {
	s := SummarizeRobust([]float64{10, 10.2, 9.8, 100}, 0.05, 2)
	if s.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Rejected)
	}
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
	if s.Max > 11 {
		t.Errorf("Max = %v, outlier survived", s.Max)
	}
}
