package stats

import (
	"math"
	"testing"
)

// TestAccumulatorMatchesBatch checks the running Welford moments agree with
// the batch implementations after every push.
func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{5, 3.5, 4.25, 100, 4.1, 3.9, 0.004, 42}
	var a Accumulator
	for i, x := range xs {
		a.Push(x)
		prefix := xs[:i+1]
		if a.N() != len(prefix) {
			t.Fatalf("after %d pushes: N = %d", i+1, a.N())
		}
		if got, want := a.Mean(), Mean(prefix); math.Abs(got-want) > 1e-9 {
			t.Errorf("after %d pushes: Mean = %v, want %v", i+1, got, want)
		}
		if got, want := a.StdDev(), StdDev(prefix); math.Abs(got-want) > 1e-9 {
			t.Errorf("after %d pushes: StdDev = %v, want %v", i+1, got, want)
		}
		if got, want := a.CV(), CV(prefix); math.Abs(got-want) > 1e-9 {
			t.Errorf("after %d pushes: CV = %v, want %v", i+1, got, want)
		}
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 || a.CV() != 0 {
		t.Errorf("zero accumulator not all-zero: N=%d mean=%v sd=%v cv=%v",
			a.N(), a.Mean(), a.StdDev(), a.CV())
	}
	a.Push(7)
	if a.Mean() != 7 || a.StdDev() != 0 {
		t.Errorf("one sample: mean=%v sd=%v, want 7/0", a.Mean(), a.StdDev())
	}
}

func TestAccumulatorConverged(t *testing.T) {
	var a Accumulator
	a.Push(100)
	// A single sample has CV 0 but must never count as converged: the
	// minimum is clamped to two samples.
	if a.Converged(0.1, 1) {
		t.Error("converged on a single sample")
	}
	a.Push(100)
	if !a.Converged(0.1, 2) {
		t.Error("two identical samples (CV 0) not converged at target 0.1")
	}
	if a.Converged(0.1, 3) {
		t.Error("converged below minN")
	}
	// A non-positive target disables convergence even for identical samples.
	if a.Converged(0, 2) {
		t.Error("converged with target 0 (adaptive disabled)")
	}
	a.Push(100000)
	if a.Converged(0.1, 2) {
		t.Error("converged despite huge CV")
	}
}

func TestAccumulatorCVNegativeMean(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{-100, -1, -50} {
		a.Push(x)
	}
	if cv := a.CV(); cv <= 0 {
		t.Fatalf("CV of negative-mean samples = %v, want positive", cv)
	}
	// Noisy negative samples must not satisfy the stopping rule just
	// because the mean's sign flipped the CV.
	if a.Converged(0.05, 2) {
		t.Error("noisy negative-mean samples reported as converged")
	}

	var stable Accumulator
	stable.Push(-100)
	stable.Push(-101)
	if !stable.Converged(0.05, 2) {
		t.Error("tight negative-mean samples did not converge")
	}
}

func TestAccumulatorCVZeroMean(t *testing.T) {
	var a Accumulator
	a.Push(-1)
	a.Push(1)
	if cv := a.CV(); cv != 0 {
		t.Errorf("CV with zero mean = %v, want 0", cv)
	}
}
