package stats

import "math"

// Accumulator computes running mean/variance with Welford's algorithm, so the
// harness can check convergence (CV under a target) after every repetition
// without re-scanning the sample set. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Push adds one sample.
func (a *Accumulator) Push(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples pushed.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 before any sample.
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running sample standard deviation (n-1 denominator), or
// 0 for fewer than two samples.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// CV returns the running coefficient of variation (StdDev/|Mean|), or 0 when
// the mean is 0. Using the mean's magnitude keeps CV non-negative for
// negative-mean sample sets; a signed CV would satisfy any positive
// convergence target immediately and stop adaptive repetitions after minN.
func (a *Accumulator) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / math.Abs(a.mean)
}

// Converged reports whether the accumulated samples satisfy the CV-based
// stopping rule: at least minN samples (never fewer than two, since CV of a
// single sample is trivially zero) with CV at or below cvTarget. A
// non-positive cvTarget disables convergence, so fixed-rep sweeps never stop
// early.
func (a *Accumulator) Converged(cvTarget float64, minN int) bool {
	if cvTarget <= 0 {
		return false
	}
	if minN < 2 {
		minN = 2
	}
	return a.n >= minN && a.CV() <= cvTarget
}
