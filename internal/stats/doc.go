// Package stats aggregates repeated measurements: mean, median, standard
// deviation, coefficient of variation, and CV-driven outlier rejection in
// the style of the MICRO 2012 characterization methodology (repeat until the
// sample set is stable, discard perturbed runs).
package stats
