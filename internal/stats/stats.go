package stats

import (
	"math"
	"sort"
)

// Summary describes a sample set after (optional) outlier rejection.
type Summary struct {
	N        int     `json:"n"`
	Rejected int     `json:"rejected,omitempty"`
	Mean     float64 `json:"mean"`
	Median   float64 `json:"median"`
	StdDev   float64 `json:"stddev"`
	CV       float64 `json:"cv"` // StdDev / |Mean|, 0 if Mean is 0
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CV returns the coefficient of variation (StdDev/|Mean|), or 0 when the
// mean is 0. The magnitude of the mean is used so that sample sets with a
// negative mean still report positive dispersion — a signed CV would compare
// as "below target" against any positive threshold and defeat CV-driven
// stopping rules.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// RejectOutliers iteratively removes the sample farthest from the mean while
// the set's CV exceeds maxCV, keeping at least minKeep samples. It returns
// the surviving samples (in original order) and the number rejected. This
// discards repetitions perturbed by OS noise (interrupts, migrations)
// without assuming a distribution.
func RejectOutliers(xs []float64, maxCV float64, minKeep int) (kept []float64, rejected int) {
	if minKeep < 2 {
		minKeep = 2
	}
	kept = append([]float64(nil), xs...)
	for len(kept) > minKeep && CV(kept) > maxCV {
		m := Mean(kept)
		worst, dist := 0, -1.0
		for i, x := range kept {
			if d := math.Abs(x - m); d > dist {
				worst, dist = i, d
			}
		}
		kept = append(kept[:worst], kept[worst+1:]...)
		rejected++
	}
	return kept, rejected
}

// Summarize aggregates xs without outlier rejection.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Median: Median(xs), StdDev: StdDev(xs)}
	if s.Mean != 0 {
		s.CV = s.StdDev / math.Abs(s.Mean)
	}
	if len(xs) > 0 {
		s.Min, s.Max = xs[0], xs[0]
		for _, x := range xs[1:] {
			s.Min = math.Min(s.Min, x)
			s.Max = math.Max(s.Max, x)
		}
	}
	return s
}

// SummarizeRobust rejects outliers (CV threshold maxCV, keeping at least
// minKeep samples) and then summarizes the survivors, recording how many
// samples were dropped.
func SummarizeRobust(xs []float64, maxCV float64, minKeep int) Summary {
	kept, rejected := RejectOutliers(xs, maxCV, minKeep)
	s := Summarize(kept)
	s.Rejected = rejected
	return s
}
