// Package extwork runs external applications as metered regions: the
// execution tier next to the kernel executors that closes the paper's
// validation loop by measuring *real* workloads under the same meters,
// counters, placements, and store keys as the micro-benchmarks.
//
// A campaign's workloads: entries (extwork.Workload) expand into
// harness.Trial values carrying an ExternSpec instead of a kernel; the
// ExternExecutor builds the workload once, then per repetition launches the
// child frozen (SIGSTOP), pins it to the trial's CPU assignment, attaches
// per-task perf counters (inherited by threads the child spawns later, with
// a process-wide fallback), reads the energy meter, resumes the child
// (SIGCONT), and reads the meter again when it exits. Timeouts, crashes,
// and unexpected exit statuses surface as ordinary per-trial errors, so the
// parallel Scheduler wraps them in *TrialError and releases the trial's CPU
// leases exactly as for kernel trials. Results carry the workload name into
// the store's "|w:" key dimension (schema v5); model validation and the
// roofline report in internal/model consume them from there.
package extwork
