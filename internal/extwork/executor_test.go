package extwork

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/perf"
)

// needCmd skips the test when a helper binary (sh, sleep) is not on PATH —
// the failure-path tests drive real child processes.
func needCmd(t *testing.T, name string) {
	t.Helper()
	if _, err := exec.LookPath(name); err != nil {
		t.Skipf("%s not available: %v", name, err)
	}
}

// externTrial builds a minimal one-rep external-workload trial. The spec
// name doubles as the workload name, exactly as Workload.Trials plans it.
func externTrial(name string, argv []string) harness.Trial {
	return harness.Trial{
		Spec:      bench.Spec{Name: name, Iters: 1},
		Threads:   1,
		Placement: harness.PlaceNone,
		Iters:     1,
		MinReps:   1,
		MaxReps:   1,
		Extern: &harness.ExternSpec{
			Workload: name,
			Exec:     argv,
		},
	}
}

func testExecutor() *ExternExecutor {
	return &ExternExecutor{Meter: meter.NewMock(30)}
}

// stubExecutor is a kernel-trial fallback that records invocations and
// returns a canned result.
type stubExecutor struct {
	mu    sync.Mutex
	calls int
}

func (s *stubExecutor) Execute(_ context.Context, t harness.Trial) (harness.Result, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return harness.Result{
		Spec: t.Spec.Name, Threads: t.Threads, Iters: t.Iters,
		Placement: t.Placement, Meter: "stub",
	}, nil
}

func TestExecuteDelegatesKernelTrialsToFallback(t *testing.T) {
	kernel := harness.Trial{Spec: bench.Spec{Name: "int-alu"}, Threads: 1, Iters: 10,
		Placement: harness.PlaceNone, MinReps: 1, MaxReps: 1}

	stub := &stubExecutor{}
	e := &ExternExecutor{Meter: meter.NewMock(30), Fallback: stub}
	res, err := e.Execute(context.Background(), kernel)
	if err != nil {
		t.Fatalf("kernel trial through fallback: %v", err)
	}
	if res.Meter != "stub" || stub.calls != 1 {
		t.Errorf("fallback not used: res.Meter=%q calls=%d", res.Meter, stub.calls)
	}

	// Without a fallback a kernel trial is a structured refusal, not a panic.
	if _, err := testExecutor().Execute(context.Background(), kernel); err == nil ||
		!strings.Contains(err.Error(), "no fallback executor") {
		t.Errorf("kernel trial without fallback: err = %v", err)
	}
}

func TestExecuteRejectsInvalidSpecAndMissingMeter(t *testing.T) {
	bad := externTrial("bad|name", []string{"true"})
	if _, err := testExecutor().Execute(context.Background(), bad); err == nil ||
		!strings.Contains(err.Error(), "may not contain") {
		t.Errorf("invalid workload name: err = %v", err)
	}

	e := &ExternExecutor{} // no meter
	if _, err := e.Execute(context.Background(), externTrial("w", []string{"true"})); err == nil ||
		!strings.Contains(err.Error(), "no energy meter") {
		t.Errorf("meterless executor: err = %v", err)
	}
}

func TestExecuteMissingBinary(t *testing.T) {
	tr := externTrial("ghost", []string{filepath.Join(t.TempDir(), "no-such-binary")})
	_, err := testExecutor().Execute(context.Background(), tr)
	if err == nil || !strings.Contains(err.Error(), `launching workload "ghost"`) {
		t.Errorf("missing binary: err = %v", err)
	}
}

func TestExecuteExitStatus(t *testing.T) {
	needCmd(t, "sh")

	// Unexpected exit status fails the trial with the status and the
	// child's stderr tail in the message.
	tr := externTrial("crasher", []string{"sh", "-c", "echo boom >&2; exit 3"})
	_, err := testExecutor().Execute(context.Background(), tr)
	if err == nil || !strings.Contains(err.Error(), "exited with status 3, want 0") {
		t.Fatalf("unexpected exit: err = %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("stderr tail missing from error: %v", err)
	}

	// The same child succeeds when the campaign declares that status.
	tr.Extern.ExpectExit = 3
	res, err := testExecutor().Execute(context.Background(), tr)
	if err != nil {
		t.Fatalf("expected exit status 3: %v", err)
	}
	if len(res.Samples) != 1 || res.Workload != "crasher" {
		t.Errorf("result = %d samples, workload %q", len(res.Samples), res.Workload)
	}
}

func TestExecuteBuildFailureCachedAcrossTrials(t *testing.T) {
	needCmd(t, "sh")
	dir := t.TempDir()
	tr := externTrial("unbuildable", []string{"true"})
	tr.Extern.Dir = dir
	tr.Extern.Build = []string{"sh", "-c", "echo attempt >> build.log; echo no compiler >&2; exit 1"}

	e := testExecutor()
	for i := 0; i < 2; i++ {
		_, err := e.Execute(context.Background(), tr)
		if err == nil || !strings.Contains(err.Error(), `building workload "unbuildable"`) {
			t.Fatalf("trial %d: err = %v", i, err)
		}
		if !strings.Contains(err.Error(), "no compiler") {
			t.Errorf("trial %d: build output missing from error: %v", i, err)
		}
	}
	// The broken build ran once; its cached failure served the second trial.
	log, err := os.ReadFile(filepath.Join(dir, "build.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(log), "attempt"); got != 1 {
		t.Errorf("build step ran %d times, want 1 (cached failure)", got)
	}
}

func TestExecuteTimeoutKillsChild(t *testing.T) {
	needCmd(t, "sleep")
	tr := externTrial("sleeper", []string{"sleep", "30"})
	tr.Extern.Timeout = 100 * time.Millisecond

	start := time.Now()
	_, err := testExecutor().Execute(context.Background(), tr)
	if err == nil || !strings.Contains(err.Error(), "timed out after 100ms") {
		t.Fatalf("timeout: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timed-out trial took %v; the child was not killed promptly", elapsed)
	}
}

// noTaskMeter is an ActivityMeter without the TaskMeter extension: it can
// count the calling thread but cannot attach to another process.
type noTaskMeter struct{}

func (noTaskMeter) Name() string     { return "no-task" }
func (noTaskMeter) Events() []string { return []string{"instructions"} }
func (noTaskMeter) OpenThread(int, string) (perf.Session, error) {
	return nil, fmt.Errorf("unused")
}

func TestExecuteCounterFailures(t *testing.T) {
	needCmd(t, "sh")
	spec, err := perf.Spec{Backend: perf.BackendMock, Events: []string{"instructions"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tr := externTrial("counted", []string{"sh", "-c", "exit 0"})
	tr.Counters = &spec

	// Backend construction failure surfaces before any child is launched.
	e := testExecutor()
	e.newActivity = func(perf.Spec) (perf.ActivityMeter, error) {
		return nil, fmt.Errorf("planted backend failure")
	}
	if _, err := e.Execute(context.Background(), tr); err == nil ||
		!strings.Contains(err.Error(), "activity meter") ||
		!strings.Contains(err.Error(), "planted backend failure") {
		t.Errorf("backend failure: err = %v", err)
	}

	// A backend that cannot attach to another process is a structured
	// refusal naming the backend.
	e = testExecutor()
	e.newActivity = func(perf.Spec) (perf.ActivityMeter, error) { return noTaskMeter{}, nil }
	if _, err := e.Execute(context.Background(), tr); err == nil ||
		!strings.Contains(err.Error(), `cannot attach to another process`) {
		t.Errorf("non-TaskMeter backend: err = %v", err)
	}
}

// TestExecuteSuccessMetersChildAndCounters is the happy path end to end:
// ${THREADS} expands into the child's environment, the load-aware mock
// meter draws the planted model for the workload's declared mix, and the
// attached mock counter sessions recover the planted instruction rate.
func TestExecuteSuccessMetersChildAndCounters(t *testing.T) {
	needCmd(t, "sh")
	needCmd(t, "sleep")
	m := meter.NewMock(30)
	m.ModelW = map[string]float64{"int-alu": 5}
	spec, err := perf.Spec{Backend: perf.BackendMock, Events: []string{"instructions", "llc-misses"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	// The child verifies the env expansion itself: a wrong $T exits 9 and
	// fails the trial.
	tr := externTrial("stress", []string{"sh", "-c", `test "$T" = 2 || exit 9; sleep 0.2`})
	tr.Threads = 2
	tr.MinReps, tr.MaxReps = 2, 2
	tr.Counters = &spec
	tr.Extern.Env = map[string]string{"T": "${THREADS}"}
	tr.Extern.Components = map[bench.Component]float64{"int-alu": 1}

	e := &ExternExecutor{Meter: m}
	res, err := e.Execute(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "stress" || len(res.Samples) != 2 {
		t.Fatalf("result: workload %q, %d samples", res.Workload, len(res.Samples))
	}
	// Planted model: 30 W static + 5 W/thread × 2 int-alu threads.
	if want := 40.0; math.Abs(res.PowerW.Mean-want)/want > 0.01 {
		t.Errorf("PowerW = %.3f, want ~%.0f from the planted model", res.PowerW.Mean, want)
	}
	if !strings.HasSuffix(harness.ResultKey(res), "|w:stress") {
		t.Errorf("key %q lacks the workload dimension", harness.ResultKey(res))
	}
	if res.Counters == nil {
		t.Fatal("no counters on the result")
	}
	rate, ok := res.Counters.TotalRateHz("instructions", 0)
	if want := perf.MockRate("int-alu", "instructions"); !ok ||
		math.Abs(rate-want)/want > 0.2 {
		t.Errorf("instructions rate = %.3g (ok=%v), want ~%.3g from the mock table", rate, ok, want)
	}
}

// TestSchedulerExternFailuresDoNotWedge runs a mixed plan through the
// parallel Scheduler with a failing extern trial first: the failure must
// surface as one *TrialError while every later trial — extern and kernel —
// still executes, proving a crashed workload never wedges the sweep or its
// CPU leases.
func TestSchedulerExternFailuresDoNotWedge(t *testing.T) {
	needCmd(t, "sh")
	stub := &stubExecutor{}
	e := &ExternExecutor{Meter: meter.NewMock(30), Fallback: stub}

	bad := externTrial("ghost", []string{filepath.Join(t.TempDir(), "missing")})
	good := externTrial("ok", []string{"sh", "-c", "exit 0"})
	kernel := harness.Trial{Spec: bench.Spec{Name: "int-alu"}, Threads: 1, Iters: 10,
		Placement: harness.PlaceNone, MinReps: 1, MaxReps: 1}
	trials := []harness.Trial{bad, good, kernel}
	for i := range trials {
		trials[i].Seq = i
	}

	var mu sync.Mutex
	var got []harness.Result
	sink := harness.SinkFunc(func(r harness.Result) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, r)
		return nil
	})
	sched := &harness.Scheduler{Executor: e, Parallel: 1}
	err := sched.RunPlan(context.Background(), trials, sink)
	if err == nil {
		t.Fatal("scheduler swallowed the extern failure")
	}
	var te *harness.TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error is not a *TrialError: %v", err)
	}
	if te.Trial.Seq != 0 || !strings.Contains(te.Err.Error(), `launching workload "ghost"`) {
		t.Errorf("wrong trial blamed: seq=%d err=%v", te.Trial.Seq, te.Err)
	}
	if len(got) != 2 || stub.calls != 1 {
		t.Fatalf("after the failure %d results / %d kernel calls, want 2/1 (sweep continued)", len(got), stub.calls)
	}
	for _, r := range got {
		if r.Spec == "ok" && r.Workload != "ok" {
			t.Errorf("extern result lost its workload: %+v", r)
		}
	}
}

func TestExpandVarsAndChildEnv(t *testing.T) {
	argv := expandArgv([]string{"bench", "-t", "${THREADS}", "--pin=${CPUS}"}, 4, []int{2, 0, 2})
	want := []string{"bench", "-t", "4", "--pin=0,2"}
	for i := range want {
		if argv[i] != want[i] {
			t.Errorf("argv[%d] = %q, want %q", i, argv[i], want[i])
		}
	}

	env := childEnv(map[string]string{"B_THREADS": "${THREADS}", "A_CPUS": "${CPUS}"}, 2, nil)
	if len(env) < 2 {
		t.Fatalf("childEnv too short: %d entries", len(env))
	}
	// Workload variables append after the inherited environment in sorted
	// key order, with ${CPUS} empty for an unpinned trial.
	tail := env[len(env)-2:]
	if tail[0] != "A_CPUS=" || tail[1] != "B_THREADS=2" {
		t.Errorf("env tail = %v, want [A_CPUS= B_THREADS=2]", tail)
	}
}
