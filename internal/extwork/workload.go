package extwork

import (
	"fmt"
	"time"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/perf"
)

// Workload is one campaign-declared external workload: how to build and
// launch it, which axes to sweep, and its nominal activity mix. The JSON
// shape is what campaign files' workloads: entries parse into; pointer
// fields distinguish "absent" from explicit zeros, mirroring SpaceConfig.
type Workload struct {
	// Name keys the workload: it becomes the "|w:" store dimension and the
	// label validation reports use. Must be unique within a campaign and
	// free of '|' and '/'.
	Name string `json:"name"`
	// Build, when set, is a command run once per workload before its first
	// trial (e.g. ["go", "build", "-o", ".scratch/app", "./cmd/app"]).
	Build []string `json:"build,omitempty"`
	// Exec is the argv to launch as the metered region. "${THREADS}" and
	// "${CPUS}" expand per trial.
	Exec []string `json:"exec"`
	// Env adds environment variables with the same expansion, so e.g.
	// OMP_NUM_THREADS joins the threads axis.
	Env map[string]string `json:"env,omitempty"`
	// Dir is the working directory for both the build step and the child.
	Dir string `json:"dir,omitempty"`
	// ExpectExit is the exit status that counts as success; default 0.
	ExpectExit *int `json:"expect_exit,omitempty"`
	// Timeout bounds one repetition's child process ("30s", "5m"); empty
	// falls back to the executor's trial timeout.
	Timeout string `json:"timeout,omitempty"`
	// Components is the workload's nominal per-thread activity mix over the
	// kernel component vocabulary (e.g. {int-alu: 1, dram: 0.2}): what
	// nominal-activity validation predicts from, and what the mock meter
	// plants load with.
	Components map[string]float64 `json:"components,omitempty"`
	// Swept axes; defaults: threads [1], placements [none].
	Threads    []int    `json:"threads,omitempty"`
	Placements []string `json:"placements,omitempty"`
	// Repetition budget; defaults: 1 rep, no warmup — real applications
	// are expensive, so campaigns opt in to more.
	Reps     *int     `json:"reps,omitempty"`
	MinReps  *int     `json:"min_reps,omitempty"`
	MaxReps  *int     `json:"max_reps,omitempty"`
	CVTarget *float64 `json:"cv_target,omitempty"`
	Warmup   *int     `json:"warmup,omitempty"`
	MaxCV    *float64 `json:"max_cv,omitempty"`
}

// intOr resolves a pointer-optional int.
func intOr(p *int, def int) int {
	if p != nil {
		return *p
	}
	return def
}

// floatOr resolves a pointer-optional float.
func floatOr(p *float64, def float64) float64 {
	if p != nil {
		return *p
	}
	return def
}

// Spec resolves the workload into the serializable trial payload.
func (w Workload) Spec() (harness.ExternSpec, error) {
	spec := harness.ExternSpec{
		Workload:   w.Name,
		Exec:       w.Exec,
		Env:        w.Env,
		Dir:        w.Dir,
		Build:      w.Build,
		ExpectExit: intOr(w.ExpectExit, 0),
	}
	if w.Timeout != "" {
		d, err := time.ParseDuration(w.Timeout)
		if err != nil || d <= 0 {
			return spec, fmt.Errorf("extwork: workload %q has bad timeout %q", w.Name, w.Timeout)
		}
		spec.Timeout = d
	}
	if len(w.Components) > 0 {
		spec.Components = make(map[bench.Component]float64, len(w.Components))
		for c, weight := range w.Components {
			spec.Components[bench.Component(c)] = weight
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// Validate checks the workload can be expanded into trials.
func (w Workload) Validate() error {
	if _, err := w.Spec(); err != nil {
		return err
	}
	for _, t := range w.Threads {
		if t <= 0 {
			return fmt.Errorf("extwork: workload %q has non-positive thread count %d", w.Name, t)
		}
	}
	for _, p := range w.Placements {
		if _, err := harness.ParsePlacement(p); err != nil {
			return fmt.Errorf("extwork: workload %q: %w", w.Name, err)
		}
	}
	minReps := intOr(w.MinReps, intOr(w.Reps, 1))
	maxReps := intOr(w.MaxReps, minReps)
	if minReps <= 0 {
		return fmt.Errorf("extwork: workload %q min reps must be positive, got %d", w.Name, minReps)
	}
	if maxReps < minReps {
		return fmt.Errorf("extwork: workload %q max reps %d below min reps %d", w.Name, maxReps, minReps)
	}
	if floatOr(w.CVTarget, 0) < 0 {
		return fmt.Errorf("extwork: workload %q cv target must be non-negative", w.Name)
	}
	if intOr(w.Warmup, 0) < 0 {
		return fmt.Errorf("extwork: workload %q warmup must be non-negative", w.Name)
	}
	return nil
}

// Trials expands the workload's threads × placements grid into extern
// trials, Seq numbered 0-based within the workload (callers re-sequence
// across a whole campaign plan). counters, when non-nil, must already be
// normalized; it attaches the campaign's counter spec to every trial.
func (w Workload) Trials(counters *perf.Spec) ([]harness.Trial, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	threads := w.Threads
	if len(threads) == 0 {
		threads = []int{1}
	}
	placements := w.Placements
	if len(placements) == 0 {
		placements = []string{string(harness.PlaceNone)}
	}
	minReps := intOr(w.MinReps, intOr(w.Reps, 1))
	maxReps := intOr(w.MaxReps, minReps)
	var trials []harness.Trial
	for _, n := range threads {
		for _, p := range placements {
			placement, err := harness.ParsePlacement(p)
			if err != nil {
				return nil, err
			}
			s := spec
			trials = append(trials, harness.Trial{
				Seq: len(trials),
				// The trial's Spec carries only the workload's name; there
				// is no kernel, and Iters is a fixed 1 so the key's i-field
				// stays well-formed (work is whatever the binary does).
				Spec:      bench.Spec{Name: w.Name, Iters: 1},
				Threads:   n,
				Placement: placement,
				Iters:     1,
				Warmup:    intOr(w.Warmup, 0),
				MinReps:   minReps,
				MaxReps:   maxReps,
				CVTarget:  floatOr(w.CVTarget, 0),
				MaxCV:     floatOr(w.MaxCV, 0),
				Counters:  counters,
				Extern:    &s,
			})
		}
	}
	return trials, nil
}
