package extwork

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/perf"
	"energybench/internal/stats"
)

// ExternExecutor runs external-workload trials: per repetition it launches
// the workload's binary as a child process and meters exactly the child's
// lifetime. Kernel trials are delegated to Fallback, so one executor serves
// a mixed campaign plan under the serial Runner or the parallel Scheduler
// unchanged.
//
// The metered section of every extern trial is serialized internally:
// energy counters are machine-global, so two concurrently metered children
// would corrupt each other's deltas (the same reason kernel trials refuse
// rapl with --parallel). Under the Scheduler, kernel trials still run
// concurrently with each other and with the setup/teardown of extern
// trials; only the child-runs-while-metered windows queue.
type ExternExecutor struct {
	// Meter reads energy around each child run; required for extern trials.
	Meter meter.EnergyMeter
	// Fallback executes trials without an ExternSpec (kernel trials); nil
	// makes such trials an error.
	Fallback harness.Executor
	// Timeout bounds one repetition's child process when the trial's own
	// ExternSpec carries no timeout; 0 means unbounded.
	Timeout time.Duration
	// Log, when non-nil, receives build-step progress lines.
	Log func(format string, args ...any)

	// Test seams; nil means the platform implementation.
	newActivity func(perf.Spec) (perf.ActivityMeter, error)
	stopProc    func(pid int) error
	contProc    func(pid int) error
	tasks       func(pid int) ([]int, error)
	affinity    func(pid int, cpus []int) error

	// runMu serializes the metered sections (see type comment).
	runMu sync.Mutex

	// buildMu/built make each workload's build step run once, with its
	// outcome (including failure) shared by every trial of the workload.
	buildMu sync.Mutex
	built   map[string]error
}

func (e *ExternExecutor) activityMeter(spec perf.Spec) (perf.ActivityMeter, error) {
	if e.newActivity != nil {
		return e.newActivity(spec)
	}
	return perf.NewMeter(spec)
}

func (e *ExternExecutor) stop(pid int) error {
	if e.stopProc != nil {
		return e.stopProc(pid)
	}
	return stopProcess(pid)
}

func (e *ExternExecutor) cont(pid int) error {
	if e.contProc != nil {
		return e.contProc(pid)
	}
	return contProcess(pid)
}

func (e *ExternExecutor) taskList(pid int) ([]int, error) {
	if e.tasks != nil {
		return e.tasks(pid)
	}
	return listTasks(pid)
}

func (e *ExternExecutor) setAffinity(pid int, cpus []int) error {
	if e.affinity != nil {
		return e.affinity(pid, cpus)
	}
	return setProcAffinity(pid, cpus)
}

// Execute runs one trial. Extern trials follow the kernel executors'
// repetition contract — Warmup discarded runs, then adaptive repetitions
// under the energy-CV target up to MaxReps — so downstream summaries, EDP,
// and convergence labeling behave identically.
func (e *ExternExecutor) Execute(ctx context.Context, t harness.Trial) (harness.Result, error) {
	if t.Extern == nil {
		if e.Fallback == nil {
			return harness.Result{}, fmt.Errorf("extwork: no fallback executor for kernel trial %s", t.Name())
		}
		return e.Fallback.Execute(ctx, t)
	}
	spec := t.Extern
	res := harness.Result{
		Spec:               t.Spec.Name,
		Threads:            t.Threads,
		Iters:              t.Iters,
		Placement:          t.Placement,
		Workload:           spec.Workload,
		WorkloadComponents: spec.Components,
	}
	if err := spec.Validate(); err != nil {
		return res, err
	}
	if e.Meter == nil {
		return res, fmt.Errorf("extwork: no energy meter configured")
	}
	res.Meter = e.Meter.Name()
	for _, d := range e.Meter.Domains() {
		res.Domains = append(res.Domains, d.Name)
	}

	cpus := t.CPUs
	if cpus == nil {
		cpus = harness.CPUAssignment(t.Placement, t.Threads)
	}

	if err := e.buildOnce(ctx, spec); err != nil {
		return res, err
	}

	var activity perf.ActivityMeter
	if t.Counters != nil {
		am, err := e.activityMeter(*t.Counters)
		if err != nil {
			return res, fmt.Errorf("extwork: activity meter: %w", err)
		}
		activity = am
	}

	e.runMu.Lock()
	defer e.runMu.Unlock()

	// A load-aware meter (the mock's planted linear model) draws power from
	// the running configuration: hand it the workload's declared activity
	// mix scaled by the thread count, the extern analogue of the kernel
	// executors' component→threads map.
	if la, ok := e.Meter.(meter.LoadAware); ok {
		load := map[string]float64{}
		for c, weight := range spec.Components {
			load[string(c)] += weight * float64(t.Threads)
		}
		la.SetLoad(load)
	}

	var conv stats.Accumulator
	var repCounts [][]perf.Counts
	var repWalls []float64
	for rep := 0; rep < t.Warmup+t.MaxReps; rep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sample, counts, err := e.runOnce(ctx, t, spec, cpus, activity)
		if err != nil {
			return res, err
		}
		if rep < t.Warmup {
			continue
		}
		res.Samples = append(res.Samples, sample)
		if counts != nil {
			repCounts = append(repCounts, counts)
			repWalls = append(repWalls, sample.TimeS)
		}
		conv.Push(sample.EnergyJ)
		if len(res.Samples) < t.MaxReps && conv.Converged(t.CVTarget, t.MinReps) {
			res.Converged = true
			break
		}
	}
	if activity != nil {
		res.Counters = buildExternCounters(activity.Name(), activity.Events(), repCounts, repWalls)
	}

	n := len(res.Samples)
	energies := make([]float64, n)
	times := make([]float64, n)
	powers := make([]float64, n)
	for i, s := range res.Samples {
		energies[i], times[i], powers[i] = s.EnergyJ, s.TimeS, s.PowerW
	}
	summarize := func(xs []float64) stats.Summary {
		if t.MaxCV > 0 {
			return stats.SummarizeRobust(xs, t.MaxCV, 2)
		}
		return stats.Summarize(xs)
	}
	res.EnergyJ = summarize(energies)
	res.TimeS = summarize(times)
	res.PowerW = summarize(powers)
	res.EDP = res.EnergyJ.Mean * res.TimeS.Mean
	res.EDDP = res.EDP * res.TimeS.Mean
	return res, nil
}

// buildOnce runs the workload's build step the first time any trial of the
// workload executes, caching the outcome — a failed build fails every trial
// of the workload with the same error instead of re-running a broken build
// per trial.
func (e *ExternExecutor) buildOnce(ctx context.Context, spec *harness.ExternSpec) error {
	if len(spec.Build) == 0 {
		return nil
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	if err, ok := e.built[spec.Workload]; ok {
		return err
	}
	if e.Log != nil {
		e.Log("building workload %s: %s", spec.Workload, strings.Join(spec.Build, " "))
	}
	cmd := exec.CommandContext(ctx, spec.Build[0], spec.Build[1:]...)
	cmd.Dir = spec.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		err = fmt.Errorf("extwork: building workload %q: %v%s", spec.Workload, err, outputSuffix(out))
	}
	if e.built == nil {
		e.built = map[string]error{}
	}
	e.built[spec.Workload] = err
	return err
}

// runOnce launches and meters one child run: start frozen (SIGSTOP before
// the shell-less child leaves the exec stub), pin, attach counters, read
// the meter, SIGCONT, wait, read again. The child's whole lifetime — and
// nothing else — falls between the meter reads.
func (e *ExternExecutor) runOnce(ctx context.Context, t harness.Trial, spec *harness.ExternSpec, cpus []int, activity perf.ActivityMeter) (harness.Sample, []perf.Counts, error) {
	timeout := spec.Timeout
	if timeout == 0 {
		timeout = e.Timeout
	}
	rctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	argv := expandArgv(spec.Exec, t.Threads, cpus)
	cmd := exec.CommandContext(rctx, argv[0], argv[1:]...)
	cmd.Dir = spec.Dir
	cmd.Env = childEnv(spec.Env, t.Threads, cpus)
	cmd.Stdout = io.Discard
	tail := &tailBuffer{limit: 2048}
	cmd.Stderr = tail
	// A child that ignores the kill (stopped, or reparenting games) must
	// not wedge the sweep: Wait gives up on its pipes after this delay.
	cmd.WaitDelay = 3 * time.Second

	if err := cmd.Start(); err != nil {
		return harness.Sample{}, nil, fmt.Errorf("extwork: launching workload %q: %w", spec.Workload, err)
	}
	pid := cmd.Process.Pid
	// fail tears down a half-launched child before surfacing a setup error.
	fail := func(err error) (harness.Sample, []perf.Counts, error) {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return harness.Sample{}, nil, err
	}
	if err := e.stop(pid); err != nil {
		return fail(fmt.Errorf("extwork: freezing workload %q: %w", spec.Workload, err))
	}
	if len(cpus) > 0 {
		if err := e.setAffinity(pid, uniqueCPUs(cpus)); err != nil {
			return fail(fmt.Errorf("extwork: pinning workload %q to CPUs %v: %w", spec.Workload, uniqueCPUs(cpus), err))
		}
	}
	var sessions []perf.Session
	if activity != nil {
		ss, err := e.attach(activity, pid, spec)
		if err != nil {
			return fail(fmt.Errorf("extwork: attaching counters to workload %q: %w", spec.Workload, err))
		}
		sessions = ss
		defer func() {
			for _, s := range sessions {
				s.Close()
			}
		}()
		for _, s := range sessions {
			if err := s.Start(); err != nil {
				return fail(fmt.Errorf("extwork: starting counters for workload %q: %w", spec.Workload, err))
			}
		}
	}
	before, err := e.Meter.Read()
	if err != nil {
		return fail(err)
	}
	t0 := time.Now()
	if err := e.cont(pid); err != nil {
		return fail(fmt.Errorf("extwork: resuming workload %q: %w", spec.Workload, err))
	}
	werr := cmd.Wait()
	elapsed := time.Since(t0).Seconds()
	var counts []perf.Counts
	var ctrErr error
	for _, s := range sessions {
		c, err := s.Stop()
		if err != nil {
			if ctrErr == nil {
				ctrErr = err
			}
			continue
		}
		counts = append(counts, c)
	}
	after, readErr := e.Meter.Read()

	// Classify the child's fate. A sweep-level cancellation is reported as
	// the context's own error so the Scheduler attributes it to the user's
	// interrupt, not to the trial.
	if err := ctx.Err(); err != nil {
		return harness.Sample{}, nil, err
	}
	if timeout > 0 && rctx.Err() != nil {
		return harness.Sample{}, nil, fmt.Errorf("extwork: workload %q timed out after %v%s", spec.Workload, timeout, tail.suffix())
	}
	code := 0
	if werr != nil {
		var ee *exec.ExitError
		if !errors.As(werr, &ee) {
			return harness.Sample{}, nil, fmt.Errorf("extwork: workload %q: %w", spec.Workload, werr)
		}
		code = ee.ExitCode()
		if code == -1 {
			return harness.Sample{}, nil, fmt.Errorf("extwork: workload %q killed: %v%s", spec.Workload, ee, tail.suffix())
		}
	}
	if code != spec.ExpectExit {
		return harness.Sample{}, nil, fmt.Errorf("extwork: workload %q exited with status %d, want %d%s", spec.Workload, code, spec.ExpectExit, tail.suffix())
	}
	if readErr != nil {
		return harness.Sample{}, nil, readErr
	}
	if ctrErr != nil {
		return harness.Sample{}, nil, fmt.Errorf("extwork: reading workload %q counters: %w", spec.Workload, ctrErr)
	}

	domainJ, err := meter.DeltaPerDomain(e.Meter, before, after)
	if err != nil {
		return harness.Sample{}, nil, err
	}
	var energy float64
	for _, j := range domainJ {
		energy += j
	}
	s := harness.Sample{EnergyJ: energy, TimeS: elapsed, DomainJ: domainJ}
	// Same window convention as the kernel executors: the energy delta
	// spans the meter's own read window, so power divides by that; the
	// child wall clock is the fallback for meters without timestamps.
	if w := after.At.Sub(before.At).Seconds(); w > 0 {
		s.MeterTimeS = w
		s.PowerW = energy / w
	} else if elapsed > 0 {
		s.PowerW = energy / elapsed
	}
	return s, counts, nil
}

// attach opens counter sessions on the frozen child. The preferred shape is
// one session per existing task (TID) — with the inherit bit, threads the
// child spawns after resume are counted by their spawning task's session —
// falling back to a single process-wide session when any per-task open
// fails, and erroring only when even that is impossible.
func (e *ExternExecutor) attach(activity perf.ActivityMeter, pid int, spec *harness.ExternSpec) ([]perf.Session, error) {
	tm, ok := activity.(perf.TaskMeter)
	if !ok {
		return nil, fmt.Errorf("counter backend %q cannot attach to another process", activity.Name())
	}
	hint := dominantComponent(spec)
	tids, err := e.taskList(pid)
	if err != nil || len(tids) == 0 {
		tids = []int{pid}
	}
	var sessions []perf.Session
	var openErr error
	for _, tid := range tids {
		s, err := tm.OpenTask(tid, -1, hint)
		if err != nil {
			openErr = err
			break
		}
		sessions = append(sessions, s)
	}
	if openErr == nil {
		return sessions, nil
	}
	for _, s := range sessions {
		s.Close()
	}
	s, err := tm.OpenTask(pid, -1, hint)
	if err != nil {
		return nil, errors.Join(openErr, err)
	}
	return []perf.Session{s}, nil
}

// dominantComponent picks the workload's highest-weight declared component
// as the mock backend's planted-rate hint (ties break lexicographically for
// determinism); the workload name stands in when no mix is declared.
func dominantComponent(spec *harness.ExternSpec) string {
	best, bestW := "", -1.0
	for c, w := range spec.Components {
		name := string(c)
		if w > bestW || (w == bestW && name < best) {
			best, bestW = name, w
		}
	}
	if best == "" {
		return spec.Workload
	}
	return best
}

// buildExternCounters folds per-repetition, per-session counts into the
// stored aggregate: one synthetic "thread" holding the child's process-wide
// totals. Rates divide the summed scaled counts by the repetition's child
// wall clock — not by time_enabled, which under inherited counters is the
// *sum* over the child's tasks and would understate the process-aggregate
// rate by the thread count.
func buildExternCounters(backend string, events []string, reps [][]perf.Counts, walls []float64) *harness.Counters {
	if len(reps) == 0 || len(events) == 0 {
		return nil
	}
	out := &harness.Counters{Backend: backend, Reps: len(reps)}
	out.Events = make([]harness.CounterEvent, len(events))
	for i, name := range events {
		out.Events[i].Event = name
	}
	th := harness.CounterThread{
		CPU:        -1,
		TotalMean:  make([]float64, len(events)),
		RateHzMean: make([]float64, len(events)),
	}
	n := float64(len(reps))
	for r, rep := range reps {
		for _, counts := range rep {
			for i, v := range counts.Values {
				if i >= len(events) {
					break
				}
				th.TotalMean[i] += v.Scaled / n
				if r < len(walls) && walls[r] > 0 {
					th.RateHzMean[i] += v.Scaled / walls[r] / n
				}
				if v.Multiplexed() {
					out.Events[i].Multiplexed = true
				}
			}
		}
	}
	for i := range out.Events {
		out.Events[i].TotalMean = th.TotalMean[i]
		out.Events[i].RateHzMean = th.RateHzMean[i]
	}
	out.Threads = []harness.CounterThread{th}
	return out
}

// expandArgv substitutes ${THREADS}/${CPUS} in every argv element.
func expandArgv(argv []string, threads int, cpus []int) []string {
	out := make([]string, len(argv))
	for i, a := range argv {
		out[i] = expandVars(a, threads, cpus)
	}
	return out
}

// childEnv builds the child's environment: the parent's own, then the
// workload's variables in sorted order (deterministic trials), expanded.
func childEnv(env map[string]string, threads int, cpus []int) []string {
	out := os.Environ()
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, k+"="+expandVars(env[k], threads, cpus))
	}
	return out
}

func expandVars(s string, threads int, cpus []int) string {
	return strings.NewReplacer(
		"${THREADS}", strconv.Itoa(threads),
		"${CPUS}", cpuListString(cpus),
	).Replace(s)
}

// cpuListString renders the unique CPU assignment as "0,2,4"; empty when
// the trial is unpinned.
func cpuListString(cpus []int) string {
	uniq := uniqueCPUs(cpus)
	parts := make([]string, len(uniq))
	for i, c := range uniq {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// uniqueCPUs returns the sorted distinct CPU ids of an assignment.
func uniqueCPUs(cpus []int) []int {
	seen := map[int]bool{}
	var uniq []int
	for _, c := range cpus {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	sort.Ints(uniq)
	return uniq
}

// tailBuffer keeps the last limit bytes written, for bounded stderr tails
// in error messages.
type tailBuffer struct {
	mu    sync.Mutex
	limit int
	buf   []byte
}

func (b *tailBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	if len(b.buf) > b.limit {
		b.buf = b.buf[len(b.buf)-b.limit:]
	}
	return len(p), nil
}

// suffix renders the tail as an error-message suffix; empty when the child
// wrote nothing.
func (b *tailBuffer) suffix() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(string(b.buf))
	if s == "" {
		return ""
	}
	return fmt.Sprintf(" (stderr: %s)", s)
}

// outputSuffix is suffix for one-shot captured output (the build step).
func outputSuffix(out []byte) string {
	s := strings.TrimSpace(string(out))
	if s == "" {
		return ""
	}
	if len(s) > 2048 {
		s = s[len(s)-2048:]
	}
	return fmt.Sprintf(": %s", s)
}
