//go:build !linux

package extwork

import (
	"fmt"
	"runtime"
)

// Without SIGSTOP/SIGCONT the child runs as soon as it starts; the meter
// window then includes a sliver of pre-setup execution. Extern trials stay
// usable on non-Linux hosts (mock meters, tests) with that caveat.
func stopProcess(int) error { return nil }
func contProcess(int) error { return nil }

// listTasks has no procfs to read; the process-wide fallback (the PID
// itself) is the only attachable task.
func listTasks(pid int) ([]int, error) { return []int{pid}, nil }

func setProcAffinity(pid int, cpus []int) error {
	return fmt.Errorf("extwork: process affinity is not supported on %s", runtime.GOOS)
}
