//go:build linux

package extwork

import (
	"fmt"
	"os"
	"strconv"
	"syscall"
	"unsafe"
)

// stopProcess freezes a just-started child with SIGSTOP so affinity and
// counter attachment happen before it does any real work; SIGSTOP cannot be
// caught or ignored, so the freeze is unconditional.
func stopProcess(pid int) error { return syscall.Kill(pid, syscall.SIGSTOP) }

// contProcess resumes a frozen child.
func contProcess(pid int) error { return syscall.Kill(pid, syscall.SIGCONT) }

// listTasks enumerates the process's kernel tasks (TIDs) from procfs.
func listTasks(pid int) ([]int, error) {
	ents, err := os.ReadDir(fmt.Sprintf("/proc/%d/task", pid))
	if err != nil {
		return nil, err
	}
	var tids []int
	for _, e := range ents {
		if tid, err := strconv.Atoi(e.Name()); err == nil {
			tids = append(tids, tid)
		}
	}
	return tids, nil
}

// setProcAffinity pins the child's main task to the union of the trial's
// CPUs via raw sched_setaffinity. Threads the child spawns afterwards
// inherit the mask, so the whole process stays inside the trial's CPU lease
// — taskset-style union affinity, since an opaque binary's threads cannot
// be pinned individually.
func setProcAffinity(pid int, cpus []int) error {
	var mask [16]uint64 // 1024 CPUs
	for _, c := range cpus {
		if c < 0 || c >= len(mask)*64 {
			return fmt.Errorf("extwork: cpu %d outside the affinity mask", c)
		}
		mask[c/64] |= 1 << (uint(c) % 64)
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		uintptr(pid), uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("extwork: sched_setaffinity(%d, %v): %w", pid, cpus, errno)
	}
	return nil
}
