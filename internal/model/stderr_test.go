package model

import (
	"math"
	"testing"

	"energybench/internal/bench"
)

// noisyObs builds observations from a known model P = 10 + 3·alu·threads
// with a fixed small perturbation pattern, so standard errors are nonzero
// but the estimates stay near truth.
func noisyObs() []Observation {
	noise := []float64{0.2, -0.15, 0.1, -0.05, 0.12, -0.18}
	var obs []Observation
	for i, threads := range []float64{1, 2, 3, 4, 5, 6} {
		obs = append(obs, Observation{
			Label:    "alu",
			PowerW:   10 + 3*threads + noise[i],
			Activity: map[bench.Component]float64{"int-alu": threads},
		})
	}
	return obs
}

func TestFitStandardErrors(t *testing.T) {
	fit, err := FitPower(noisyObs())
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if fit.DoF != 4 {
		t.Errorf("dof = %d, want 4 (6 observations, 2 parameters)", fit.DoF)
	}
	if fit.PStaticSEW <= 0 {
		t.Errorf("intercept SE = %v, want positive on a noisy fit", fit.PStaticSEW)
	}
	se, ok := fit.CoeffSEW["int-alu"]
	if !ok || se <= 0 {
		t.Errorf("coefficient SE = %v (ok=%v), want positive", se, ok)
	}
	ci := fit.CoeffCI95W["int-alu"]
	if len(ci) != 2 {
		t.Fatalf("coefficient CI = %v, want [lo, hi]", ci)
	}
	est := fit.CoeffW["int-alu"]
	wantLo, wantHi := est-1.96*se, est+1.96*se
	if math.Abs(ci[0]-wantLo) > 1e-12 || math.Abs(ci[1]-wantHi) > 1e-12 {
		t.Errorf("CI = %v, want [%v, %v]", ci, wantLo, wantHi)
	}
	if ci[0] > 3 || ci[1] < 3 {
		t.Errorf("CI %v excludes the true coefficient 3", ci)
	}

	rses, ok := fit.RSE()
	if !ok {
		t.Fatal("RSE unavailable on a fit with dof > 0")
	}
	if got, want := rses["int-alu"], se/math.Abs(est); math.Abs(got-want) > 1e-12 {
		t.Errorf("RSE[int-alu] = %v, want SE/|est| = %v", got, want)
	}
	maxRSE, ok := fit.MaxRSE()
	if !ok {
		t.Fatal("MaxRSE unavailable")
	}
	for _, r := range rses {
		if r > maxRSE {
			t.Errorf("MaxRSE %v below a parameter RSE %v", maxRSE, r)
		}
	}
}

// TestFitExactlyDeterminedOmitsErrors: with exactly as many observations as
// parameters there is no residual degree of freedom and no standard error.
func TestFitExactlyDeterminedOmitsErrors(t *testing.T) {
	fit, err := FitPower(noisyObs()[:2])
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if fit.DoF != 0 {
		t.Errorf("dof = %d, want 0", fit.DoF)
	}
	if fit.CoeffSEW != nil || fit.PStaticCI95W != nil {
		t.Errorf("exactly-determined fit carries standard errors: se=%v ci=%v", fit.CoeffSEW, fit.PStaticCI95W)
	}
	if _, ok := fit.RSE(); ok {
		t.Error("RSE claims availability with zero dof")
	}
	if _, ok := fit.MaxRSE(); ok {
		t.Error("MaxRSE claims availability with zero dof")
	}
}

func TestPredictionVariance(t *testing.T) {
	fit, err := FitPower(noisyObs())
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	// Leverage is smallest near the design's center of mass and grows toward
	// and beyond its edges.
	mid, ok := fit.PredictionVariance(map[bench.Component]float64{"int-alu": 3.5})
	if !ok {
		t.Fatal("prediction variance unavailable")
	}
	out, ok := fit.PredictionVariance(map[bench.Component]float64{"int-alu": 12})
	if !ok {
		t.Fatal("prediction variance unavailable")
	}
	if out <= mid {
		t.Errorf("extrapolation leverage %v not above interior leverage %v", out, mid)
	}
	// A component outside the fitted basis cannot be scored.
	if _, ok := fit.PredictionVariance(map[bench.Component]float64{"dram": 1}); ok {
		t.Error("prediction variance claims to score an unfitted component")
	}

	basis := fit.DesignBasis()
	if len(basis) != 1 || basis[0] != "int-alu" {
		t.Errorf("design basis = %v, want [int-alu]", basis)
	}
	inv := fit.DesignInverse()
	if len(inv) != 2 {
		t.Fatalf("design inverse is %dx, want 2x2", len(inv))
	}
	// Mutating the returned copy must not corrupt the fit's own state.
	inv[0][0] = 1e9
	again, _ := fit.PredictionVariance(map[bench.Component]float64{"int-alu": 3.5})
	if again != mid {
		t.Error("DesignInverse returned the fit's internal matrix, not a copy")
	}
}
