package model

import (
	"fmt"

	"energybench/internal/harness"
	"energybench/internal/store"
)

// ReportOptions steers BuildReport. The zero value produces the classic
// nominal-activity analysis document.
type ReportOptions struct {
	// Activity selects the fit's activity source (ActivityNominal when
	// empty).
	Activity string
	// Validate forces the external-workload validation section: BuildReport
	// fails when the store holds nothing to validate. When false the section
	// still appears automatically whenever workload results are present and
	// predictable.
	Validate bool
	// Roofline forces the roofline section, failing when it cannot be built.
	// When false the section appears automatically when workload results
	// are present and placeable.
	Roofline bool
}

// Report is the full analysis document: the fitted power model and marginals
// (the historical `analyze` output, field-compatible), plus the optional
// external-workload sections that close the paper's loop — predicted-vs-
// measured validation and roofline placement.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Activity      string `json:"activity"`
	Observations  int    `json:"observations"`
	// SkippedNoCounters counts stored results dropped from a counter-based
	// fit because they carry no measured activity vector.
	SkippedNoCounters int         `json:"skipped_no_counters,omitempty"`
	Fit               *Fit        `json:"fit"`
	Marginals         []Marginal  `json:"marginals"`
	Validation        *Validation `json:"validation,omitempty"`
	Roofline          *Roofline   `json:"roofline,omitempty"`
	// ValidationErr/RooflineErr record why an automatic section was left
	// out (e.g. the workloads carry no counters under --activity=counters).
	// Explicitly requested sections fail the whole report instead.
	ValidationErr string `json:"validation_error,omitempty"`
	RooflineErr   string `json:"roofline_error,omitempty"`
}

// BuildReport fits the power model over the store's micro-benchmark results
// and, when external-workload results are present (or explicitly requested),
// validates the fit against them and places them on the measured roofline.
// It is the single analysis path shared by the local `analyze` subcommand
// and the coordinator's GET /jobs/{id}/analyze endpoint.
func BuildReport(results []harness.Result, opts ReportOptions) (*Report, error) {
	activity := opts.Activity
	if activity == "" {
		activity = ActivityNominal
	}
	rep := &Report{SchemaVersion: store.SchemaVersion, Activity: activity}
	var obs []Observation
	var err error
	switch activity {
	case ActivityNominal:
		obs = FromResults(results)
	case ActivityCounters:
		if obs, rep.SkippedNoCounters, err = FromResultsCounters(results); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("model: unknown activity source %q (want %s|%s)", activity, ActivityNominal, ActivityCounters)
	}
	rep.Observations = len(obs)
	if rep.Fit, err = FitPower(obs); err != nil {
		return nil, err
	}
	rep.Marginals = Marginals(results)

	hasWorkloads := false
	for _, r := range results {
		if r.Workload != "" {
			hasWorkloads = true
			break
		}
	}
	if opts.Validate || hasWorkloads {
		v, err := Validate(rep.Fit, activity, results)
		switch {
		case err == nil:
			rep.Validation = v
		case opts.Validate:
			return nil, err
		default:
			rep.ValidationErr = err.Error()
		}
	}
	if opts.Roofline || hasWorkloads {
		rf, err := BuildRoofline(results)
		switch {
		case err == nil:
			rep.Roofline = rf
		case opts.Roofline:
			return nil, err
		default:
			rep.RooflineErr = err.Error()
		}
	}
	return rep, nil
}
