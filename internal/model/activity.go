package model

import (
	"fmt"

	"energybench/internal/bench"
	"energybench/internal/harness"
)

// Activity-source names shared by the CLI and campaign layers: how fit
// observations derive their per-component activity factors.
const (
	// ActivityNominal labels each observation with its workload: activity =
	// thread count on the kernel's component. Always available; blind to
	// what the hardware actually did.
	ActivityNominal = "nominal"
	// ActivityCounters derives activity from measured hardware event rates
	// (internal/perf), the paper's counter-based methodology.
	ActivityCounters = "counters"
)

// RateScale converts a measured event rate (events/second) into an activity
// factor: activity = rate / RateScale, i.e. billions of events per second.
// A GHz-class core saturating a component therefore scores activity of a
// few units per thread — the same numeric range as nominal thread counts,
// so fitted coefficients stay comparable across the two activity sources.
const RateScale = 1e9

// characteristicEvents maps each component to the hardware events whose
// rate drives that component's dynamic power, in preference order. The
// observation builder uses the first event the result actually counted:
//
//   - Compute components (and L1 hits) are driven by retired instructions.
//   - L2 activity is L1D misses — every L1 miss is an L2 access.
//   - L3 activity is also L1D-miss traffic (an L2-resident set misses only
//     L1), with LLC references as the fallback proxy.
//   - DRAM activity is LLC misses, each one a memory transaction.
var characteristicEvents = map[bench.Component][]string{
	bench.CompIntALU: {"instructions"},
	bench.CompFPU:    {"instructions"},
	bench.CompMixed:  {"instructions"},
	bench.CompL1:     {"l1d-loads", "instructions"},
	bench.CompL2:     {"l1d-misses", "cache-refs"},
	bench.CompL3:     {"l1d-misses", "cache-refs"},
	bench.CompDRAM:   {"llc-misses"},
}

// componentActivity derives one co-run group's activity factor from its
// measured rates.
func componentActivity(c *harness.Counters, comp bench.Component, group int) (float64, error) {
	prefs, ok := characteristicEvents[comp]
	if !ok {
		// Unknown component (e.g. a future kernel): fall back to retired
		// instructions, the universal work proxy.
		prefs = []string{"instructions"}
	}
	for _, ev := range prefs {
		if rate, ok := c.TotalRateHz(ev, group); ok {
			return rate / RateScale, nil
		}
	}
	return 0, fmt.Errorf("model: component %s needs one of %v but the result only counted %v (re-run with those events in --counters)",
		comp, prefs, countedEvents(c))
}

func countedEvents(c *harness.Counters) []string {
	names := make([]string, len(c.Events))
	for i, e := range c.Events {
		names[i] = e.Event
	}
	return names
}

// FromResultsCounters converts harness results into fit observations whose
// activity factors are *measured*: each result's per-component activity is
// its characteristic hardware event rate (normalized by RateScale) summed
// over the threads stressing that component, instead of the nominal thread
// count FromResults assumes. Results without counters are skipped and
// counted; fitting proceeds on the measured subset. An error is returned
// only when no result carries counters or a counted result lacks the events
// its component needs.
func FromResultsCounters(results []harness.Result) (obs []Observation, skipped int, err error) {
	for _, r := range results {
		// External workloads are validation targets, not fit observations.
		if r.Workload != "" {
			continue
		}
		if r.Counters == nil {
			skipped++
			continue
		}
		act := map[bench.Component]float64{}
		a, err := componentActivity(r.Counters, r.Component, 0)
		if err != nil {
			return nil, skipped, fmt.Errorf("%s/t%d/%s: %w", r.Spec, r.Threads, r.Placement, err)
		}
		act[r.Component] += a
		label := fmt.Sprintf("%s/t%d/%s", r.Spec, r.Threads, r.Placement)
		if r.IsCoRun() {
			b, err := componentActivity(r.Counters, r.ComponentB, 1)
			if err != nil {
				return nil, skipped, fmt.Errorf("%s+%s/t%d+%d/%s: %w", r.Spec, r.SpecB, r.Threads, r.ThreadsB, r.Placement, err)
			}
			act[r.ComponentB] += b
			label = fmt.Sprintf("%s+%s/t%d+%d/%s", r.Spec, r.SpecB, r.Threads, r.ThreadsB, r.Placement)
		}
		obs = append(obs, Observation{Label: label, PowerW: r.PowerW.Mean, Activity: act})
	}
	if len(obs) == 0 {
		return nil, skipped, fmt.Errorf("model: no stored results carry measured counters (re-run the sweep with --counters)")
	}
	return obs, skipped, nil
}
