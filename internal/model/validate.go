package model

import (
	"fmt"
	"math"
	"sort"

	"energybench/internal/bench"
	"energybench/internal/harness"
)

// WorkloadValidation is one external workload configuration's
// predicted-vs-measured comparison under the fitted model: the paper's
// headline check, applied to a real application instead of a held-out
// micro-benchmark.
type WorkloadValidation struct {
	Workload  string `json:"workload"`
	Label     string `json:"label"`
	Threads   int    `json:"threads"`
	Placement string `json:"placement"`
	// Activity is the vector the prediction used (nominal: declared
	// components × threads; counters: measured characteristic-event rates).
	Activity map[bench.Component]float64 `json:"activity,omitempty"`
	// Measured vs predicted power over the workload's run, and the same
	// comparison integrated into energy over the measured wall time.
	MeasuredW        float64 `json:"measured_w,omitempty"`
	PredictedW       float64 `json:"predicted_w,omitempty"`
	PowerErrPct      float64 `json:"power_err_pct,omitempty"`
	MeasuredEnergyJ  float64 `json:"measured_energy_j,omitempty"`
	PredictedEnergyJ float64 `json:"predicted_energy_j,omitempty"`
	EnergyErrPct     float64 `json:"energy_err_pct,omitempty"`
	// Err explains why this workload could not be predicted (no declared
	// components, missing counters, a component the fit never saw). Such
	// rows stay in the report — a validation that silently drops its
	// failures would overstate its coverage — but don't join the aggregate.
	Err string `json:"error,omitempty"`
}

// Validation aggregates the per-workload comparisons. MAPEPct is the mean
// absolute power-prediction error in percent over the successfully
// predicted workloads — the single number the paper reports.
type Validation struct {
	Activity  string               `json:"activity"`
	Workloads []WorkloadValidation `json:"workloads"`
	// Predicted/Failed count the rows that did and did not produce a
	// prediction.
	Predicted     int     `json:"predicted"`
	Failed        int     `json:"failed,omitempty"`
	MAPEPct       float64 `json:"mape_pct"`
	EnergyMAPEPct float64 `json:"energy_mape_pct"`
}

// workloadActivity builds the activity vector the model predicts from, in
// the same units the fit was trained on. Nominal mode mirrors FromResults:
// declared component weight × thread count. Counters mode mirrors
// FromResultsCounters: the measured characteristic-event rate of each
// *declared* component, normalized by RateScale — the declaration picks
// which components the workload exercises; the hardware says how hard.
func workloadActivity(r harness.Result, activity string) (map[bench.Component]float64, error) {
	if len(r.WorkloadComponents) == 0 {
		return nil, fmt.Errorf("workload declares no components (add components: to its campaign entry)")
	}
	act := map[bench.Component]float64{}
	switch activity {
	case "", ActivityNominal:
		for c, w := range r.WorkloadComponents {
			act[c] += w * float64(r.Threads)
		}
	case ActivityCounters:
		if r.Counters == nil {
			return nil, fmt.Errorf("result carries no counters (re-run the workload with counters enabled)")
		}
		for c := range r.WorkloadComponents {
			a, err := componentActivity(r.Counters, c, 0)
			if err != nil {
				return nil, err
			}
			act[c] += a
		}
	default:
		return nil, fmt.Errorf("model: unknown activity source %q (want %s|%s)", activity, ActivityNominal, ActivityCounters)
	}
	return act, nil
}

// Validate predicts every external-workload result's power under the fitted
// model and reports per-workload and aggregate error. results may be a whole
// store's contents; only workload results participate. An error is returned
// only when there is nothing to validate at all — individual unpredictable
// workloads are reported in place.
func Validate(fit *Fit, activity string, results []harness.Result) (*Validation, error) {
	if fit == nil {
		return nil, fmt.Errorf("model: validation needs a fitted model")
	}
	if activity == "" {
		activity = ActivityNominal
	}
	var rows []WorkloadValidation
	for _, r := range results {
		if r.Workload == "" {
			continue
		}
		row := WorkloadValidation{
			Workload:  r.Workload,
			Label:     fmt.Sprintf("%s/t%d/%s", r.Workload, r.Threads, r.Placement),
			Threads:   r.Threads,
			Placement: string(r.Placement),
		}
		act, err := workloadActivity(r, activity)
		if err == nil {
			for c := range act {
				if _, ok := fit.CoeffW[c]; !ok {
					err = fmt.Errorf("component %s was never fitted (no micro-benchmark stresses it in the store)", c)
					break
				}
			}
		}
		if err == nil && r.PowerW.Mean <= 0 {
			err = fmt.Errorf("measured power is not positive")
		}
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.Activity = act
		row.MeasuredW = r.PowerW.Mean
		row.PredictedW = fit.Predict(act)
		row.PowerErrPct = 100 * math.Abs(row.PredictedW-row.MeasuredW) / row.MeasuredW
		row.MeasuredEnergyJ = r.EnergyJ.Mean
		row.PredictedEnergyJ = row.PredictedW * r.TimeS.Mean
		if row.MeasuredEnergyJ > 0 {
			row.EnergyErrPct = 100 * math.Abs(row.PredictedEnergyJ-row.MeasuredEnergyJ) / row.MeasuredEnergyJ
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("model: the store holds no external-workload results to validate (declare workloads: in the campaign)")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	v := &Validation{Activity: activity, Workloads: rows}
	for _, row := range rows {
		if row.Err != "" {
			v.Failed++
			continue
		}
		v.Predicted++
		v.MAPEPct += row.PowerErrPct
		v.EnergyMAPEPct += row.EnergyErrPct
	}
	if v.Predicted == 0 {
		return nil, fmt.Errorf("model: no workload could be predicted: %s", rows[0].Err)
	}
	v.MAPEPct /= float64(v.Predicted)
	v.EnergyMAPEPct /= float64(v.Predicted)
	return v, nil
}
