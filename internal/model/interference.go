package model

import (
	"sort"

	"energybench/internal/harness"
)

// Interference compares one co-run configuration against the solo baselines
// of its two specs from the same dataset. Slowdowns are per-spec wall-time
// ratios (≥ 1 means the co-runner cost it time); excess energy is the
// co-run's energy minus the summed energy of running each spec's same
// workload alone.
type Interference struct {
	SpecA     string `json:"spec_a"`
	SpecB     string `json:"spec_b"`
	ThreadsA  int    `json:"threads_a"`
	ThreadsB  int    `json:"threads_b"`
	Placement string `json:"placement"`
	// Slowdowns: co-run wall time of the spec over its solo wall time at
	// identical work and thread count.
	SlowdownA float64 `json:"slowdown_a"`
	SlowdownB float64 `json:"slowdown_b"`
	// Energies: the co-run total vs the sum of the two solo baselines.
	CorunEnergyJ     float64 `json:"corun_energy_j"`
	SoloEnergyJ      float64 `json:"solo_energy_j"`
	ExcessEnergyJ    float64 `json:"excess_energy_j"`
	ExcessEnergyFrac float64 `json:"excess_energy_frac"`
	// Baseline placements actually used (same placement preferred, then
	// unpinned, then anything).
	BaselineA string `json:"baseline_a_placement"`
	BaselineB string `json:"baseline_b_placement"`
}

// soloBaseline finds the solo result measuring the same work as one side of
// a co-run: same spec, thread count, iteration count, and meter. Placement
// preference: the co-run's own placement, then "none", then any.
func soloBaseline(results []harness.Result, spec string, threads, iters int, meterName string, placement harness.Placement) (harness.Result, bool) {
	var fallback harness.Result
	var haveFallback bool
	var none harness.Result
	var haveNone bool
	for _, r := range results {
		if r.IsCoRun() || r.Spec != spec || r.Threads != threads || r.Iters != iters || r.Meter != meterName {
			continue
		}
		switch r.Placement {
		case placement:
			return r, true
		case harness.PlaceNone:
			none, haveNone = r, true
		default:
			fallback, haveFallback = r, true
		}
	}
	if haveNone {
		return none, true
	}
	return fallback, haveFallback
}

// Interferences derives interference metrics for every co-run in the
// dataset that has solo baselines for both of its specs. Co-runs without
// complete baselines are skipped. Output order is deterministic.
func Interferences(results []harness.Result) []Interference {
	var out []Interference
	for _, r := range results {
		if !r.IsCoRun() || r.TimeA == nil || r.TimeB == nil {
			continue
		}
		a, okA := soloBaseline(results, r.Spec, r.Threads, r.Iters, r.Meter, r.Placement)
		b, okB := soloBaseline(results, r.SpecB, r.ThreadsB, r.ItersB, r.Meter, r.Placement)
		if !okA || !okB || a.TimeS.Mean <= 0 || b.TimeS.Mean <= 0 {
			continue
		}
		soloE := a.EnergyJ.Mean + b.EnergyJ.Mean
		inf := Interference{
			SpecA:         r.Spec,
			SpecB:         r.SpecB,
			ThreadsA:      r.Threads,
			ThreadsB:      r.ThreadsB,
			Placement:     string(r.Placement),
			SlowdownA:     r.TimeA.Mean / a.TimeS.Mean,
			SlowdownB:     r.TimeB.Mean / b.TimeS.Mean,
			CorunEnergyJ:  r.EnergyJ.Mean,
			SoloEnergyJ:   soloE,
			ExcessEnergyJ: r.EnergyJ.Mean - soloE,
			BaselineA:     string(a.Placement),
			BaselineB:     string(b.Placement),
		}
		if soloE > 0 {
			inf.ExcessEnergyFrac = inf.ExcessEnergyJ / soloE
		}
		out = append(out, inf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpecA != out[j].SpecA {
			return out[i].SpecA < out[j].SpecA
		}
		if out[i].SpecB != out[j].SpecB {
			return out[i].SpecB < out[j].SpecB
		}
		if out[i].ThreadsA != out[j].ThreadsA {
			return out[i].ThreadsA < out[j].ThreadsA
		}
		return out[i].Placement < out[j].Placement
	})
	return out
}
