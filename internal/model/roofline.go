package model

import (
	"fmt"
	"sort"

	"energybench/internal/bench"
	"energybench/internal/harness"
)

// lineBytes is the cache-line granularity of chase-kernel traffic: every
// pointer-chase iteration touches one line, and every LLC miss moves one.
const lineBytes = 64

// chaseLevels are the memory-hierarchy components whose chase kernels
// define the machine's bandwidth ceilings.
var chaseLevels = map[bench.Component]bool{
	bench.CompL1: true, bench.CompL2: true, bench.CompL3: true, bench.CompDRAM: true,
}

// RooflinePoint places one external workload configuration on the roofline:
// measured instruction throughput against measured DRAM traffic, and the
// arithmetic intensity (instructions per byte) that ratio implies.
type RooflinePoint struct {
	Workload              string  `json:"workload"`
	Label                 string  `json:"label"`
	Threads               int     `json:"threads"`
	Placement             string  `json:"placement"`
	InstrPerSec           float64 `json:"instr_per_sec,omitempty"`
	DRAMBytesPerSec       float64 `json:"dram_bytes_per_sec,omitempty"`
	IntensityInstrPerByte float64 `json:"intensity_instr_per_byte,omitempty"`
	// DRAMUtilization is DRAMBytesPerSec over the dram ceiling, when known.
	DRAMUtilization float64 `json:"dram_utilization,omitempty"`
	// Bound classifies the point against the ridge: "memory" below the
	// ridge intensity, "compute" at or above it; empty when the ceilings
	// needed to place the ridge are missing.
	Bound string `json:"bound,omitempty"`
	// Err explains why the point could not be placed (no counters, missing
	// events).
	Err string `json:"error,omitempty"`
}

// Roofline is the CARM-style placement of every external workload against
// the machine's measured ceilings: bandwidth per memory level from the
// chase kernels' known bytes-per-iteration traffic, instruction throughput
// from the compute kernels' counters.
type Roofline struct {
	// CeilingsBytesPerSec maps each chase level (l1, l2, l3, dram) to the
	// best bandwidth any stored chase-kernel configuration achieved:
	// lineBytes × iters × threads / wall time.
	CeilingsBytesPerSec map[string]float64 `json:"ceilings_bytes_per_sec,omitempty"`
	// PeakInstrPerSec is the best measured aggregate instruction rate of
	// any stored kernel configuration (requires counter results).
	PeakInstrPerSec float64 `json:"peak_instr_per_sec,omitempty"`
	// RidgeInstrPerByte is PeakInstrPerSec over the dram ceiling: the
	// intensity below which a workload is memory-bound.
	RidgeInstrPerByte float64         `json:"ridge_instr_per_byte,omitempty"`
	Points            []RooflinePoint `json:"points"`
}

// BuildRoofline derives the ceilings from the store's kernel results and
// places every external-workload result against them. An error is returned
// only when the store holds no workload results at all.
func BuildRoofline(results []harness.Result) (*Roofline, error) {
	rf := &Roofline{CeilingsBytesPerSec: map[string]float64{}}
	for _, r := range results {
		if r.Workload != "" || r.IsCoRun() {
			continue
		}
		if chaseLevels[r.Component] && r.TimeS.Mean > 0 {
			bw := lineBytes * float64(r.Iters) * float64(r.Threads) / r.TimeS.Mean
			if bw > rf.CeilingsBytesPerSec[string(r.Component)] {
				rf.CeilingsBytesPerSec[string(r.Component)] = bw
			}
		}
		if r.Counters != nil {
			if rate, ok := r.Counters.TotalRateHz("instructions", 0); ok && rate > rf.PeakInstrPerSec {
				rf.PeakInstrPerSec = rate
			}
		}
	}
	if len(rf.CeilingsBytesPerSec) == 0 {
		rf.CeilingsBytesPerSec = nil
	}
	dram := 0.0
	if rf.CeilingsBytesPerSec != nil {
		dram = rf.CeilingsBytesPerSec[string(bench.CompDRAM)]
	}
	if dram > 0 && rf.PeakInstrPerSec > 0 {
		rf.RidgeInstrPerByte = rf.PeakInstrPerSec / dram
	}

	for _, r := range results {
		if r.Workload == "" {
			continue
		}
		p := RooflinePoint{
			Workload:  r.Workload,
			Label:     fmt.Sprintf("%s/t%d/%s", r.Workload, r.Threads, r.Placement),
			Threads:   r.Threads,
			Placement: string(r.Placement),
		}
		switch {
		case r.Counters == nil:
			p.Err = "result carries no counters (re-run the workload with counters enabled)"
		default:
			instr, okI := r.Counters.TotalRateHz("instructions", 0)
			miss, okM := r.Counters.TotalRateHz("llc-misses", 0)
			switch {
			case !okI:
				p.Err = "instructions not counted (add it to --counters)"
			case !okM:
				p.Err = "llc-misses not counted (add it to --counters)"
			default:
				p.InstrPerSec = instr
				p.DRAMBytesPerSec = miss * lineBytes
				if p.DRAMBytesPerSec > 0 {
					p.IntensityInstrPerByte = instr / p.DRAMBytesPerSec
				}
				if dram > 0 {
					p.DRAMUtilization = p.DRAMBytesPerSec / dram
				}
				if rf.RidgeInstrPerByte > 0 && p.DRAMBytesPerSec > 0 {
					if p.IntensityInstrPerByte < rf.RidgeInstrPerByte {
						p.Bound = "memory"
					} else {
						p.Bound = "compute"
					}
				} else if rf.RidgeInstrPerByte > 0 {
					// No observed DRAM traffic at all: the point sits on the
					// compute side by definition.
					p.Bound = "compute"
				}
			}
		}
		rf.Points = append(rf.Points, p)
	}
	if len(rf.Points) == 0 {
		return nil, fmt.Errorf("model: the store holds no external-workload results to place on the roofline")
	}
	sort.Slice(rf.Points, func(i, j int) bool { return rf.Points[i].Label < rf.Points[j].Label })
	return rf, nil
}
