package model

import (
	"math"
	"testing"
)

// seriesAt builds parallel (times, powers) slices on a fixed interval from a
// power function of the point index.
func seriesAt(n int, intervalS float64, powerAt func(i int) float64) (times, powers []float64) {
	times = make([]float64, n)
	powers = make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = float64(i+1) * intervalS
		powers[i] = powerAt(i)
	}
	return times, powers
}

// TestSegmentPhasesTwoPhase is the acceptance-criteria test: a planted
// two-regime series (42 W then 20 W, switching at point 10) must segment into
// exactly two phases with the boundary within one interval of the plant.
func TestSegmentPhasesTwoPhase(t *testing.T) {
	const interval = 0.01
	times, powers := seriesAt(20, interval, func(i int) float64 {
		if i < 10 {
			return 42
		}
		return 20
	})
	phases := SegmentPhases(times, powers, PhaseConfig{})
	if len(phases) != 2 {
		t.Fatalf("segmented into %d phases, want 2: %+v", len(phases), phases)
	}
	// Planted boundary: last 42 W point at t = 10·interval, first 20 W point
	// at t = 11·interval.
	if diff := math.Abs(phases[0].EndS - 10*interval); diff > interval {
		t.Errorf("phase 0 ends at %v s, want within one interval of %v s", phases[0].EndS, 10*interval)
	}
	if diff := math.Abs(phases[1].StartS - 11*interval); diff > interval {
		t.Errorf("phase 1 starts at %v s, want within one interval of %v s", phases[1].StartS, 11*interval)
	}
	if math.Abs(phases[0].MeanW-42) > 1e-9 || math.Abs(phases[1].MeanW-20) > 1e-9 {
		t.Errorf("phase means = %v/%v W, want 42/20", phases[0].MeanW, phases[1].MeanW)
	}
	if phases[0].N+phases[1].N != 20 {
		t.Errorf("phases cover %d points, want all 20", phases[0].N+phases[1].N)
	}
	if phases[0].StdDevW != 0 || phases[0].SEMW != 0 {
		t.Errorf("noise-free phase has error bars: stddev=%v sem=%v", phases[0].StdDevW, phases[0].SEMW)
	}
}

// TestSegmentPhasesNoisyBoundary plants the same two regimes under ±0.5 W
// deterministic ripple; the boundary must still land within one interval.
func TestSegmentPhasesNoisyBoundary(t *testing.T) {
	const interval = 0.01
	ripple := []float64{0.5, -0.3, 0.1, -0.5, 0.4, -0.1, 0.3, -0.4, 0.2, -0.2}
	times, powers := seriesAt(30, interval, func(i int) float64 {
		base := 42.0
		if i >= 15 {
			base = 20
		}
		return base + ripple[i%len(ripple)]
	})
	phases := SegmentPhases(times, powers, PhaseConfig{})
	if len(phases) != 2 {
		t.Fatalf("segmented into %d phases, want 2: %+v", len(phases), phases)
	}
	if diff := math.Abs(phases[1].StartS - 16*interval); diff > interval {
		t.Errorf("boundary at %v s, want within one interval of %v s", phases[1].StartS, 16*interval)
	}
	if phases[0].SEMW <= 0 || phases[0].SEMW > 0.5 {
		t.Errorf("phase 0 SEM = %v, want small positive error bar", phases[0].SEMW)
	}
}

// TestSegmentPhasesFlatSeriesSinglePhase: a constant series must never be
// split, and tiny ripples below MinJumpFrac must not create phantom phases.
func TestSegmentPhasesFlatSeriesSinglePhase(t *testing.T) {
	times, powers := seriesAt(20, 0.01, func(i int) float64 { return 35 })
	if phases := SegmentPhases(times, powers, PhaseConfig{}); len(phases) != 1 {
		t.Errorf("constant series segmented into %d phases, want 1", len(phases))
	}
	// 1% ripple is under the 5% default jump threshold.
	times, powers = seriesAt(20, 0.01, func(i int) float64 {
		if i%2 == 0 {
			return 35.2
		}
		return 34.8
	})
	if phases := SegmentPhases(times, powers, PhaseConfig{}); len(phases) != 1 {
		t.Errorf("sub-threshold ripple segmented into %d phases, want 1", len(phases))
	}
}

func TestSegmentPhasesThreePhase(t *testing.T) {
	const interval = 0.01
	times, powers := seriesAt(30, interval, func(i int) float64 {
		switch {
		case i < 10:
			return 60
		case i < 20:
			return 40
		default:
			return 25
		}
	})
	phases := SegmentPhases(times, powers, PhaseConfig{})
	if len(phases) != 3 {
		t.Fatalf("segmented into %d phases, want 3: %+v", len(phases), phases)
	}
	for i, want := range []float64{60, 40, 25} {
		if math.Abs(phases[i].MeanW-want) > 1e-9 {
			t.Errorf("phase %d mean = %v, want %v", i, phases[i].MeanW, want)
		}
	}
}

// TestSegmentPhasesDegenerate: empty, single-point, and too-short series all
// stay in one piece (or none) without panicking.
func TestSegmentPhasesDegenerate(t *testing.T) {
	if phases := SegmentPhases(nil, nil, PhaseConfig{}); phases != nil {
		t.Errorf("empty series produced phases: %+v", phases)
	}
	times, powers := seriesAt(1, 0.01, func(i int) float64 { return 10 })
	phases := SegmentPhases(times, powers, PhaseConfig{})
	if len(phases) != 1 || phases[0].N != 1 {
		t.Errorf("single-point series = %+v, want one single-point phase", phases)
	}
	// 5 points cannot hold two MinSegment=3 phases.
	times, powers = seriesAt(5, 0.01, func(i int) float64 {
		if i < 2 {
			return 100
		}
		return 10
	})
	if phases := SegmentPhases(times, powers, PhaseConfig{}); len(phases) != 1 {
		t.Errorf("5-point series segmented into %d phases, want 1 (MinSegment=3)", len(phases))
	}
	// Zero-mean series: no scale for the jump test, must stay single-phase.
	times, powers = seriesAt(20, 0.01, func(i int) float64 { return 0 })
	if phases := SegmentPhases(times, powers, PhaseConfig{}); len(phases) != 1 {
		t.Errorf("zero series segmented into %d phases, want 1", len(phases))
	}
}

// TestDetectThrottlesRamp plants a sustained decline — 50 W flat, then a
// steady 2 W-per-point drop — and wants exactly one episode covering the ramp.
func TestDetectThrottlesRamp(t *testing.T) {
	const interval = 0.01
	times, powers := seriesAt(30, interval, func(i int) float64 {
		if i < 15 {
			return 50
		}
		return 50 - 2*float64(i-14)
	})
	episodes := DetectThrottles(times, powers, ThrottleConfig{})
	if len(episodes) != 1 {
		t.Fatalf("detected %d throttle episodes, want 1: %+v", len(episodes), episodes)
	}
	ep := episodes[0]
	if ep.SlopeWPerS >= 0 {
		t.Errorf("slope = %v W/s, want negative", ep.SlopeWPerS)
	}
	if ep.DropW <= 0 {
		t.Errorf("drop = %v W, want positive", ep.DropW)
	}
	// The ramp starts at point 15 (t=0.16); windows overlapping it flag, so
	// the episode must start at or before the ramp and end at the series end.
	if ep.StartS > 16*interval {
		t.Errorf("episode starts at %v s, after the ramp onset", ep.StartS)
	}
	if ep.EndS != times[len(times)-1] {
		t.Errorf("episode ends at %v s, want series end %v s", ep.EndS, times[len(times)-1])
	}
}

// TestDetectThrottlesFlatAndRising: flat and increasing power must never be
// reported as throttling.
func TestDetectThrottlesFlatAndRising(t *testing.T) {
	times, powers := seriesAt(30, 0.01, func(i int) float64 { return 40 })
	if eps := DetectThrottles(times, powers, ThrottleConfig{}); len(eps) != 0 {
		t.Errorf("flat series flagged as throttling: %+v", eps)
	}
	times, powers = seriesAt(30, 0.01, func(i int) float64 { return 20 + float64(i) })
	if eps := DetectThrottles(times, powers, ThrottleConfig{}); len(eps) != 0 {
		t.Errorf("rising series flagged as throttling: %+v", eps)
	}
}

// TestDetectThrottlesIgnoresSingleNoisyWindow: one steep window among flat
// ones is noise, not an episode (MinRun=2).
func TestDetectThrottlesIgnoresSingleNoisyWindow(t *testing.T) {
	times, powers := seriesAt(30, 0.01, func(i int) float64 {
		if i == 15 {
			return 20 // one-point glitch in a 40 W series
		}
		return 40
	})
	// A single down-up glitch produces at most isolated steep windows on its
	// flanks, never MinRun consecutive declining fits.
	eps := DetectThrottles(times, powers, ThrottleConfig{Window: 5, MinRun: 3})
	if len(eps) != 0 {
		t.Errorf("single glitch flagged as throttle: %+v", eps)
	}
}

func TestDetectThrottlesShortSeries(t *testing.T) {
	times, powers := seriesAt(3, 0.01, func(i int) float64 { return 40 - 10*float64(i) })
	if eps := DetectThrottles(times, powers, ThrottleConfig{}); eps != nil {
		t.Errorf("series shorter than window produced episodes: %+v", eps)
	}
}

func TestOLSSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{10, 8, 6, 4}
	if got := olsSlope(xs, ys); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("slope = %v, want -2", got)
	}
	if got := olsSlope([]float64{1}, []float64{5}); got != 0 {
		t.Errorf("degenerate slope = %v, want 0", got)
	}
	if got := olsSlope([]float64{2, 2, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("zero-variance-x slope = %v, want 0", got)
	}
}
