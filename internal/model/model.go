package model

import (
	"fmt"
	"math"
	"sort"

	"energybench/internal/bench"
	"energybench/internal/harness"
)

// Observation is one data point for the fit: the mean power a configuration
// drew and how many threads were actively stressing each component.
type Observation struct {
	Label    string
	PowerW   float64
	Activity map[bench.Component]float64
}

// FromResults converts harness results into fit observations. A solo run
// contributes its thread count as activity on its component; a co-run
// contributes both specs' thread counts on their respective components
// (summed when both stress the same component). External-workload results
// are skipped: they are what the fitted model is validated *against*
// (Validate), never part of the micro-benchmark design it is fitted on.
func FromResults(results []harness.Result) []Observation {
	obs := make([]Observation, 0, len(results))
	for _, r := range results {
		if r.Workload != "" {
			continue
		}
		act := map[bench.Component]float64{r.Component: float64(r.Threads)}
		label := fmt.Sprintf("%s/t%d/%s", r.Spec, r.Threads, r.Placement)
		if r.IsCoRun() {
			act[r.ComponentB] += float64(r.ThreadsB)
			label = fmt.Sprintf("%s+%s/t%d+%d/%s", r.Spec, r.SpecB, r.Threads, r.ThreadsB, r.Placement)
		}
		obs = append(obs, Observation{Label: label, PowerW: r.PowerW.Mean, Activity: act})
	}
	return obs
}

// Residual is one observation's misfit under the fitted model.
type Residual struct {
	Label      string  `json:"label"`
	ActualW    float64 `json:"actual_w"`
	PredictedW float64 `json:"predicted_w"`
	ResidualW  float64 `json:"residual_w"`
}

// Fit is the fitted linear power model.
type Fit struct {
	// PStaticW is the intercept: power drawn with zero activity (static +
	// uncore + idle clock tree).
	PStaticW float64 `json:"p_static_w"`
	// CoeffW maps each component to its dynamic power per active thread.
	CoeffW map[bench.Component]float64 `json:"coeff_w_per_thread"`
	// R2 is the coefficient of determination; 1 means the model explains
	// the observations exactly.
	R2 float64 `json:"r2"`
	// RMSEW is the root-mean-square residual in watts.
	RMSEW     float64    `json:"rmse_w"`
	N         int        `json:"n"`
	DoF       int        `json:"dof"`
	Residuals []Residual `json:"residuals"`
	// PStaticSEW/CoeffSEW are the OLS standard errors of the intercept and
	// the per-component coefficients, and the *CI95W fields the matching
	// 95% confidence intervals (estimate ± 1.96·SE, the normal
	// approximation). They require at least one residual degree of freedom
	// (N > parameters) and are omitted on an exactly-determined fit. They
	// are the adaptive planner's stopping signal: a campaign is converged
	// once every coefficient's relative standard error is below target.
	PStaticSEW   float64                       `json:"p_static_se_w,omitempty"`
	CoeffSEW     map[bench.Component]float64   `json:"coeff_se_w_per_thread,omitempty"`
	PStaticCI95W []float64                     `json:"p_static_ci95_w,omitempty"`
	CoeffCI95W   map[bench.Component][]float64 `json:"coeff_ci95_w_per_thread,omitempty"`

	// comps is the fixed design ordering of the component columns and
	// invXtX the inverse normal matrix in that basis ([intercept, comps...]);
	// both back PredictionVariance and neither serializes.
	comps  []bench.Component
	invXtX [][]float64
}

// RSE returns the relative standard error SE/|estimate| of every fitted
// parameter ("p_static" plus one entry per component) and ok when standard
// errors exist (DoF > 0). A zero estimate with a nonzero SE yields +Inf —
// that parameter cannot be called converged at any precision.
func (f *Fit) RSE() (map[string]float64, bool) {
	if f.DoF <= 0 {
		return nil, false
	}
	rel := func(se, est float64) float64 {
		switch {
		case se == 0:
			return 0
		case est == 0:
			return math.Inf(1)
		default:
			return se / math.Abs(est)
		}
	}
	out := map[string]float64{"p_static": rel(f.PStaticSEW, f.PStaticW)}
	for c, se := range f.CoeffSEW {
		out[string(c)] = rel(se, f.CoeffW[c])
	}
	return out, true
}

// MaxRSE returns the largest relative standard error across all fitted
// parameters; ok is false when standard errors are unavailable.
func (f *Fit) MaxRSE() (float64, bool) {
	rses, ok := f.RSE()
	if !ok {
		return 0, false
	}
	var worst float64
	for _, r := range rses {
		worst = math.Max(worst, r)
	}
	return worst, true
}

// PredictionVariance returns the unscaled predictive leverage
// xᵀ(XᵀX)⁻¹x of an activity vector under the fit's design — the
// D-optimality score the adaptive planner ranks candidate trials by
// (multiply by the residual variance for an absolute prediction variance).
// ok is false when the fit carries no design inverse or the activity names
// a component outside the fitted basis; such a candidate adds a whole new
// column and is therefore maximally informative.
func (f *Fit) PredictionVariance(activity map[bench.Component]float64) (float64, bool) {
	if f.invXtX == nil {
		return 0, false
	}
	for c := range activity {
		if _, ok := f.CoeffW[c]; !ok {
			return 0, false
		}
	}
	x := make([]float64, len(f.comps)+1)
	x[0] = 1
	for j, c := range f.comps {
		x[j+1] = activity[c]
	}
	var v float64
	for i := range x {
		for j := range x {
			v += x[i] * f.invXtX[i][j] * x[j]
		}
	}
	return v, true
}

// DesignBasis returns the fitted component column ordering; together with
// the intercept in column 0 it is the basis DesignInverse is expressed in.
func (f *Fit) DesignBasis() []bench.Component {
	return append([]bench.Component(nil), f.comps...)
}

// DesignInverse returns a copy of the inverse normal matrix (XᵀX)⁻¹ in the
// [intercept, DesignBasis...] basis, or nil when unavailable. The adaptive
// planner seeds its Sherman–Morrison greedy batch selection from it.
func (f *Fit) DesignInverse() [][]float64 {
	if f.invXtX == nil {
		return nil
	}
	return copyMatrix(f.invXtX)
}

// Predict evaluates the fitted model on an activity vector. Components are
// summed in sorted order so the floating-point result — and everything
// derived from it (residuals, RMSE, golden-file output) — is deterministic
// across runs despite Go's randomized map iteration.
func (f Fit) Predict(activity map[bench.Component]float64) float64 {
	comps := make([]bench.Component, 0, len(activity))
	for c := range activity {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	p := f.PStaticW
	for _, c := range comps {
		p += f.CoeffW[c] * activity[c]
	}
	return p
}

// FitPower solves the ordinary-least-squares problem
// P_i = P_static + Σ_c a_c · activity_{i,c} over the observations. The
// design needs at least as many observations as unknowns and enough
// activity variation per component to separate its coefficient from the
// intercept (i.e. the same component measured at ≥ 2 thread counts).
func FitPower(obs []Observation) (*Fit, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("model: no observations")
	}
	compSet := map[bench.Component]bool{}
	for _, o := range obs {
		for c := range o.Activity {
			compSet[c] = true
		}
	}
	comps := make([]bench.Component, 0, len(compSet))
	for c := range compSet {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })

	k := len(comps) + 1 // intercept + one coefficient per component
	if len(obs) < k {
		return nil, fmt.Errorf("model: %d observations cannot identify %d parameters (intercept + %d components)",
			len(obs), k, len(comps))
	}

	// Build the design matrix row by row and accumulate the normal
	// equations XᵀX β = Xᵀy directly; k is tiny (≤ #components + 1).
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	row := make([]float64, k)
	for _, o := range obs {
		row[0] = 1
		for j, c := range comps {
			row[j+1] = o.Activity[c]
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * o.PowerW
		}
	}
	// solveLinear overwrites its inputs; solve on copies so the normal
	// matrix survives for the covariance inverse below.
	beta, err := solveLinear(copyMatrix(xtx), append([]float64(nil), xty...))
	if err != nil {
		return nil, fmt.Errorf("model: design is rank-deficient — measure each component at two or more thread counts (%w)", err)
	}

	fit := &Fit{PStaticW: beta[0], CoeffW: map[bench.Component]float64{}, N: len(obs), comps: comps}
	fit.invXtX, err = invertMatrix(xtx)
	if err != nil {
		// Unreachable once the solve above succeeded, but a nil inverse
		// only disables variance scoring — never the fit itself.
		fit.invXtX = nil
	}
	for j, c := range comps {
		fit.CoeffW[c] = beta[j+1]
	}
	var ssRes, ssTot, mean float64
	for _, o := range obs {
		mean += o.PowerW
	}
	mean /= float64(len(obs))
	for _, o := range obs {
		pred := fit.Predict(o.Activity)
		res := o.PowerW - pred
		ssRes += res * res
		ssTot += (o.PowerW - mean) * (o.PowerW - mean)
		fit.Residuals = append(fit.Residuals, Residual{
			Label: o.Label, ActualW: o.PowerW, PredictedW: pred, ResidualW: res,
		})
	}
	fit.RMSEW = math.Sqrt(ssRes / float64(len(obs)))
	fit.DoF = len(obs) - k
	if fit.DoF > 0 && fit.invXtX != nil {
		// OLS covariance: Var(β) = σ²(XᵀX)⁻¹ with σ² the unbiased residual
		// variance. The 95% interval uses the normal approximation
		// (±1.96·SE); at the handful-of-dof end it understates the width a
		// t-quantile would give, which the planner's margin absorbs.
		sigma2 := ssRes / float64(fit.DoF)
		se := func(j int) float64 { return math.Sqrt(sigma2 * math.Max(fit.invXtX[j][j], 0)) }
		ci := func(est, se float64) []float64 { return []float64{est - 1.96*se, est + 1.96*se} }
		fit.PStaticSEW = se(0)
		fit.PStaticCI95W = ci(fit.PStaticW, fit.PStaticSEW)
		fit.CoeffSEW = map[bench.Component]float64{}
		fit.CoeffCI95W = map[bench.Component][]float64{}
		for j, c := range comps {
			s := se(j + 1)
			fit.CoeffSEW[c] = s
			fit.CoeffCI95W[c] = ci(fit.CoeffW[c], s)
		}
	}
	switch {
	case ssTot > 0:
		fit.R2 = 1 - ssRes/ssTot
	case ssRes <= 1e-18:
		// Constant observations fitted exactly (e.g. a constant-power
		// mock): the model explains everything there is to explain.
		fit.R2 = 1
	default:
		fit.R2 = 0
	}
	return fit, nil
}

func copyMatrix(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = append([]float64(nil), a[i]...)
	}
	return out
}

// invertMatrix inverts a symmetric positive-definite matrix (the normal
// matrix XᵀX) column by column through solveLinear, reusing its pivoting
// and singularity detection. a is preserved.
func invertMatrix(a [][]float64) ([][]float64, error) {
	n := len(a)
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = make([]float64, n)
	}
	for col := 0; col < n; col++ {
		e := make([]float64, n)
		e[col] = 1
		x, err := solveLinear(copyMatrix(a), e)
		if err != nil {
			return nil, err
		}
		for row := 0; row < n; row++ {
			inv[row][col] = x[row]
		}
	}
	return inv, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// a and b are overwritten.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	var scale float64
	for i := range a {
		for j := range a[i] {
			scale = math.Max(scale, math.Abs(a[i][j]))
		}
	}
	eps := 1e-12 * math.Max(scale, 1)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < eps {
			return nil, fmt.Errorf("singular matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Marginal quantifies the cost of a second thread of a spec: "smt" when the
// second thread co-schedules on the SMT sibling (compact placement), "cmp"
// when it runs on a second physical core (scatter). This is the paper's
// central CMP-vs-SMT comparison.
type Marginal struct {
	Spec  string `json:"spec"`
	Meter string `json:"meter"`
	// Kind is "smt" (compact, sibling sharing a core) or "cmp" (scatter,
	// second physical core).
	Kind            string  `json:"kind"`
	Placement       string  `json:"placement"`
	MarginalPowerW  float64 `json:"marginal_power_w"`  // P(2 threads) − P(1 thread)
	MarginalEnergyJ float64 `json:"marginal_energy_j"` // E(2 threads) − E(1 thread), at 2× work
	ThroughputGain  float64 `json:"throughput_gain"`   // 2·T(1)/T(2); 2 = perfect scaling
}

// Marginals derives the second-thread cost for every spec measured solo at
// one and two threads under compact and/or scatter placement. The 1-thread
// baseline prefers the same placement and falls back to unpinned ("none").
// Baselines never cross meters: a store accumulating mock and RAPL runs of
// the same spec yields separate per-meter marginals, not a mixed subtraction.
func Marginals(results []harness.Result) []Marginal {
	type cfg struct {
		spec      string
		meter     string
		threads   int
		placement harness.Placement
	}
	solo := map[cfg]harness.Result{}
	subjects := map[[2]string]bool{} // (spec, meter)
	for _, r := range results {
		if r.IsCoRun() || r.Workload != "" {
			continue
		}
		solo[cfg{r.Spec, r.Meter, r.Threads, r.Placement}] = r
		subjects[[2]string{r.Spec, r.Meter}] = true
	}
	keys := make([][2]string, 0, len(subjects))
	for s := range subjects {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	var out []Marginal
	for _, key := range keys {
		name, meterName := key[0], key[1]
		for _, pk := range []struct {
			placement harness.Placement
			kind      string
		}{{harness.PlaceCompact, "smt"}, {harness.PlaceScatter, "cmp"}} {
			two, ok := solo[cfg{name, meterName, 2, pk.placement}]
			if !ok {
				continue
			}
			one, ok := solo[cfg{name, meterName, 1, pk.placement}]
			if !ok {
				one, ok = solo[cfg{name, meterName, 1, harness.PlaceNone}]
			}
			if !ok || one.TimeS.Mean <= 0 || two.TimeS.Mean <= 0 || one.Iters != two.Iters {
				continue
			}
			out = append(out, Marginal{
				Spec:            name,
				Meter:           meterName,
				Kind:            pk.kind,
				Placement:       string(pk.placement),
				MarginalPowerW:  two.PowerW.Mean - one.PowerW.Mean,
				MarginalEnergyJ: two.EnergyJ.Mean - one.EnergyJ.Mean,
				ThroughputGain:  2 * one.TimeS.Mean / two.TimeS.Mean,
			})
		}
	}
	return out
}
