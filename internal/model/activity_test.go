package model

import (
	"math"
	"strings"
	"testing"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/stats"
)

// counterResult fabricates a measured result: spec/component/threads plus a
// counters block with the given per-event *total* rates (Hz, already summed
// over threads, all in group 0).
func counterResult(spec string, comp bench.Component, threads int, powerW float64, rates map[string]float64) harness.Result {
	c := &harness.Counters{Backend: "mock", Reps: 1}
	th := harness.CounterThread{CPU: -1}
	for ev, rate := range rates {
		c.Events = append(c.Events, harness.CounterEvent{Event: ev, RateHzMean: rate, TotalMean: rate})
		th.RateHzMean = append(th.RateHzMean, rate)
		th.TotalMean = append(th.TotalMean, rate)
	}
	c.Threads = []harness.CounterThread{th}
	return harness.Result{
		Spec: spec, Component: comp, Threads: threads, Iters: 1000,
		Placement: harness.PlaceNone, Meter: "mock",
		PowerW:   stats.Summary{N: 1, Mean: powerW},
		Counters: c,
	}
}

// TestFromResultsCountersPlantedCoefficients is the pipeline's ground-truth
// test: observations built from planted event rates, with powers generated
// by P = 10 + 2·act(int-alu) + 5·act(dram), must hand FitPower a design it
// solves back to exactly those coefficients.
func TestFromResultsCountersPlantedCoefficients(t *testing.T) {
	const pStatic, aInt, aDram = 10.0, 2.0, 5.0
	mk := func(spec string, comp bench.Component, threads int, rates map[string]float64) harness.Result {
		var power float64 = pStatic
		switch comp {
		case bench.CompIntALU:
			power += aInt * rates["instructions"] / RateScale
		case bench.CompDRAM:
			power += aDram * rates["llc-misses"] / RateScale
		}
		return counterResult(spec, comp, threads, power, rates)
	}
	results := []harness.Result{
		mk("int-alu", bench.CompIntALU, 1, map[string]float64{"instructions": 3.2e9, "llc-misses": 1e3}),
		mk("int-alu", bench.CompIntALU, 2, map[string]float64{"instructions": 6.4e9, "llc-misses": 2e3}),
		mk("chase-dram", bench.CompDRAM, 1, map[string]float64{"instructions": 6e7, "llc-misses": 5.5e7}),
		mk("chase-dram", bench.CompDRAM, 2, map[string]float64{"instructions": 1.2e8, "llc-misses": 1.1e8}),
	}
	// The DRAM observations' activity comes from llc-misses, not the (also
	// counted) instructions — that is the characteristic-event mapping.
	obs, skipped, err := FromResultsCounters(results)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(obs) != 4 {
		t.Fatalf("got %d observations (%d skipped), want 4 (0 skipped)", len(obs), skipped)
	}
	for _, o := range obs {
		if len(o.Activity) != 1 {
			t.Errorf("%s: activity = %v, want exactly one component", o.Label, o.Activity)
		}
	}
	if got := obs[0].Activity[bench.CompIntALU]; math.Abs(got-3.2) > 1e-12 {
		t.Errorf("int-alu t1 activity = %v, want 3.2 (3.2e9 instructions/s / 1e9)", got)
	}
	if got := obs[2].Activity[bench.CompDRAM]; math.Abs(got-0.055) > 1e-12 {
		t.Errorf("dram t1 activity = %v, want 0.055 (5.5e7 llc-misses/s / 1e9)", got)
	}

	fit, err := FitPower(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.PStaticW-pStatic) > 1e-6 {
		t.Errorf("P_static = %v, want %v", fit.PStaticW, pStatic)
	}
	if got := fit.CoeffW[bench.CompIntALU]; math.Abs(got-aInt) > 1e-6 {
		t.Errorf("int-alu coefficient = %v, want %v", got, aInt)
	}
	if got := fit.CoeffW[bench.CompDRAM]; math.Abs(got-aDram) > 1e-6 {
		t.Errorf("dram coefficient = %v, want %v", got, aDram)
	}
	if fit.R2 < 1-1e-9 {
		t.Errorf("R² = %v, want 1 on noiseless planted data", fit.R2)
	}
}

// TestFromResultsCountersCoRunSplitsGroups: a co-run result must yield a
// two-component activity vector, each side derived from its own group's
// threads.
func TestFromResultsCountersCoRunSplitsGroups(t *testing.T) {
	r := harness.Result{
		Spec: "int-alu", Component: bench.CompIntALU,
		SpecB: "chase-dram", ComponentB: bench.CompDRAM,
		Threads: 1, ThreadsB: 1, Iters: 1000, ItersB: 100,
		Placement: harness.PlaceCompact, Meter: "mock",
		PowerW: stats.Summary{N: 1, Mean: 30},
		Counters: &harness.Counters{
			Backend: "mock",
			Events: []harness.CounterEvent{
				{Event: "instructions", RateHzMean: 3.26e9},
				{Event: "llc-misses", RateHzMean: 5.5001e7},
			},
			Threads: []harness.CounterThread{
				{CPU: 0, Group: 0, RateHzMean: []float64{3.2e9, 1e3}},
				{CPU: 1, Group: 1, RateHzMean: []float64{6e7, 5.5e7}},
			},
			Reps: 1,
		},
	}
	obs, _, err := FromResultsCounters([]harness.Result{r})
	if err != nil {
		t.Fatal(err)
	}
	act := obs[0].Activity
	if got := act[bench.CompIntALU]; math.Abs(got-3.2) > 1e-12 {
		t.Errorf("A-side activity = %v, want 3.2 (group 0 instructions only)", got)
	}
	if got := act[bench.CompDRAM]; math.Abs(got-0.055) > 1e-12 {
		t.Errorf("B-side activity = %v, want 0.055 (group 1 llc-misses only)", got)
	}
	if !strings.Contains(obs[0].Label, "int-alu+chase-dram") {
		t.Errorf("label %q should name both specs", obs[0].Label)
	}
}

// TestFromResultsCountersSkipsAndErrors: results without counters are
// skipped (the store may mix counter and pre-counter sweeps); an all-nominal
// store is an error; a counted result missing its component's
// characteristic events is an error naming what to re-run.
func TestFromResultsCountersSkipsAndErrors(t *testing.T) {
	plain := harness.Result{
		Spec: "int-alu", Component: bench.CompIntALU, Threads: 1,
		Placement: harness.PlaceNone, Meter: "mock",
		PowerW: stats.Summary{N: 1, Mean: 12},
	}
	counted := counterResult("int-alu", bench.CompIntALU, 1, 16.4,
		map[string]float64{"instructions": 3.2e9})

	obs, skipped, err := FromResultsCounters([]harness.Result{plain, counted})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(obs) != 1 {
		t.Errorf("got %d observations (%d skipped), want 1 and 1", len(obs), skipped)
	}

	if _, _, err := FromResultsCounters([]harness.Result{plain}); err == nil {
		t.Error("an all-nominal result set should error, not fit an empty design")
	}

	// A DRAM result that only counted cycles cannot provide DRAM activity.
	bad := counterResult("chase-dram", bench.CompDRAM, 1, 20, map[string]float64{"cycles": 2.5e9})
	_, _, err = FromResultsCounters([]harness.Result{bad})
	if err == nil || !strings.Contains(err.Error(), "llc-misses") {
		t.Errorf("err = %v, want a complaint naming the missing llc-misses event", err)
	}
}

// TestFromResultsCountersFallbackEvent: when the preferred characteristic
// event is absent the builder walks the preference list (L3 falls back from
// l1d-misses to cache-refs).
func TestFromResultsCountersFallbackEvent(t *testing.T) {
	r := counterResult("chase-l3", bench.CompL3, 1, 20, map[string]float64{"cache-refs": 3.3e8})
	obs, _, err := FromResultsCounters([]harness.Result{r})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs[0].Activity[bench.CompL3]; math.Abs(got-0.33) > 1e-12 {
		t.Errorf("L3 activity = %v, want 0.33 via the cache-refs fallback", got)
	}
}
