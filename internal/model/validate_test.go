package model

import (
	"math"
	"strings"
	"testing"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/stats"
)

// kernelResult synthesizes one solo kernel result under the planted model
// P = 10 + 2·a_int-alu + 5·a_dram.
func kernelResult(spec string, comp bench.Component, threads int, powerW float64) harness.Result {
	return harness.Result{
		Spec: spec, Component: comp, Threads: threads, Iters: 1_000_000,
		Placement: harness.PlaceNone, Meter: "mock",
		PowerW:  stats.Summary{N: 2, Mean: powerW},
		TimeS:   stats.Summary{N: 2, Mean: 0.5},
		EnergyJ: stats.Summary{N: 2, Mean: powerW * 0.5},
	}
}

// workloadResult synthesizes one external-workload result.
func workloadResult(name string, threads int, comps map[bench.Component]float64, powerW, timeS float64) harness.Result {
	return harness.Result{
		Spec: name, Workload: name, WorkloadComponents: comps,
		Threads: threads, Iters: 1, Placement: harness.PlaceNone, Meter: "mock",
		PowerW:  stats.Summary{N: 2, Mean: powerW},
		TimeS:   stats.Summary{N: 2, Mean: timeS},
		EnergyJ: stats.Summary{N: 2, Mean: powerW * timeS},
	}
}

func counters(instrRate, llcMissRate float64) *harness.Counters {
	return &harness.Counters{
		Backend: "mock",
		Reps:    1,
		Events: []harness.CounterEvent{
			{Event: "instructions", RateHzMean: instrRate},
			{Event: "llc-misses", RateHzMean: llcMissRate},
		},
	}
}

// fixtureResults builds a store's worth of synthetic results: a kernel grid
// that fits the planted model exactly, plus workloads to validate against.
func fixtureResults() []harness.Result {
	intALU2 := kernelResult("int-alu", bench.CompIntALU, 2, 14)
	intALU2.Counters = counters(6.4e9, 0) // roofline peak instruction rate
	return []harness.Result{
		kernelResult("int-alu", bench.CompIntALU, 1, 12),
		intALU2,
		kernelResult("chase-dram", bench.CompDRAM, 1, 15),
		kernelResult("chase-dram", bench.CompDRAM, 2, 20),
	}
}

func fitFixture(t *testing.T, results []harness.Result) *Fit {
	t.Helper()
	fit, err := FitPower(FromResults(results))
	if err != nil {
		t.Fatalf("FitPower: %v", err)
	}
	return fit
}

func TestValidateNominal(t *testing.T) {
	results := fixtureResults()
	// Measured 1% above the model's 14 W prediction for int-alu × 2 threads.
	stress := workloadResult("stress", 2, map[bench.Component]float64{bench.CompIntALU: 1}, 14.14, 2)
	// Exactly on the 15 W prediction for one dram-bound thread.
	memhog := workloadResult("memhog", 1, map[bench.Component]float64{bench.CompDRAM: 1}, 15, 1)
	results = append(results, stress, memhog)

	v, err := Validate(fitFixture(t, results), "", results)
	if err != nil {
		t.Fatal(err)
	}
	if v.Activity != ActivityNominal || v.Predicted != 2 || v.Failed != 0 {
		t.Fatalf("validation = %+v, want 2 nominal predictions", v)
	}
	if len(v.Workloads) != 2 {
		t.Fatalf("%d rows, want 2", len(v.Workloads))
	}
	// Rows sort by label: memhog/t1 before stress/t2.
	mh, st := v.Workloads[0], v.Workloads[1]
	if mh.Workload != "memhog" || st.Workload != "stress" {
		t.Fatalf("row order: %q, %q", mh.Workload, st.Workload)
	}
	if math.Abs(mh.PredictedW-15) > 1e-6 || mh.PowerErrPct > 1e-6 {
		t.Errorf("memhog: predicted %.4f W, err %.4f%%; want 15 W exact", mh.PredictedW, mh.PowerErrPct)
	}
	if math.Abs(st.PredictedW-14) > 1e-6 || math.Abs(st.PowerErrPct-100*0.14/14.14) > 0.01 {
		t.Errorf("stress: predicted %.4f W, err %.4f%%", st.PredictedW, st.PowerErrPct)
	}
	if math.Abs(st.PredictedEnergyJ-28) > 1e-6 {
		t.Errorf("stress predicted energy = %.4f J, want 28 (14 W × 2 s)", st.PredictedEnergyJ)
	}
	wantMAPE := (0 + 100*0.14/14.14) / 2
	if math.Abs(v.MAPEPct-wantMAPE) > 0.01 {
		t.Errorf("MAPE = %.4f%%, want %.4f%%", v.MAPEPct, wantMAPE)
	}
}

func TestValidateReportsUnpredictableRows(t *testing.T) {
	results := fixtureResults()
	good := workloadResult("ok", 1, map[bench.Component]float64{bench.CompIntALU: 1}, 12, 1)
	noComps := workloadResult("mystery", 1, nil, 12, 1)
	unfitted := workloadResult("fpu-heavy", 1, map[bench.Component]float64{bench.CompFPU: 1}, 12, 1)
	results = append(results, good, noComps, unfitted)

	v, err := Validate(fitFixture(t, results), ActivityNominal, results)
	if err != nil {
		t.Fatal(err)
	}
	if v.Predicted != 1 || v.Failed != 2 {
		t.Fatalf("predicted/failed = %d/%d, want 1/2 (failures stay in the report)", v.Predicted, v.Failed)
	}
	errs := map[string]string{}
	for _, row := range v.Workloads {
		errs[row.Workload] = row.Err
	}
	if !strings.Contains(errs["mystery"], "declares no components") {
		t.Errorf("mystery err = %q", errs["mystery"])
	}
	if !strings.Contains(errs["fpu-heavy"], "never fitted") {
		t.Errorf("fpu-heavy err = %q", errs["fpu-heavy"])
	}

	// Kernel-only stores cannot be validated at all.
	if _, err := Validate(fitFixture(t, results), "", fixtureResults()); err == nil ||
		!strings.Contains(err.Error(), "no external-workload results") {
		t.Errorf("kernel-only validate: err = %v", err)
	}
}

func TestBuildRoofline(t *testing.T) {
	results := fixtureResults()
	stress := workloadResult("stress", 2, map[bench.Component]float64{bench.CompIntALU: 1}, 14, 2)
	stress.Counters = counters(3.2e9, 1e5)
	memhog := workloadResult("memhog", 1, map[bench.Component]float64{bench.CompDRAM: 1}, 15, 1)
	memhog.Counters = counters(1e8, 5e7)
	blind := workloadResult("blind", 1, nil, 12, 1) // no counters at all
	results = append(results, stress, memhog, blind)

	rf, err := BuildRoofline(results)
	if err != nil {
		t.Fatal(err)
	}
	// The dram ceiling is the chase-dram kernel's best configuration:
	// 64 B × 1e6 iters × 2 threads / 0.5 s.
	wantDRAM := 64.0 * 1e6 * 2 / 0.5
	if got := rf.CeilingsBytesPerSec["dram"]; math.Abs(got-wantDRAM) > 1 {
		t.Errorf("dram ceiling = %g, want %g", got, wantDRAM)
	}
	if rf.PeakInstrPerSec != 6.4e9 {
		t.Errorf("peak instr/s = %g, want 6.4e9 from the counted kernel", rf.PeakInstrPerSec)
	}
	if want := 6.4e9 / wantDRAM; math.Abs(rf.RidgeInstrPerByte-want) > 1e-9 {
		t.Errorf("ridge = %g, want %g", rf.RidgeInstrPerByte, want)
	}
	if len(rf.Points) != 3 {
		t.Fatalf("%d points, want 3", len(rf.Points))
	}
	byName := map[string]RooflinePoint{}
	for _, p := range rf.Points {
		byName[p.Workload] = p
	}
	// stress: 3.2e9 instr/s over 6.4e6 B/s → intensity 500, far above the
	// ridge → compute-bound. memhog: 1e8 over 3.2e9 → 0.031, memory-bound.
	if p := byName["stress"]; p.Bound != "compute" || math.Abs(p.IntensityInstrPerByte-500) > 1e-9 {
		t.Errorf("stress point = %+v", p)
	}
	if p := byName["memhog"]; p.Bound != "memory" {
		t.Errorf("memhog point = %+v", p)
	}
	if p := byName["blind"]; p.Err == "" || !strings.Contains(p.Err, "no counters") {
		t.Errorf("counter-less workload must stay in the report with an error: %+v", p)
	}

	// A kernel-only store has nothing to place.
	if _, err := BuildRoofline(fixtureResults()); err == nil ||
		!strings.Contains(err.Error(), "no external-workload results") {
		t.Errorf("kernel-only roofline: err = %v", err)
	}
}
