package model

import (
	"math"
	"testing"

	"energybench/internal/bench"
	"energybench/internal/harness"
	"energybench/internal/stats"
)

// plantObs builds observations from a known ground-truth model, optionally
// perturbed by deterministic noise.
func plantObs(pStatic float64, coeff map[bench.Component]float64, activities []map[bench.Component]float64, noise []float64) []Observation {
	obs := make([]Observation, len(activities))
	for i, act := range activities {
		p := pStatic
		for c, x := range act {
			p += coeff[c] * x
		}
		if noise != nil {
			p += noise[i%len(noise)]
		}
		obs[i] = Observation{Label: "obs", PowerW: p, Activity: act}
	}
	return obs
}

func TestFitPowerRecoversPlantedCoefficients(t *testing.T) {
	intALU, dram := bench.CompIntALU, bench.CompDRAM
	grid := []map[bench.Component]float64{
		{intALU: 1}, {intALU: 2}, {intALU: 4},
		{dram: 1}, {dram: 2},
		{intALU: 1, dram: 1}, {intALU: 2, dram: 2},
	}
	tests := []struct {
		name    string
		pStatic float64
		coeff   map[bench.Component]float64
		noise   []float64
		tol     float64
		minR2   float64
	}{
		{
			name:    "noiseless-exact",
			pStatic: 12.5,
			coeff:   map[bench.Component]float64{intALU: 2.25, dram: 5.5},
			tol:     1e-9,
			minR2:   1 - 1e-12,
		},
		{
			name:    "zero-coefficients",
			pStatic: 42,
			coeff:   map[bench.Component]float64{intALU: 0, dram: 0},
			tol:     1e-9,
			minR2:   1 - 1e-12, // constant observations, exactly explained
		},
		{
			name:    "with-noise",
			pStatic: 20,
			coeff:   map[bench.Component]float64{intALU: 3, dram: 8},
			noise:   []float64{0.1, -0.08, 0.05, -0.1, 0.02, 0.07, -0.06},
			tol:     0.5,
			minR2:   0.95,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fit, err := FitPower(plantObs(tc.pStatic, tc.coeff, grid, tc.noise))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fit.PStaticW-tc.pStatic) > tc.tol {
				t.Errorf("P_static = %v, want %v ± %v", fit.PStaticW, tc.pStatic, tc.tol)
			}
			for c, want := range tc.coeff {
				if got := fit.CoeffW[c]; math.Abs(got-want) > tc.tol {
					t.Errorf("coeff[%s] = %v, want %v ± %v", c, got, want, tc.tol)
				}
			}
			if fit.R2 < tc.minR2 {
				t.Errorf("R² = %v, want ≥ %v", fit.R2, tc.minR2)
			}
			if fit.N != len(grid) || len(fit.Residuals) != len(grid) {
				t.Errorf("N = %d, residuals = %d, want %d", fit.N, len(fit.Residuals), len(grid))
			}
			if tc.noise == nil && fit.RMSEW > 1e-9 {
				t.Errorf("noiseless RMSE = %v, want ~0", fit.RMSEW)
			}
		})
	}
}

func TestFitPowerErrors(t *testing.T) {
	intALU := bench.CompIntALU
	t.Run("no-observations", func(t *testing.T) {
		if _, err := FitPower(nil); err == nil {
			t.Error("want error for empty observation set")
		}
	})
	t.Run("underdetermined", func(t *testing.T) {
		obs := plantObs(10, map[bench.Component]float64{intALU: 2},
			[]map[bench.Component]float64{{intALU: 1}}, nil)
		if _, err := FitPower(obs); err == nil {
			t.Error("want error for fewer observations than parameters")
		}
	})
	t.Run("collinear-single-thread-count", func(t *testing.T) {
		// Every observation has activity 1 on the same component: the
		// component column equals the intercept column.
		obs := plantObs(10, map[bench.Component]float64{intALU: 2},
			[]map[bench.Component]float64{{intALU: 1}, {intALU: 1}, {intALU: 1}}, nil)
		if _, err := FitPower(obs); err == nil {
			t.Error("want rank-deficiency error for collinear design")
		}
	})
}

func summary(mean float64) stats.Summary { return stats.Summary{N: 3, Mean: mean} }

func soloResult(spec string, comp bench.Component, threads int, placement harness.Placement, powerW, timeS float64) harness.Result {
	return harness.Result{
		Spec: spec, Component: comp, Threads: threads, Iters: 1000,
		Placement: placement, Meter: "mock",
		PowerW:  summary(powerW),
		TimeS:   summary(timeS),
		EnergyJ: summary(powerW * timeS),
	}
}

func TestFromResults(t *testing.T) {
	solo := soloResult("int-alu", bench.CompIntALU, 2, harness.PlaceNone, 14, 1)
	corun := soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceCompact, 17, 2.5)
	corun.SpecB, corun.ComponentB, corun.ThreadsB = "chase-dram", bench.CompDRAM, 1
	same := corun
	same.SpecB, same.ComponentB, same.ThreadsB = "int-alu2", bench.CompIntALU, 2

	obs := FromResults([]harness.Result{solo, corun, same})
	if len(obs) != 3 {
		t.Fatalf("got %d observations, want 3", len(obs))
	}
	if obs[0].Activity[bench.CompIntALU] != 2 {
		t.Errorf("solo activity = %v, want int-alu:2", obs[0].Activity)
	}
	if obs[1].Activity[bench.CompIntALU] != 1 || obs[1].Activity[bench.CompDRAM] != 1 {
		t.Errorf("co-run activity = %v, want int-alu:1 dram:1", obs[1].Activity)
	}
	if obs[2].Activity[bench.CompIntALU] != 3 {
		t.Errorf("same-component co-run activity = %v, want int-alu:3 (summed)", obs[2].Activity)
	}
	if obs[1].PowerW != 17 {
		t.Errorf("observation power = %v, want 17", obs[1].PowerW)
	}
}

func TestMarginalsSMTvsCMP(t *testing.T) {
	results := []harness.Result{
		// SMT: second thread on the sibling — small power bump, poor scaling.
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceCompact, 12, 1.0),
		soloResult("int-alu", bench.CompIntALU, 2, harness.PlaceCompact, 13.5, 1.25),
		// CMP: second core — bigger power bump, perfect scaling.
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceScatter, 12, 1.0),
		soloResult("int-alu", bench.CompIntALU, 2, harness.PlaceScatter, 16, 1.0),
	}
	ms := Marginals(results)
	if len(ms) != 2 {
		t.Fatalf("got %d marginals (%+v), want smt + cmp", len(ms), ms)
	}
	byKind := map[string]Marginal{}
	for _, m := range ms {
		byKind[m.Kind] = m
	}
	smt, cmp := byKind["smt"], byKind["cmp"]
	if math.Abs(smt.MarginalPowerW-1.5) > 1e-9 {
		t.Errorf("smt marginal power = %v, want 1.5", smt.MarginalPowerW)
	}
	if math.Abs(cmp.MarginalPowerW-4) > 1e-9 {
		t.Errorf("cmp marginal power = %v, want 4", cmp.MarginalPowerW)
	}
	// E(2)−E(1): smt 13.5·1.25 − 12 = 4.875; cmp 16 − 12 = 4.
	if math.Abs(smt.MarginalEnergyJ-4.875) > 1e-9 {
		t.Errorf("smt marginal energy = %v, want 4.875", smt.MarginalEnergyJ)
	}
	if math.Abs(smt.ThroughputGain-1.6) > 1e-9 {
		t.Errorf("smt throughput gain = %v, want 1.6", smt.ThroughputGain)
	}
	if math.Abs(cmp.ThroughputGain-2) > 1e-9 {
		t.Errorf("cmp throughput gain = %v, want 2", cmp.ThroughputGain)
	}
}

// TestMarginalsDoNotCrossMeters is a regression test: a store accumulating
// mock and RAPL runs of the same spec must never subtract a mock baseline
// from a RAPL measurement.
func TestMarginalsDoNotCrossMeters(t *testing.T) {
	rapl1 := soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceCompact, 95, 1.0)
	rapl1.Meter = "rapl"
	rapl2 := soloResult("int-alu", bench.CompIntALU, 2, harness.PlaceCompact, 110, 1.2)
	rapl2.Meter = "rapl"
	results := []harness.Result{
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceCompact, 42, 1.0), // mock
		rapl1, rapl2,
	}
	ms := Marginals(results)
	if len(ms) != 1 {
		t.Fatalf("got %d marginals (%+v), want only the complete rapl pair", len(ms), ms)
	}
	if ms[0].Meter != "rapl" {
		t.Errorf("marginal meter = %q, want rapl", ms[0].Meter)
	}
	if math.Abs(ms[0].MarginalPowerW-15) > 1e-9 {
		t.Errorf("marginal power = %v, want 15 (rapl t2 − rapl t1, never the mock baseline)", ms[0].MarginalPowerW)
	}
}

func TestMarginalsFallsBackToUnpinnedBaseline(t *testing.T) {
	results := []harness.Result{
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceNone, 12, 1.0),
		soloResult("int-alu", bench.CompIntALU, 2, harness.PlaceCompact, 14, 1.2),
	}
	ms := Marginals(results)
	if len(ms) != 1 || ms[0].Kind != "smt" {
		t.Fatalf("got %+v, want one smt marginal via the none-placement baseline", ms)
	}
	if math.Abs(ms[0].MarginalPowerW-2) > 1e-9 {
		t.Errorf("marginal power = %v, want 2", ms[0].MarginalPowerW)
	}
}

func corunResult(specA, specB string, compA, compB bench.Component, placement harness.Placement, powerW, timeA, timeB float64) harness.Result {
	ta, tb := summary(timeA), summary(timeB)
	tMax := math.Max(timeA, timeB)
	return harness.Result{
		Spec: specA, Component: compA, Threads: 1, Iters: 1000,
		SpecB: specB, ComponentB: compB, ThreadsB: 1, ItersB: 1000,
		Placement: placement, Meter: "mock",
		PowerW:  summary(powerW),
		TimeS:   summary(tMax),
		EnergyJ: summary(powerW * tMax),
		TimeA:   &ta, TimeB: &tb,
	}
}

func TestInterferences(t *testing.T) {
	results := []harness.Result{
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceNone, 12, 1.0),
		soloResult("chase-dram", bench.CompDRAM, 1, harness.PlaceNone, 15, 2.0),
		corunResult("int-alu", "chase-dram", bench.CompIntALU, bench.CompDRAM, harness.PlaceNone, 17, 1.2, 2.5),
	}
	infs := Interferences(results)
	if len(infs) != 1 {
		t.Fatalf("got %d interference entries, want 1", len(infs))
	}
	inf := infs[0]
	if math.Abs(inf.SlowdownA-1.2) > 1e-9 {
		t.Errorf("slowdown A = %v, want 1.2", inf.SlowdownA)
	}
	if math.Abs(inf.SlowdownB-1.25) > 1e-9 {
		t.Errorf("slowdown B = %v, want 1.25", inf.SlowdownB)
	}
	// Co-run energy 17·2.5 = 42.5; solo sum 12 + 30 = 42.
	if math.Abs(inf.CorunEnergyJ-42.5) > 1e-9 || math.Abs(inf.SoloEnergyJ-42) > 1e-9 {
		t.Errorf("energies = %v vs %v, want 42.5 vs 42", inf.CorunEnergyJ, inf.SoloEnergyJ)
	}
	if math.Abs(inf.ExcessEnergyJ-0.5) > 1e-9 {
		t.Errorf("excess energy = %v, want 0.5", inf.ExcessEnergyJ)
	}
	if math.Abs(inf.ExcessEnergyFrac-0.5/42) > 1e-12 {
		t.Errorf("excess energy frac = %v, want %v", inf.ExcessEnergyFrac, 0.5/42)
	}
}

func TestInterferencesSkipsWithoutBaselines(t *testing.T) {
	corun := corunResult("int-alu", "chase-dram", bench.CompIntALU, bench.CompDRAM, harness.PlaceNone, 17, 1.2, 2.5)
	// Only one of the two baselines present.
	results := []harness.Result{
		soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceNone, 12, 1.0),
		corun,
	}
	if infs := Interferences(results); len(infs) != 0 {
		t.Errorf("got %+v, want no entries when a baseline is missing", infs)
	}
	// Baseline at mismatched work (different iters) must not be used.
	badIters := soloResult("chase-dram", bench.CompDRAM, 1, harness.PlaceNone, 15, 2.0)
	badIters.Iters = 999
	results = append(results, badIters)
	if infs := Interferences(results); len(infs) != 0 {
		t.Errorf("got %+v, want no entries when baseline work differs", infs)
	}
}

func TestInterferenceBaselinePlacementPreference(t *testing.T) {
	// Same-placement baseline must win over the unpinned one.
	compact1 := soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceCompact, 12, 1.0)
	none1 := soloResult("int-alu", bench.CompIntALU, 1, harness.PlaceNone, 12, 2.0)
	dram := soloResult("chase-dram", bench.CompDRAM, 1, harness.PlaceNone, 15, 2.0)
	corun := corunResult("int-alu", "chase-dram", bench.CompIntALU, bench.CompDRAM, harness.PlaceCompact, 17, 1.2, 2.5)
	infs := Interferences([]harness.Result{compact1, none1, dram, corun})
	if len(infs) != 1 {
		t.Fatalf("got %d entries, want 1", len(infs))
	}
	if infs[0].BaselineA != "compact" {
		t.Errorf("baseline A placement = %q, want compact", infs[0].BaselineA)
	}
	if math.Abs(infs[0].SlowdownA-1.2) > 1e-9 {
		t.Errorf("slowdown A = %v, want 1.2 (against the compact baseline)", infs[0].SlowdownA)
	}
}
