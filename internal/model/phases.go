package model

import (
	"math"
	"sort"

	"energybench/internal/stats"
)

// Phase segmentation and throttle detection over time-resolved power series.
//
// A sampling series (schema v3) gives per-tick power inside one measured
// repetition. Two questions the scalar summaries cannot answer become
// answerable: does the kernel go through distinct power regimes (phases), and
// does power decay over the repetition (thermal or power-limit throttling,
// which silently biases the whole-rep mean)? Segmentation is recursive binary
// change-point detection on the power signal — split where the split most
// reduces the sum of squared errors, accept only splits whose SSE gain and
// mean jump are material — and throttling is a sliding-window OLS slope test.

// Phase is one detected power regime: a contiguous run of series points with
// a stable mean. Error bars are per-phase, so a two-regime kernel reports two
// honest means instead of one misleading whole-rep mean.
type Phase struct {
	StartS  float64 `json:"start_s"` // offset of first point in the phase
	EndS    float64 `json:"end_s"`   // offset of last point in the phase
	N       int     `json:"n"`       // points in the phase
	MeanW   float64 `json:"mean_w"`
	StdDevW float64 `json:"stddev_w"`
	SEMW    float64 `json:"sem_w"` // standard error of the phase mean
}

// Throttle is one detected sustained power decline: a window run where the
// fitted power slope stays materially negative.
type Throttle struct {
	StartS     float64 `json:"start_s"`
	EndS       float64 `json:"end_s"`
	DropW      float64 `json:"drop_w"`        // power lost over the episode
	SlopeWPerS float64 `json:"slope_w_per_s"` // steepest fitted slope seen
}

// PhaseConfig tunes segmentation. The zero value selects the defaults.
type PhaseConfig struct {
	// MinSegment is the minimum points per phase; splits that would create a
	// shorter segment are rejected. Default 3 — below that a per-phase
	// standard error is meaningless.
	MinSegment int
	// MinJumpFrac is the minimum step between adjacent phase means, as a
	// fraction of the series' overall mean power, for a split to count as a
	// real regime change rather than noise. Default 0.05 (5%).
	MinJumpFrac float64
	// MaxPhases caps recursion; default 8.
	MaxPhases int
}

func (c PhaseConfig) withDefaults() PhaseConfig {
	if c.MinSegment <= 0 {
		c.MinSegment = 3
	}
	if c.MinJumpFrac <= 0 {
		c.MinJumpFrac = 0.05
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 8
	}
	return c
}

// SegmentPhases partitions a power series into phases by recursive binary
// change-point detection. times and powers are parallel (point offsets in
// seconds and power in watts); short series collapse to a single phase.
func SegmentPhases(times, powers []float64, cfg PhaseConfig) []Phase {
	cfg = cfg.withDefaults()
	n := len(powers)
	if n == 0 || len(times) != n {
		return nil
	}
	refMean := mean(powers)
	// A zero-mean series has no scale to judge jumps against; report it as a
	// single phase rather than chasing noise.
	minJump := cfg.MinJumpFrac * math.Abs(refMean)
	var bounds []int // split indices, each the start of a new phase
	var split func(lo, hi int, budget int)
	split = func(lo, hi, budget int) {
		if budget <= 0 || hi-lo < 2*cfg.MinSegment {
			return
		}
		cut, gain := bestSplit(powers[lo:hi], cfg.MinSegment)
		if cut < 0 || gain <= 0 {
			return
		}
		cut += lo
		if minJump <= 0 || math.Abs(mean(powers[lo:cut])-mean(powers[cut:hi])) < minJump {
			return
		}
		bounds = append(bounds, cut)
		split(lo, cut, budget-1)
		split(cut, hi, budget-1)
	}
	split(0, n, cfg.MaxPhases-1)
	sort.Ints(bounds)
	var phases []Phase
	lo := 0
	for _, b := range append(bounds, n) {
		seg := powers[lo:b]
		s := stats.Summarize(seg)
		phases = append(phases, Phase{
			StartS:  times[lo],
			EndS:    times[b-1],
			N:       len(seg),
			MeanW:   s.Mean,
			StdDevW: s.StdDev,
			SEMW:    s.StdDev / math.Sqrt(float64(len(seg))),
		})
		lo = b
	}
	return phases
}

// bestSplit finds the cut index (relative, in [minSeg, len-minSeg]) that
// maximally reduces the segment's SSE, via prefix sums so the scan is O(n).
// Returns (-1, 0) when no legal cut exists.
func bestSplit(xs []float64, minSeg int) (cut int, gain float64) {
	n := len(xs)
	if n < 2*minSeg {
		return -1, 0
	}
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
		prefixSq[i+1] = prefixSq[i] + x*x
	}
	sse := func(lo, hi int) float64 {
		n := float64(hi - lo)
		sum := prefix[hi] - prefix[lo]
		return (prefixSq[hi] - prefixSq[lo]) - sum*sum/n
	}
	total := sse(0, n)
	cut = -1
	for c := minSeg; c <= n-minSeg; c++ {
		if g := total - sse(0, c) - sse(c, n); g > gain {
			gain, cut = g, c
		}
	}
	return cut, gain
}

// ThrottleConfig tunes throttle detection. The zero value selects defaults.
type ThrottleConfig struct {
	// Window is the sliding-window width in points for the slope fit.
	// Default 5.
	Window int
	// MinSlopeFrac is how steep (negative) the fitted slope must be, in
	// fractions of the series mean power per second, to flag a window.
	// Default 0.10 — power falling ≥10% of its mean per second.
	MinSlopeFrac float64
	// MinRun is how many consecutive flagged windows make an episode.
	// Default 2, so one noisy window never reports a throttle.
	MinRun int
}

func (c ThrottleConfig) withDefaults() ThrottleConfig {
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.MinSlopeFrac <= 0 {
		c.MinSlopeFrac = 0.10
	}
	if c.MinRun <= 0 {
		c.MinRun = 2
	}
	return c
}

// DetectThrottles scans a power series for sustained declines: windows whose
// OLS-fitted slope is steeper than -MinSlopeFrac × mean power per second, in
// runs of at least MinRun consecutive windows. Adjacent flagged windows merge
// into one episode spanning first window start to last window end.
func DetectThrottles(times, powers []float64, cfg ThrottleConfig) []Throttle {
	cfg = cfg.withDefaults()
	n := len(powers)
	if n < cfg.Window || len(times) != n {
		return nil
	}
	meanW := math.Abs(mean(powers))
	if meanW == 0 {
		return nil
	}
	threshold := -cfg.MinSlopeFrac * meanW
	var episodes []Throttle
	run, runStart := 0, -1
	var steepest float64
	flush := func(endWin int) {
		if run < cfg.MinRun {
			run, runStart = 0, -1
			return
		}
		first, last := runStart, endWin
		episodes = append(episodes, Throttle{
			StartS:     times[first],
			EndS:       times[last+cfg.Window-1],
			DropW:      powers[first] - powers[last+cfg.Window-1],
			SlopeWPerS: steepest,
		})
		run, runStart = 0, -1
	}
	for w := 0; w+cfg.Window <= n; w++ {
		slope := olsSlope(times[w:w+cfg.Window], powers[w:w+cfg.Window])
		if slope < threshold {
			if run == 0 {
				runStart = w
				steepest = slope
			} else if slope < steepest {
				steepest = slope
			}
			run++
			continue
		}
		flush(w - 1)
	}
	flush(n - cfg.Window)
	return episodes
}

// olsSlope fits y = a + b·x by ordinary least squares and returns b.
func olsSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var num, den float64
	for i := range xs {
		dx := xs[i] - mx
		num += dx * (ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
