// Package model decomposes measured power into the paper's linear model
// P = P_static + Σ_c a_c · activity_c via ordinary least squares over a set
// of micro-benchmark measurements, and derives the CMP-vs-SMT marginal
// energy and co-run interference metrics that are the MICRO 2012 paper's
// headline analyses.
package model
