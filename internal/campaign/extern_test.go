package campaign

import (
	"strings"
	"testing"
	"time"
)

// externYAML mirrors testdata/extern-smoke.yaml: a kernel fit space plus one
// external workload with env/components block maps and swept threads.
const externYAML = `
name: extern-unit
meter: mock
mock_watts: 30
mock_model: "int-alu:5"
store: out.jsonl
spaces:
  - name: fit
    specs: [int-alu]
    threads: [1, 2]
    reps: 1
    warmup: 0
workloads:
  - name: stress
    build: [go, build, -o, bin/stress, ./cmd/stress]
    exec: [bin/stress, -ms, "60"]
    env:
      THREADS: "${THREADS}"
      MODE: fast
    components:
      int-alu: 1
      dram: 0.25
    expect_exit: 2
    timeout: 45s
    threads: [1, 2]
    reps: 2
    warmup: 1
`

func TestParseCampaignWorkloads(t *testing.T) {
	c, err := Parse([]byte(externYAML))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workloads) != 1 {
		t.Fatalf("parsed %d workloads, want 1", len(c.Workloads))
	}
	w := c.Workloads[0]
	if w.Name != "stress" || len(w.Build) != 5 || len(w.Exec) != 3 {
		t.Errorf("workload shape: %+v", w)
	}
	// Numeric-looking argv elements stay strings when quoted.
	if w.Exec[2] != "60" {
		t.Errorf("exec[2] = %q, want the string \"60\"", w.Exec[2])
	}
	if w.Env["THREADS"] != "${THREADS}" || w.Env["MODE"] != "fast" {
		t.Errorf("env block map mis-decoded: %v", w.Env)
	}
	if w.Components["int-alu"] != 1 || w.Components["dram"] != 0.25 {
		t.Errorf("components block map mis-decoded: %v", w.Components)
	}
	if w.ExpectExit == nil || *w.ExpectExit != 2 || w.Timeout != "45s" {
		t.Errorf("expect_exit/timeout mis-decoded: %+v", w)
	}
}

func TestPlanAppendsExternTrials(t *testing.T) {
	c, err := Parse([]byte(externYAML))
	if err != nil {
		t.Fatal(err)
	}
	trials, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// 2 kernel trials (int-alu × threads 1,2), then 2 extern trials.
	if len(trials) != 4 {
		t.Fatalf("planned %d trials, want 4", len(trials))
	}
	for i, tr := range trials {
		if tr.Seq != i {
			t.Errorf("trial %d has Seq %d; plans must be globally sequenced", i, tr.Seq)
		}
		if wantExtern := i >= 2; (tr.Extern != nil) != wantExtern {
			t.Errorf("trial %d extern = %v, want %v (workloads plan after spaces)", i, tr.Extern != nil, wantExtern)
		}
	}
	ext := trials[2]
	if ext.Extern.Workload != "stress" || ext.Extern.ExpectExit != 2 ||
		ext.Extern.Timeout != 45*time.Second {
		t.Errorf("extern spec mis-resolved: %+v", ext.Extern)
	}
	if ext.Extern.Components["int-alu"] != 1 {
		t.Errorf("components lost in resolution: %v", ext.Extern.Components)
	}
	if ext.MinReps != 2 || ext.MaxReps != 2 || ext.Warmup != 1 {
		t.Errorf("rep budget: min=%d max=%d warmup=%d, want 2/2/1", ext.MinReps, ext.MaxReps, ext.Warmup)
	}
	if ext.Spec.Name != "stress" || ext.Iters != 1 {
		t.Errorf("extern trial spec/iters = %q/%d, want stress/1", ext.Spec.Name, ext.Iters)
	}
	if got, want := ext.Key("mock"), "stress||t1+0|none|mock|i1+0|w:stress"; got != want {
		t.Errorf("extern trial key = %q, want %q", got, want)
	}
	if trials[3].Threads != 2 {
		t.Errorf("threads axis not swept: %+v", trials[3])
	}
}

func TestParseRejectsInvalidWorkloads(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"adaptive with workloads",
			"algo: active\nbudget: 4\nspaces:\n  - specs: [int-alu]\n    threads: [1, 2]\nworkloads:\n  - name: w\n    exec: [./w]\n",
			"workloads require algo all"},
		{"duplicate names",
			"spaces:\n  - specs: [int-alu]\nworkloads:\n  - name: w\n    exec: [./w]\n  - name: w\n    exec: [./w2]\n",
			"duplicate workload name"},
		{"missing exec",
			"spaces:\n  - specs: [int-alu]\nworkloads:\n  - name: w\n",
			"no exec command"},
		{"bad timeout",
			"spaces:\n  - specs: [int-alu]\nworkloads:\n  - name: w\n    exec: [./w]\n    timeout: forever\n",
			"bad timeout"},
		{"zero thread count",
			"spaces:\n  - specs: [int-alu]\nworkloads:\n  - name: w\n    exec: [./w]\n    threads: [0]\n",
			"thread count"},
		{"pipe in name",
			"spaces:\n  - specs: [int-alu]\nworkloads:\n  - name: \"a|b\"\n    exec: [./w]\n",
			"may not contain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}

	// Workloads alone, with no kernel spaces, are a valid campaign.
	c, err := Parse([]byte("workloads:\n  - name: w\n    exec: [./w]\n"))
	if err != nil {
		t.Fatalf("workloads-only campaign rejected: %v", err)
	}
	trials, err := c.Plan()
	if err != nil || len(trials) != 1 || trials[0].Extern == nil {
		t.Errorf("workloads-only plan = %d trials, err %v", len(trials), err)
	}
}
