// Package campaign turns a whole paper-style characterization — multiple
// exploration spaces, an executor choice, parallelism, convergence targets,
// and an output store — into one declarative, reviewable file instead of a
// shell script of flags. A campaign file is YAML (a small dependency-free
// subset, see yaml.go) or JSON; both decode through the same schema with
// unknown-key rejection, so a typo'd field fails the load rather than
// silently running a different sweep.
package campaign
