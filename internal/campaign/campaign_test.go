package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"energybench/internal/harness"
	"energybench/internal/perf"
)

const validYAML = `
name: unit
meter: mock
mock_watts: 30
executor: subprocess
parallel: 4
trial_timeout: 90s
store: results.jsonl
resume: true
spaces:
  - name: solo
    specs: [int-alu, fp-mac]
    threads: [1, 2]
    reps: 2
    warmup: 0
    iter_scale: 0.05
  - name: corun
    corun: [int-alu+chase-l1]
    threads: [1]
    min_reps: 2
    max_reps: 6
    cv_target: 0.1
`

func TestParseValidYAMLCampaign(t *testing.T) {
	c, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "unit" || c.Executor != ExecutorSubprocess || *c.Parallel != 4 || !c.Resume {
		t.Errorf("top-level fields mis-decoded: %+v", c)
	}
	d, err := c.Timeout()
	if err != nil || d != 90*time.Second {
		t.Errorf("Timeout() = %v, %v; want 90s", d, err)
	}
	if len(c.Spaces) != 2 {
		t.Fatalf("got %d spaces, want 2", len(c.Spaces))
	}
	solo, err := c.Spaces[0].Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Specs) != 2 || solo.Reps != 2 || solo.Warmup != 0 || solo.IterScale != 0.05 {
		t.Errorf("solo space mis-resolved: %+v", solo)
	}
	// Defaults for fields the file omits must mirror the CLI flag defaults.
	if solo.CVTarget != 0.05 || solo.MaxCV != 0.2 {
		t.Errorf("solo defaults: cv_target=%v max_cv=%v, want 0.05/0.2", solo.CVTarget, solo.MaxCV)
	}
	corun, err := c.Spaces[1].Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(corun.Pairs) != 1 || corun.MinReps != 2 || corun.MaxReps != 6 || corun.CVTarget != 0.1 {
		t.Errorf("corun space mis-resolved: %+v", corun)
	}
	// Warmup omitted → CLI default 1.
	if corun.Warmup != 1 {
		t.Errorf("corun warmup = %d, want default 1", corun.Warmup)
	}
}

func TestParseJSONCampaign(t *testing.T) {
	src := `{
  "name": "json-campaign",
  "executor": "subprocess",
  "parallel": 2,
  "spaces": [{"specs": ["int-alu"], "threads": [1], "reps": 1}]
}`
	c, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "json-campaign" || c.Meter != "mock" || *c.MockWatts != 42 {
		t.Errorf("JSON campaign defaults wrong: %+v", c)
	}
}

func TestPlanRenumbersAcrossSpaces(t *testing.T) {
	c, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatal(err)
	}
	trials, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// solo: 2 specs × 2 threads × 1 placement = 4; corun: 1 pair × 1 thread.
	if len(trials) != 5 {
		t.Fatalf("got %d trials, want 5", len(trials))
	}
	for i, tr := range trials {
		if tr.Seq != i {
			t.Errorf("trial %d has Seq %d; campaign plans must be globally sequenced", i, tr.Seq)
		}
	}
	if !trials[4].IsCoRun() {
		t.Errorf("last trial should be the co-run, got %+v", trials[4])
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.yaml")
	if err := os.WriteFile(path, []byte(validYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "unit" {
		t.Errorf("loaded campaign name %q", c.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestParseRejectsInvalidCampaigns(t *testing.T) {
	base := func(mutate string) string {
		return strings.Replace(validYAML, "parallel: 4", mutate, 1)
	}
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown key", "name: x\nbogus_key: 1\nspaces:\n  - specs: [int-alu]\n", "bogus_key"},
		{"unknown meter", "meter: watts-o-matic\nspaces:\n  - specs: [int-alu]\n", "unknown meter"},
		{"unknown executor", "executor: remote\nspaces:\n  - specs: [int-alu]\n", "unknown executor"},
		{"parallel without subprocess", "parallel: 4\nspaces:\n  - specs: [int-alu]\n", "requires the subprocess executor"},
		{"negative parallel", base("parallel: -1"), "parallel must be at least 1"},
		{"explicit zero parallel", base("parallel: 0"), "parallel must be at least 1"},
		{"timeout without subprocess", "trial_timeout: 5s\nspaces:\n  - specs: [int-alu]\n", "requires the subprocess executor"},
		{"bad timeout", strings.Replace(validYAML, "90s", "ninety", 1), "bad trial_timeout"},
		{"negative timeout", strings.Replace(validYAML, "90s", "-5s", 1), "must be positive"},
		{"resume without store", strings.Replace(validYAML, "store: results.jsonl", "", 1), "resume requires a store"},
		{"no spaces", "name: x\n", "no spaces"},
		{"empty space", "spaces:\n  - name: hollow\n", "neither specs nor corun"},
		{"unknown spec", "spaces:\n  - specs: [warp-drive]\n", "warp-drive"},
		{"bad corun shape", "spaces:\n  - corun: [int-alu]\n", "specA+specB"},
		{"zero threads", "spaces:\n  - specs: [int-alu]\n    threads: [0]\n", "thread count"},
		{"bad iter scale", "spaces:\n  - specs: [int-alu]\n    iter_scale: -1\n", "iter_scale"},
		{"empty file", "   \n", "empty"},
		{"zero mock watts", "mock_watts: 0\nspaces:\n  - specs: [int-alu]\n", "mock_watts must be positive"},
		{"negative mock watts", "mock_watts: -5\nspaces:\n  - specs: [int-alu]\n", "mock_watts must be positive"},
		{"rapl with parallel", "meter: rapl\nexecutor: subprocess\nparallel: 4\nspaces:\n  - specs: [int-alu]\n", "corrupt energy numbers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestSpaceConfigExplicitZeros(t *testing.T) {
	// warmup: 0 and cv_target: 0 are meaningful values, distinct from the
	// omitted-field defaults (1 and 0.05).
	src := `
spaces:
  - specs: [int-alu]
    warmup: 0
    cv_target: 0
    max_cv: 0
`
	c, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := c.Spaces[0].Space()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Warmup != 0 || sp.CVTarget != 0 || sp.MaxCV != 0 {
		t.Errorf("explicit zeros lost: warmup=%d cv_target=%v max_cv=%v", sp.Warmup, sp.CVTarget, sp.MaxCV)
	}
	if _, err := harness.Plan(sp); err != nil {
		t.Errorf("explicit-zero space should plan cleanly: %v", err)
	}
}

// TestCampaignCounters: the counters/counter_backend fields resolve to one
// normalized perf.Spec stamped onto every planned trial, "default" expands,
// and a backend alone implies the default event set.
func TestCampaignCounters(t *testing.T) {
	src := `
name: counted
counter_backend: mock
counters: [default, cache-refs]
spaces:
  - specs: [int-alu]
    threads: [1]
    reps: 1
`
	c, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := c.CounterSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.Backend != perf.BackendMock {
		t.Fatalf("counter spec = %+v, want mock backend", spec)
	}
	if want := append(perf.DefaultEvents(), "cache-refs"); !reflect.DeepEqual(spec.Events, want) {
		t.Errorf("events = %v, want %v", spec.Events, want)
	}
	trials, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if tr.Counters == nil || !reflect.DeepEqual(tr.Counters.Events, spec.Events) {
			t.Errorf("trial %d counters = %+v, want the campaign spec", tr.Seq, tr.Counters)
		}
	}

	// Backend alone implies the default events.
	backendOnly, err := Parse([]byte("name: x\ncounter_backend: mock\nspaces:\n  - specs: [int-alu]\n"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err = backendOnly.CounterSpec()
	if err != nil || spec == nil || !reflect.DeepEqual(spec.Events, perf.DefaultEvents()) {
		t.Errorf("backend-only counter spec = %+v (%v), want default events", spec, err)
	}

	// No counter fields means no counters on the trials.
	plain, err := Parse([]byte("name: x\nspaces:\n  - specs: [int-alu]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec, err := plain.CounterSpec(); err != nil || spec != nil {
		t.Errorf("plain campaign counter spec = %+v (%v), want nil", spec, err)
	}
	trials, err = plain.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if trials[0].Counters != nil {
		t.Error("plain campaign stamped counters onto trials")
	}
}

// TestCampaignCountersRejected: bad counter configuration fails the load.
func TestCampaignCountersRejected(t *testing.T) {
	for _, src := range []string{
		"name: x\ncounters: [tlb-misses]\nspaces:\n  - specs: [int-alu]\n",
		"name: x\ncounters: [default]\ncounter_backend: msr\nspaces:\n  - specs: [int-alu]\n",
	} {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

// TestCampaignSampleInterval: the sample_interval key must parse as a Go
// duration and stamp every planned trial, and bad values must fail the load.
func TestCampaignSampleInterval(t *testing.T) {
	src := `{
  "name": "sampled",
  "sample_interval": "10ms",
  "spaces": [
    {"specs": ["int-alu"], "threads": [1], "reps": 1},
    {"specs": ["fp-mac"], "threads": [1], "reps": 1}
  ]
}`
	c, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Sampling()
	if err != nil || d != 10*time.Millisecond {
		t.Fatalf("Sampling() = %v, %v; want 10ms", d, err)
	}
	trials, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("planned %d trials, want 2", len(trials))
	}
	for i, tr := range trials {
		if tr.SampleInterval != 10*time.Millisecond {
			t.Errorf("trial %d SampleInterval = %v, want 10ms", i, tr.SampleInterval)
		}
	}

	for _, bad := range []string{
		`{"sample_interval": "banana", "spaces": [{"specs": ["int-alu"]}]}`,
		`{"sample_interval": "-5ms", "spaces": [{"specs": ["int-alu"]}]}`,
		`{"sample_interval": "0s", "spaces": [{"specs": ["int-alu"]}]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%s) accepted a bad sample_interval", bad)
		}
	}

	// Omitted → sampling off.
	c2, err := Parse([]byte(`{"spaces": [{"specs": ["int-alu"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := c2.Sampling(); err != nil || d != 0 {
		t.Errorf("Sampling() on omitted key = %v, %v; want 0", d, err)
	}
}
