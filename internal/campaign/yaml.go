package campaign

// A dependency-free parser for the YAML subset campaign files use. Campaign
// files are flat, regular documents — nested block mappings, block sequences
// whose items are scalars or mappings, flow sequences ([a, b]), quoted and
// plain scalars, and # comments — so a small indentation-driven recursive
// parser covers them without pulling a YAML dependency into the module.
// Anchors, aliases, multi-document streams, multiline scalars, and tags are
// deliberately out of scope and fail with a line-numbered error.
//
// The parse result uses the same shapes encoding/json produces
// (map[string]any, []any, string, float64, bool, nil), so a parsed document
// can round-trip through encoding/json into a typed struct — which is
// exactly how Load decodes campaigns, YAML and JSON alike, with unknown-key
// checking from a single code path.

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlLine is one significant source line: indentation, content with
// comments stripped, and the 1-based source line number for errors.
type yamlLine struct {
	indent int
	text   string
	num    int
}

// parseYAML parses the YAML subset into JSON-shaped Go values.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, rest, err := parseYAMLBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected de-indented content %q", rest[0].num, rest[0].text)
	}
	return v, nil
}

// splitYAMLLines strips comments and blank lines, measures indentation, and
// rejects constructs outside the subset (tabs, document markers).
func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		// YAML forbids tabs only in indentation; a tab inside a quoted
		// scalar or comment is fine.
		if leading := raw[:len(raw)-len(strings.TrimLeft(raw, " \t"))]; strings.Contains(leading, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", num)
		}
		text := stripYAMLComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if trimmed == "---" || trimmed == "..." {
			if len(out) == 0 && trimmed == "---" {
				continue // leading document marker is harmless
			}
			return nil, fmt.Errorf("yaml: line %d: multi-document streams are not supported", num)
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		out = append(out, yamlLine{indent: indent, text: trimmed, num: num})
	}
	return out, nil
}

// quoteOpener reports whether a quote character at index i begins a quoted
// token rather than sitting inside a plain scalar (as in `bob's sweep`):
// quotes only open at the start of the line or after a separator.
func quoteOpener(s string, i int) bool {
	if i == 0 {
		return true
	}
	switch s[i-1] {
	case ' ', '[', ',':
		return true
	}
	return false
}

// stripYAMLComment removes a trailing # comment, respecting quoted strings.
// An apostrophe inside a plain scalar does not open a quote, and escaped
// quotes (” inside single quotes, \" inside double quotes) do not close
// one.
func stripYAMLComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inSingle:
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					i++ // escaped '' stays inside the string
				} else {
					inSingle = false
				}
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'' && quoteOpener(s, i):
			inSingle = true
		case c == '"' && quoteOpener(s, i):
			inDouble = true
		case c == '#' && (i == 0 || s[i-1] == ' '):
			// A # starts a comment at line start or after whitespace.
			return s[:i]
		}
	}
	return s
}

// parseYAMLBlock parses one block (mapping or sequence) whose entries sit at
// exactly the given indent, returning the unconsumed tail.
func parseYAMLBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, lines, nil
	}
	if lines[0].indent != indent {
		return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", lines[0].num)
	}
	if isSeqItem(lines[0].text) {
		return parseYAMLSeq(lines, indent)
	}
	return parseYAMLMap(lines, indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func parseYAMLMap(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.num)
		}
		if isSeqItem(ln.text) {
			return nil, nil, fmt.Errorf("yaml: line %d: sequence item inside a mapping (indent list items under their key)", ln.num)
		}
		key, rest, err := splitYAMLKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := parseYAMLScalar(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			continue
		}
		// Empty value: a nested block indented deeper, a block sequence at
		// the key's own indent (the common YAML style for lists), or null.
		switch {
		case len(lines) > 0 && lines[0].indent > indent:
			v, tail, err := parseYAMLBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			lines = tail
		case len(lines) > 0 && lines[0].indent == indent && isSeqItem(lines[0].text):
			v, tail, err := parseYAMLSeq(lines, indent)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			lines = tail
		default:
			m[key] = nil
		}
	}
	return m, lines, nil
}

func parseYAMLSeq(lines []yamlLine, indent int) (any, []yamlLine, error) {
	items := []any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.num)
		}
		if !isSeqItem(ln.text) {
			break
		}
		body := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if body == "" {
			// "-" alone: the item is a nested block on the following lines.
			lines = lines[1:]
			if len(lines) == 0 || lines[0].indent <= indent {
				items = append(items, nil)
				continue
			}
			v, tail, err := parseYAMLBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, v)
			lines = tail
			continue
		}
		if _, _, err := splitYAMLKey(yamlLine{text: body, num: ln.num}); err == nil {
			// "- key: ..." starts an inline mapping item: rewrite the dash
			// as indentation so the item parses as a mapping whose first
			// entry is on the dash line and whose later entries sit at the
			// body's column (dash column + "- " width).
			bodyIndent := indent + (len(ln.text) - len(body))
			rewritten := append([]yamlLine{{indent: bodyIndent, text: body, num: ln.num}}, lines[1:]...)
			v, tail, err := parseYAMLMap(rewritten, bodyIndent)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, v)
			lines = tail
			continue
		}
		// Plain scalar item.
		v, err := parseYAMLScalar(body, ln.num)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, v)
		lines = lines[1:]
	}
	return items, lines, nil
}

// splitYAMLKey splits "key: value" / "key:" into key and trailing value,
// supporting quoted keys. A missing colon is an error.
func splitYAMLKey(ln yamlLine) (key, rest string, err error) {
	text := ln.text
	if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
		q := text[0]
		end := strings.IndexByte(text[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("yaml: line %d: unterminated quoted key", ln.num)
		}
		key = text[1 : 1+end]
		tail := strings.TrimSpace(text[2+end:])
		if !strings.HasPrefix(tail, ":") {
			return "", "", fmt.Errorf("yaml: line %d: expected ':' after quoted key", ln.num)
		}
		return key, strings.TrimSpace(tail[1:]), nil
	}
	i := strings.Index(text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected 'key: value', got %q", ln.num, text)
	}
	// "key:value" without a space is a plain scalar in YAML, but in config
	// files it is almost always a typo; require ": " or line-ending ":".
	if i+1 < len(text) && text[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml: line %d: missing space after ':' in %q", ln.num, text)
	}
	return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), nil
}

// parseYAMLScalar parses a scalar or flow sequence into a JSON-shaped value.
func parseYAMLScalar(s string, num int) (any, error) {
	switch {
	case s == "":
		return nil, nil
	case strings.HasPrefix(s, "["):
		return parseYAMLFlowSeq(s, num)
	case strings.HasPrefix(s, "{"):
		return nil, fmt.Errorf("yaml: line %d: flow mappings are not supported", num)
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "!"):
		return nil, fmt.Errorf("yaml: line %d: anchors, aliases, and tags are not supported", num)
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("yaml: line %d: block scalars are not supported", num)
	}
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("yaml: line %d: unterminated quoted string", num)
		}
		if s[0] == '"' {
			out, err := strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("yaml: line %d: bad double-quoted string: %v", num, err)
			}
			return out, nil
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "Null", "~":
		return nil, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return float64(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// parseYAMLFlowSeq parses a single-line flow sequence like [a, "b", 3].
// Nested flow collections are outside the subset.
func parseYAMLFlowSeq(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence %q", num, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	items := []any{}
	if inner == "" {
		return items, nil
	}
	for _, part := range splitFlowItems(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("yaml: line %d: empty element in flow sequence %q", num, s)
		}
		if strings.HasPrefix(part, "[") || strings.HasPrefix(part, "{") {
			return nil, fmt.Errorf("yaml: line %d: nested flow collections are not supported", num)
		}
		v, err := parseYAMLScalar(part, num)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
	}
	return items, nil
}

// splitFlowItems splits on commas that are outside quotes, with the same
// token-start quote rules as stripYAMLComment so `[don't, x]` stays two
// plain scalars.
func splitFlowItems(s string) []string {
	var parts []string
	inSingle, inDouble := false, false
	last := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inSingle:
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					i++
				} else {
					inSingle = false
				}
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'' && quoteOpener(s, i):
			inSingle = true
		case c == '"' && quoteOpener(s, i):
			inDouble = true
		case c == ',':
			parts = append(parts, s[last:i])
			last = i + 1
		}
	}
	return append(parts, s[last:])
}
