package campaign

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLCampaignShape(t *testing.T) {
	src := `
# a full campaign-shaped document
name: smoke          # inline comment
meter: mock
mock_watts: 35.5
parallel: 4
resume: true
store: "out dir/results.jsonl"
spaces:
  - name: solo
    specs: [int-alu, fp-mac]
    threads: [1, 2]
    iter_scale: 0.05
  - name: corun
    corun:
      - int-alu+fp-mac
    threads: [1]
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":       "smoke",
		"meter":      "mock",
		"mock_watts": 35.5,
		"parallel":   float64(4),
		"resume":     true,
		"store":      "out dir/results.jsonl",
		"spaces": []any{
			map[string]any{
				"name":       "solo",
				"specs":      []any{"int-alu", "fp-mac"},
				"threads":    []any{float64(1), float64(2)},
				"iter_scale": 0.05,
			},
			map[string]any{
				"name":    "corun",
				"corun":   []any{"int-alu+fp-mac"},
				"threads": []any{float64(1)},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed document mismatch:\n got: %#v\nwant: %#v", got, want)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	src := `
str: plain string
squote: 'single ''quoted'''
dquote: "tab\tend"
truthy: true
falsy: false
nothing: null
tilde: ~
empty:
int: -7
float: 2.5
duration: 90s
flow_empty: []
flow_quoted: ["a, b", 'c']
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	checks := map[string]any{
		"str":         "plain string",
		"squote":      "single 'quoted'",
		"dquote":      "tab\tend",
		"truthy":      true,
		"falsy":       false,
		"nothing":     nil,
		"tilde":       nil,
		"empty":       nil,
		"int":         float64(-7),
		"float":       2.5,
		"duration":    "90s",
		"flow_empty":  []any{},
		"flow_quoted": []any{"a, b", "c"},
	}
	for k, want := range checks {
		if gotV, ok := m[k]; !ok || !reflect.DeepEqual(gotV, want) {
			t.Errorf("%s = %#v (present=%v), want %#v", k, gotV, ok, want)
		}
	}
}

func TestParseYAMLSequenceAtKeyIndent(t *testing.T) {
	// The common YAML style puts list items at the same column as their
	// key; both that and the indented form must parse identically.
	src := `
spaces:
- name: solo
  specs: [int-alu]
- name: corun
threads: [1]
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"spaces": []any{
			map[string]any{"name": "solo", "specs": []any{"int-alu"}},
			map[string]any{"name": "corun"},
		},
		"threads": []any{float64(1)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestParseYAMLNestedDashItems(t *testing.T) {
	src := `
items:
  -
    name: standalone-dash
  - plain-scalar
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"items": []any{
		map[string]any{"name": "standalone-dash"},
		"plain-scalar",
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "tabs"},
		{"multi-doc", "a: 1\n---\nb: 2\n", "multi-document"},
		{"flow map", "a: {b: 1}\n", "flow mappings"},
		{"anchor", "a: &x 1\n", "anchors"},
		{"block scalar", "a: |\n  text\n", "block scalars"},
		{"missing colon", "just a line\n", "key: value"},
		{"missing space after colon", "a:1\n", "missing space"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"unterminated flow", "a: [1, 2\n", "unterminated flow"},
		{"nested flow", "a: [[1], 2]\n", "nested flow"},
		{"bad deep indent", "a: 1\n    b: 2\n", "indentation"},
		{"seq in map", "a: 1\n- b\n", "sequence item inside a mapping"},
		{"empty", "   \n# only comments\n", "empty document"},
		{"unterminated dquote", "a: \"oops\n", "unterminated quoted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestStripYAMLCommentRespectsQuotes(t *testing.T) {
	cases := map[string]string{
		`key: "a # not comment" # real`: `key: "a # not comment" `,
		`key: 'x # y'`:                  `key: 'x # y'`,
		`key: value#notcomment`:         `key: value#notcomment`,
		`# whole line`:                  ``,
		// An apostrophe inside a plain scalar must not open a quote and
		// swallow the trailing comment.
		`name: bob's sweep  # nightly`: `name: bob's sweep  `,
		`key: 'don''t # keep' # cut`:   `key: 'don''t # keep' `,
	}
	for in, want := range cases {
		if got := stripYAMLComment(in); got != want {
			t.Errorf("stripYAMLComment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseYAMLApostropheInPlainScalars(t *testing.T) {
	src := `
name: bob's sweep # comment
list: [don't, it's]
`
	got, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "bob's sweep",
		"list": []any{"don't", "it's"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}
