package campaign

import (
	"strings"
	"testing"

	"energybench/internal/adapt"
)

const adaptiveYAML = `
name: adaptive
meter: mock
mock_model: "int-alu:2,dram:8"
mock_noise_w: 0.3
algo: active
batch: 6
budget: 12
target_rse: 0.04
seed: 11
store: results.jsonl
spaces:
  - specs: [int-alu, chase-dram]
    threads: [1, 2, 3, 4]
`

func TestParseAdaptiveCampaign(t *testing.T) {
	c, err := Parse([]byte(adaptiveYAML))
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := c.AdaptConfig()
	if !ok {
		t.Fatal("AdaptConfig reports a non-adaptive campaign")
	}
	want := adapt.Config{Algo: "active", Batch: 6, Budget: 12, TargetRSE: 0.04, Seed: 11}
	if cfg != want {
		t.Errorf("AdaptConfig = %+v, want %+v", cfg, want)
	}
	planted, err := c.MockModelMap()
	if err != nil {
		t.Fatal(err)
	}
	if planted["int-alu"] != 2 || planted["dram"] != 8 {
		t.Errorf("MockModelMap = %v, want int-alu:2 dram:8", planted)
	}
	if c.MockNoiseW == nil || *c.MockNoiseW != 0.3 {
		t.Errorf("MockNoiseW = %v, want 0.3", c.MockNoiseW)
	}
}

func TestExhaustiveCampaignHasNoAdaptConfig(t *testing.T) {
	c, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.AdaptConfig(); ok {
		t.Error("AdaptConfig claims an exhaustive campaign is adaptive")
	}
}

func TestAdaptiveCampaignValidation(t *testing.T) {
	base := `
meter: mock
spaces:
  - specs: [int-alu]
    threads: [1, 2]
`
	cases := []struct {
		name    string
		extra   string
		wantErr string
	}{
		{"unknown algo", "algo: anneal\n", "unknown algo"},
		{"batch without algo", "batch: 4\n", "batch requires algo"},
		{"budget without algo", "budget: 9\n", "budget requires algo"},
		{"target_rse without algo", "target_rse: 0.1\n", "target_rse requires algo"},
		{"seed without algo", "seed: 3\n", "seed requires algo"},
		{"target_rse with bo", "algo: bo\ntarget_rse: 0.1\n", "applies only to algo active"},
		{"zero batch", "algo: active\nbatch: 0\n", "batch must be at least 1"},
		{"zero budget", "algo: active\nbudget: 0\n", "budget must be at least 1"},
		{"zero seed", "algo: active\nseed: 0\n", "seed must be nonzero"},
		{"negative target", "algo: active\ntarget_rse: -0.5\n", "target_rse must be positive"},
		{"model off-mock", "meter: rapl\nmock_model: \"int-alu:2\"\n", "mock_model requires the mock meter"},
		{"bad model", "mock_model: \"int-alu\"\n", "component:watts"},
		{"noise without model", "mock_noise_w: 0.5\n", "requires mock_model"},
		{"negative noise", "mock_model: \"int-alu:2\"\nmock_noise_w: -1\n", "must be non-negative"},
	}
	for _, tc := range cases {
		doc := base + tc.extra
		if tc.name == "model off-mock" {
			doc = strings.Replace(base, "meter: mock\n", "", 1) + tc.extra
		}
		_, err := Parse([]byte(doc))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
