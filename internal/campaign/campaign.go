package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"energybench/internal/adapt"
	"energybench/internal/bench"
	"energybench/internal/extwork"
	"energybench/internal/harness"
	"energybench/internal/meter"
	"energybench/internal/perf"
)

// Executor names the trial execution backend a campaign requests.
const (
	ExecutorInProcess  = "inprocess"
	ExecutorSubprocess = "subprocess"
)

// Campaign is the top-level schema of a campaign file.
type Campaign struct {
	// Name labels the campaign in logs and stored artifacts.
	Name string `json:"name"`
	// Meter picks the energy backend: "mock" (default) or "rapl".
	Meter string `json:"meter,omitempty"`
	// MockWatts is the constant power the mock meter models (default 42;
	// a pointer so the zero value stays distinguishable — and rejectable —
	// rather than silently becoming the default).
	MockWatts *float64 `json:"mock_watts,omitempty"`
	// MockModel plants a linear power model on the mock meter:
	// "component:watts,..." terms added per active thread on top of
	// MockWatts (the intercept). It gives the mock configuration-dependent
	// power, which adaptive-planner campaigns and CI smokes fit against.
	MockModel string `json:"mock_model,omitempty"`
	// MockNoiseW adds a deterministic per-configuration perturbation of this
	// amplitude (watts) to a planted model, so fits see residual scatter.
	MockNoiseW *float64 `json:"mock_noise_w,omitempty"`
	// Algo picks the campaign planning algorithm: "all" (default, exhaustive
	// grid), "active" (D-optimal active learning converging the power
	// model), or "bo" (expected-improvement search for the lowest-EDP
	// configuration).
	Algo string `json:"algo,omitempty"`
	// Batch is the number of trials the adaptive planner dispatches per
	// round (default 8). Requires algo active|bo.
	Batch *int `json:"batch,omitempty"`
	// Budget caps the number of newly executed trials of an adaptive
	// campaign (default: the full grid). Requires algo active|bo.
	Budget *int `json:"budget,omitempty"`
	// TargetRSE is the active-mode convergence target: the campaign stops
	// once every coefficient's relative standard error is at or below it
	// (default 0.05). Requires algo active.
	TargetRSE *float64 `json:"target_rse,omitempty"`
	// Seed drives every random choice the adaptive planner makes (default
	// 1). Requires algo active|bo.
	Seed *int64 `json:"seed,omitempty"`
	// Executor picks the trial backend: "inprocess" (default) or
	// "subprocess" (each trial in a freshly exec'd worker child).
	Executor string `json:"executor,omitempty"`
	// Parallel is the maximum number of concurrently running trials under
	// the core-leasing scheduler; default 1. Values above 1 require the
	// subprocess executor. A pointer so an explicit `parallel: 0` is
	// rejected instead of silently becoming the default.
	Parallel *int `json:"parallel,omitempty"`
	// TrialTimeout is a Go duration ("90s", "2m") bounding one trial's wall
	// clock under the subprocess executor; empty means no limit.
	TrialTimeout string `json:"trial_timeout,omitempty"`
	// SampleInterval is a Go duration ("10ms") switching on in-trial
	// time-resolved sampling for every space: the energy meter (and any
	// counter sessions) is polled on this period during each measured
	// repetition and a per-rep series rides on every sample. Empty disables
	// sampling.
	SampleInterval string `json:"sample_interval,omitempty"`
	// Store is the result store path, flushed per configuration: a single
	// JSONL file for .jsonl/.json paths, a sharded segment directory
	// otherwise.
	Store string `json:"store,omitempty"`
	// Resume skips trials whose configuration key Store already holds.
	Resume bool `json:"resume,omitempty"`
	// Counters enables hardware activity metering on every trial and names
	// the event set ("default" expands to the standard set). Empty with an
	// empty CounterBackend means no counters.
	Counters []string `json:"counters,omitempty"`
	// CounterBackend picks the activity backend: "perf" (default when
	// Counters is set) or "mock" for deterministic CI runs.
	CounterBackend string `json:"counter_backend,omitempty"`
	// Hosts restricts which fleet agents may execute this campaign's
	// trials, matched against each agent's registered host name. Empty
	// means any agent. The key is meaningful only when the campaign is
	// submitted to an `energybench serve` coordinator; a local `run
	// --campaign` rejects it so a fleet-scoped file cannot silently run
	// on the wrong machine.
	Hosts []string `json:"hosts,omitempty"`
	// Spaces are the exploration spaces to sweep, in order.
	Spaces []SpaceConfig `json:"spaces"`
	// Workloads are external applications to run as metered regions after
	// the kernel spaces, each expanded over its own threads × placements
	// grid (internal/extwork). A campaign may declare workloads alone
	// (validation-only runs against an existing fitted store) or alongside
	// spaces (fit and validate in one sweep).
	Workloads []extwork.Workload `json:"workloads,omitempty"`
}

// SpaceConfig is the declarative form of one harness.Space. Optional fields
// are pointers where zero is a meaningful value (warmup 0, cv_target 0), so
// "omitted" and "explicitly zero" stay distinguishable; the defaults mirror
// the CLI flag defaults.
type SpaceConfig struct {
	// Name labels the space in errors and logs.
	Name string `json:"name,omitempty"`
	// Specs are catalog spec names to run solo.
	Specs []string `json:"specs,omitempty"`
	// Corun are co-run pairs, each "specA+specB".
	Corun []string `json:"corun,omitempty"`
	// Threads are the thread counts to sweep (default [1, 2], matching the
	// CLI --threads default). For a co-run pair a count of n means n
	// threads of each spec.
	Threads []int `json:"threads,omitempty"`
	// Placements are thread-pinning policies: none|compact|scatter
	// (default [none]).
	Placements []string `json:"placements,omitempty"`
	// Reps is the fixed repetition count (default 3); MinReps/MaxReps
	// switch on adaptive repetitions exactly as the CLI flags do.
	Reps     int      `json:"reps,omitempty"`
	MinReps  int      `json:"min_reps,omitempty"`
	MaxReps  int      `json:"max_reps,omitempty"`
	CVTarget *float64 `json:"cv_target,omitempty"`  // default 0.05
	Warmup   *int     `json:"warmup,omitempty"`     // default 1
	IterScal *float64 `json:"iter_scale,omitempty"` // default 1.0
	MaxCV    *float64 `json:"max_cv,omitempty"`     // default 0.2
}

// Load reads and validates a campaign file. Files whose first significant
// byte is '{' are decoded as JSON; everything else goes through the YAML
// subset parser. Both paths reject unknown keys.
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		// Parse/Validate errors already carry the "campaign:" prefix where
		// appropriate; only the file path is added here.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Parse decodes and validates campaign file contents (YAML subset or JSON).
func Parse(data []byte) (*Campaign, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty campaign file")
	}
	jsonDoc := trimmed
	if trimmed[0] != '{' {
		v, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		jsonDoc, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("re-encoding parsed yaml: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonDoc))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("decoding campaign: %w", err)
	}
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

func (c *Campaign) applyDefaults() {
	if c.Meter == "" {
		c.Meter = "mock"
	}
	if c.MockWatts == nil {
		w := 42.0
		c.MockWatts = &w
	}
	if c.Executor == "" {
		c.Executor = ExecutorInProcess
	}
	if c.Parallel == nil {
		p := 1
		c.Parallel = &p
	}
}

// ValidateMeter checks an energy-backend name against the known set. It is
// the single meter-name authority shared by campaign files, the CLI run
// flags, and worker children, so a new backend cannot be accepted by one
// entry point and rejected by another.
func ValidateMeter(name string) error {
	switch name {
	case "mock", "rapl":
		return nil
	}
	return fmt.Errorf("unknown meter %q (want mock|rapl)", name)
}

// ValidateExec checks the meter/executor/parallelism/timeout invariants
// shared by campaign files and the CLI run flags, so the two entry points
// can never drift: the executor name must be known, parallelism above 1 and
// per-trial timeouts both require the subprocess executor (in-process
// trials share one address space and meter, cannot overlap, and cannot be
// killed safely), and parallelism is refused outright under the rapl meter
// — concurrent trials all read the same machine-wide package counters, so
// every energy delta would silently include the other in-flight trials'
// work.
func ValidateExec(meterName, executor string, parallel int, timeout time.Duration) error {
	switch executor {
	case ExecutorInProcess, ExecutorSubprocess:
	default:
		return fmt.Errorf("unknown executor %q (want %s|%s)", executor, ExecutorInProcess, ExecutorSubprocess)
	}
	if parallel < 1 {
		return fmt.Errorf("parallel must be at least 1, got %d", parallel)
	}
	if parallel > 1 && executor != ExecutorSubprocess {
		return fmt.Errorf("parallel %d requires the subprocess executor: in-process trials share one address space and meter and cannot run concurrently", parallel)
	}
	if parallel > 1 && meterName == "rapl" {
		return fmt.Errorf("parallel %d with the rapl meter would corrupt energy numbers: concurrent trials share the package energy counters (absolute characterization needs parallel 1)", parallel)
	}
	if timeout < 0 {
		return fmt.Errorf("trial timeout must be non-negative, got %v", timeout)
	}
	if timeout > 0 && executor != ExecutorSubprocess {
		return fmt.Errorf("a trial timeout requires the subprocess executor: an in-process trial cannot be killed safely")
	}
	return nil
}

// ValidatePlanner checks the adaptive-planner knob invariants shared by
// campaign files and the CLI run flags: the algo name must be known; batch,
// budget, target_rse, and seed are only meaningful on an adaptive campaign
// (nil means unset); and target_rse applies only to active mode — bo's
// stopping rule is expected improvement, not coefficient precision, so a
// target_rse there would be silently ignored and is rejected instead.
func ValidatePlanner(algo string, batch, budget *int, targetRSE *float64, seed *int64) error {
	if err := adapt.ValidateAlgo(algo); err != nil {
		return err
	}
	if algo == "" || algo == adapt.AlgoAll {
		switch {
		case batch != nil:
			return fmt.Errorf("batch requires algo active|bo")
		case budget != nil:
			return fmt.Errorf("budget requires algo active|bo")
		case targetRSE != nil:
			return fmt.Errorf("target_rse requires algo active")
		case seed != nil:
			return fmt.Errorf("seed requires algo active|bo")
		}
		return nil
	}
	if batch != nil && *batch < 1 {
		return fmt.Errorf("batch must be at least 1, got %d", *batch)
	}
	if budget != nil && *budget < 1 {
		return fmt.Errorf("budget must be at least 1, got %d", *budget)
	}
	if targetRSE != nil {
		if algo == adapt.AlgoBO {
			return fmt.Errorf("target_rse applies only to algo active (bo stops on expected improvement)")
		}
		if *targetRSE <= 0 {
			return fmt.Errorf("target_rse must be positive, got %v", *targetRSE)
		}
	}
	if seed != nil && *seed == 0 {
		return fmt.Errorf("seed must be nonzero (0 means unset; the default is %d)", adapt.DefaultSeed)
	}
	return nil
}

// Validate checks the campaign's cross-field invariants and that every
// space expands into a valid harness.Space (spec names resolve against the
// catalog, thread counts are positive, and so on).
func (c *Campaign) Validate() error {
	if err := ValidateMeter(c.Meter); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if c.MockWatts != nil && *c.MockWatts <= 0 {
		return fmt.Errorf("campaign: mock_watts must be positive, got %v", *c.MockWatts)
	}
	if c.MockModel != "" && c.Meter != "mock" {
		return fmt.Errorf("campaign: mock_model requires the mock meter, not %q", c.Meter)
	}
	if _, err := c.MockModelMap(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if c.MockNoiseW != nil {
		if c.MockModel == "" {
			return fmt.Errorf("campaign: mock_noise_w requires mock_model")
		}
		if *c.MockNoiseW < 0 {
			return fmt.Errorf("campaign: mock_noise_w must be non-negative, got %v", *c.MockNoiseW)
		}
	}
	if err := ValidatePlanner(c.Algo, c.Batch, c.Budget, c.TargetRSE, c.Seed); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	timeout, err := c.Timeout()
	if err != nil {
		return err
	}
	if err := ValidateExec(c.Meter, c.Executor, *c.Parallel, timeout); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if c.Resume && c.Store == "" {
		return fmt.Errorf("campaign: resume requires a store")
	}
	for _, h := range c.Hosts {
		if strings.TrimSpace(h) == "" {
			return fmt.Errorf("campaign: hosts entries must be non-empty host names")
		}
		if strings.ContainsAny(h, "|/") {
			return fmt.Errorf("campaign: host name %q must not contain '|' or '/' (they delimit store keys)", h)
		}
	}
	if _, err := c.Sampling(); err != nil {
		return err
	}
	if _, err := c.CounterSpec(); err != nil {
		return err
	}
	if len(c.Spaces) == 0 && len(c.Workloads) == 0 {
		return fmt.Errorf("campaign: no spaces or workloads declared")
	}
	for i := range c.Spaces {
		space, err := c.Spaces[i].Space()
		if err == nil {
			err = space.Validate()
		}
		if err != nil {
			return fmt.Errorf("campaign: space %s: %w", c.Spaces[i].label(i), err)
		}
	}
	if len(c.Workloads) > 0 && c.Algo != "" && c.Algo != adapt.AlgoAll {
		// Adaptive planners search the kernel configuration space; external
		// workloads are validation targets, not fit observations, so an
		// adaptive campaign cannot decide when a workload is "worth" running.
		return fmt.Errorf("campaign: workloads require algo all (adaptive planners search the kernel space only)")
	}
	seen := map[string]bool{}
	for i := range c.Workloads {
		w := &c.Workloads[i]
		if err := w.Validate(); err != nil {
			return fmt.Errorf("campaign: workload #%d: %w", i+1, err)
		}
		if seen[w.Name] {
			return fmt.Errorf("campaign: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
	return nil
}

// MockModelMap parses the mock_model key into the planted-model map handed
// to meter.Mock; nil when unset.
func (c *Campaign) MockModelMap() (map[string]float64, error) {
	return meter.ParseMockModel(c.MockModel)
}

// AdaptConfig resolves the planner knobs into an adapt.Config; ok is false
// for an exhaustive (algo all or unset) campaign. Unset knobs stay zero —
// the planner applies its documented defaults.
func (c *Campaign) AdaptConfig() (adapt.Config, bool) {
	if c.Algo != adapt.AlgoActive && c.Algo != adapt.AlgoBO {
		return adapt.Config{}, false
	}
	cfg := adapt.Config{Algo: c.Algo}
	if c.Batch != nil {
		cfg.Batch = *c.Batch
	}
	if c.Budget != nil {
		cfg.Budget = *c.Budget
	}
	if c.TargetRSE != nil {
		cfg.TargetRSE = *c.TargetRSE
	}
	if c.Seed != nil {
		cfg.Seed = *c.Seed
	}
	return cfg, true
}

// CounterSpec resolves the counters/counter_backend fields into the
// normalized activity-metering spec applied to every space, or nil when the
// campaign requests no counters.
func (c *Campaign) CounterSpec() (*perf.Spec, error) {
	if len(c.Counters) == 0 && c.CounterBackend == "" {
		return nil, nil
	}
	spec, err := perf.Spec{Backend: c.CounterBackend, Events: c.Counters}.Normalize()
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &spec, nil
}

// Timeout parses the trial_timeout field; zero when unset.
func (c *Campaign) Timeout() (time.Duration, error) {
	if c.TrialTimeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(c.TrialTimeout)
	if err != nil {
		return 0, fmt.Errorf("campaign: bad trial_timeout %q: %w", c.TrialTimeout, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("campaign: trial_timeout must be positive, got %v", d)
	}
	return d, nil
}

// Sampling parses the sample_interval field; zero when unset.
func (c *Campaign) Sampling() (time.Duration, error) {
	if c.SampleInterval == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(c.SampleInterval)
	if err != nil {
		return 0, fmt.Errorf("campaign: bad sample_interval %q: %w", c.SampleInterval, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("campaign: sample_interval must be positive, got %v", d)
	}
	return d, nil
}

// LookupSpecs resolves catalog spec names, trimming whitespace. It is the
// single name-resolution path shared by campaign files and the CLI's
// --specs flag.
func LookupSpecs(names []string) ([]bench.Spec, error) {
	var specs []bench.Spec
	for _, name := range names {
		s, err := bench.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// ParsePairs resolves "specA+specB" co-run pair syntax against the catalog.
// It is the single pair-parsing path shared by campaign files and the
// CLI's --corun flag.
func ParsePairs(pairs []string) ([]harness.Pair, error) {
	var out []harness.Pair
	for _, pair := range pairs {
		nameA, nameB, ok := strings.Cut(pair, "+")
		if !ok {
			return nil, fmt.Errorf("corun pair %q is not of the form specA+specB", pair)
		}
		a, err := bench.Lookup(strings.TrimSpace(nameA))
		if err != nil {
			return nil, err
		}
		b, err := bench.Lookup(strings.TrimSpace(nameB))
		if err != nil {
			return nil, err
		}
		out = append(out, harness.Pair{A: a, B: b})
	}
	return out, nil
}

func (sc *SpaceConfig) label(i int) string {
	if sc.Name != "" {
		return fmt.Sprintf("%q", sc.Name)
	}
	return fmt.Sprintf("#%d", i+1)
}

// Space resolves the declarative space into a runnable harness.Space,
// looking spec names up in the benchmark catalog and applying the CLI-flag
// defaults for omitted fields.
func (sc *SpaceConfig) Space() (harness.Space, error) {
	space := harness.Space{
		Reps:      sc.Reps,
		MinReps:   sc.MinReps,
		MaxReps:   sc.MaxReps,
		CVTarget:  0.05,
		Warmup:    1,
		IterScale: 1.0,
		MaxCV:     0.2,
	}
	if space.Reps == 0 && space.MinReps == 0 {
		space.Reps = 3
	}
	if sc.CVTarget != nil {
		space.CVTarget = *sc.CVTarget
	}
	if sc.Warmup != nil {
		space.Warmup = *sc.Warmup
	}
	if sc.IterScal != nil {
		space.IterScale = *sc.IterScal
	}
	if sc.MaxCV != nil {
		space.MaxCV = *sc.MaxCV
	}
	if space.IterScale <= 0 {
		return space, fmt.Errorf("iter_scale must be positive, got %v", space.IterScale)
	}
	if len(sc.Specs) == 0 && len(sc.Corun) == 0 {
		return space, fmt.Errorf("space declares neither specs nor corun pairs")
	}
	var err error
	if space.Specs, err = LookupSpecs(sc.Specs); err != nil {
		return space, err
	}
	if space.Pairs, err = ParsePairs(sc.Corun); err != nil {
		return space, err
	}
	space.ThreadCounts = sc.Threads
	if len(space.ThreadCounts) == 0 {
		space.ThreadCounts = []int{1, 2} // mirror the CLI --threads default
	}
	placements := sc.Placements
	if len(placements) == 0 {
		placements = []string{"none"}
	}
	for _, p := range placements {
		pl, err := harness.ParsePlacement(p)
		if err != nil {
			return space, err
		}
		space.Placements = append(space.Placements, pl)
	}
	return space, nil
}

// Plan expands every space in declaration order into one combined trial
// list — kernel spaces first, then external workloads — re-sequencing Seq
// across boundaries so the campaign reads as a single plan to schedulers,
// dry runs, and progress logs. The campaign's counter spec (when any)
// applies to every space and workload.
func (c *Campaign) Plan() ([]harness.Trial, error) {
	counters, err := c.CounterSpec()
	if err != nil {
		return nil, err
	}
	sampleEvery, err := c.Sampling()
	if err != nil {
		return nil, err
	}
	var all []harness.Trial
	for i := range c.Spaces {
		space, err := c.Spaces[i].Space()
		if err != nil {
			return nil, fmt.Errorf("campaign: space %s: %w", c.Spaces[i].label(i), err)
		}
		space.Counters = counters
		space.SampleInterval = sampleEvery
		trials, err := harness.Plan(space)
		if err != nil {
			return nil, fmt.Errorf("campaign: space %s: %w", c.Spaces[i].label(i), err)
		}
		for _, t := range trials {
			t.Seq = len(all)
			all = append(all, t)
		}
	}
	for i := range c.Workloads {
		trials, err := c.Workloads[i].Trials(counters)
		if err != nil {
			return nil, fmt.Errorf("campaign: workload #%d: %w", i+1, err)
		}
		for _, t := range trials {
			t.Seq = len(all)
			all = append(all, t)
		}
	}
	return all, nil
}
