package fleet

import (
	"os"
	"runtime"
	"strings"
)

// LocalHost builds this machine's capability advertisement: hostname, OS,
// architecture, logical CPU count, and — on Linux — the CPU model name from
// /proc/cpuinfo as the microarchitecture label. name, when non-empty,
// overrides the hostname, which is how two agents on one machine (or in CI)
// stay distinguishable.
func LocalHost(name string) HostInfo {
	if name == "" {
		if hn, err := os.Hostname(); err == nil {
			name = hn
		} else {
			name = "unknown"
		}
	}
	return HostInfo{
		Name:      sanitizeHostName(name),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Microarch: cpuModelName(),
	}
}

// sanitizeHostName makes any hostname safe as a store-key dimension by
// replacing the key delimiters '|' and '/' with '-'.
func sanitizeHostName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '|' || r == '/' {
			return '-'
		}
		return r
	}, name)
}

// cpuModelName reads the first "model name" line of /proc/cpuinfo; empty on
// non-Linux hosts or unreadable files — the microarch dimension is then
// simply omitted from result keys.
func cpuModelName() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok || strings.TrimSpace(k) != "model name" {
			continue
		}
		// The model name becomes a key field: normalize the delimiters and
		// collapse runs of spaces so keys stay single-line and parseable.
		m := strings.Join(strings.Fields(strings.TrimSpace(v)), " ")
		return sanitizeHostName(m)
	}
	return ""
}
