package fleet

import (
	"fmt"
	"time"

	"energybench/internal/adapt"
	"energybench/internal/campaign"
	"energybench/internal/harness"
)

// ProtocolVersion is the version of every JSON document the coordinator and
// its agents exchange — registration, leases, and the NDJSON result stream.
// Both sides stamp it and reject documents from a newer protocol, so a
// version-skewed binary in the fleet fails loudly at the wire instead of
// silently misparsing, exactly like the subprocess worker envelope it
// mirrors (harness.WorkerProtocolVersion).
const ProtocolVersion = 1

// HostInfo is the capability advertisement an agent registers with: enough
// for the coordinator to stamp results with the executing machine's
// identity and for host selectors to route work.
type HostInfo struct {
	// Name identifies the machine; it becomes the host dimension of every
	// result key the agent produces, so it must be unique across the fleet
	// and must not contain '|' or '/' (key delimiters).
	Name string `json:"name"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// CPUs is the schedulable logical CPU count; the coordinator never
	// leases an agent a trial wider than this.
	CPUs int `json:"cpus"`
	// Microarch labels the CPU model (e.g. /proc/cpuinfo's "model name");
	// it rides into the store key's microarch dimension when known.
	Microarch string `json:"microarch,omitempty"`
}

// Validate checks the advertisement is usable as a key dimension.
func (h HostInfo) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("fleet: host has no name")
	}
	for _, r := range h.Name {
		if r == '|' || r == '/' {
			return fmt.Errorf("fleet: host name %q must not contain '|' or '/' (they delimit store keys)", h.Name)
		}
	}
	if h.CPUs < 1 {
		return fmt.Errorf("fleet: host %q advertises %d CPUs", h.Name, h.CPUs)
	}
	return nil
}

// ExecConfig is the execution environment a batch's trials must run under:
// the energy backend (with any mock parameters, so planted-model campaigns
// behave identically on every agent) and the local executor discipline.
// It travels with every batch, so agents need no out-of-band configuration.
type ExecConfig struct {
	Meter        string        `json:"meter"`
	MockWatts    float64       `json:"mock_watts,omitempty"`
	MockModel    string        `json:"mock_model,omitempty"`
	MockNoiseW   float64       `json:"mock_noise_w,omitempty"`
	Executor     string        `json:"executor"`
	Parallel     int           `json:"parallel"`
	TrialTimeout time.Duration `json:"trial_timeout_ns,omitempty"`
}

// ExecFromCampaign derives the batch execution environment from a parsed
// (and therefore already validated) campaign.
func ExecFromCampaign(c *campaign.Campaign) ExecConfig {
	timeout, _ := c.Timeout() // validated at parse time
	ec := ExecConfig{
		Meter:        c.Meter,
		MockModel:    c.MockModel,
		Executor:     c.Executor,
		TrialTimeout: timeout,
	}
	if c.MockWatts != nil {
		ec.MockWatts = *c.MockWatts
	}
	if c.MockNoiseW != nil {
		ec.MockNoiseW = *c.MockNoiseW
	}
	if c.Parallel != nil {
		ec.Parallel = *c.Parallel
	}
	return ec
}

// Batch is one leased unit of work: a slice of the job's planned trials
// assigned to a single agent, with the execution environment and the lease
// deadline. An agent that cannot finish by the deadline should expect the
// coordinator to reclaim and re-dispatch the unfinished trials.
type Batch struct {
	V       int             `json:"v"`
	JobID   string          `json:"job"`
	BatchID string          `json:"batch"`
	Trials  []harness.Trial `json:"trials"`
	Exec    ExecConfig      `json:"exec"`
	// LeaseUntil is the coordinator-clock deadline after which the lease
	// is eligible for reclaim.
	LeaseUntil time.Time `json:"lease_until"`
}

// ResultEnvelope is one line of the NDJSON result stream an agent posts
// back: either the measured result of one trial or a structured per-trial
// execution error, never both — the same shape discipline as the worker
// envelope. Key is the trial's hostless configuration key; the coordinator
// uses it for idempotent completion matching and stamps the host dimension
// itself from the agent's registration, so an agent cannot misattribute
// results to another machine.
type ResultEnvelope struct {
	V       int    `json:"v"`
	JobID   string `json:"job"`
	BatchID string `json:"batch"`
	// Seq is the trial's position in the job plan; Key its configuration
	// key under the job's meter. Both identify the trial so either side
	// can detect a mismatch.
	Seq    int             `json:"seq"`
	Key    string          `json:"key"`
	Result *harness.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// registerRequest / registerResponse are the agent registration exchange.
type registerRequest struct {
	V    int      `json:"v"`
	Host HostInfo `json:"host"`
}

type registerResponse struct {
	V       int    `json:"v"`
	AgentID string `json:"agent_id"`
	// HeartbeatEvery is how often the agent must check in to keep its
	// leases; LeaseTTL is the batch deadline horizon it will be granted.
	HeartbeatEvery time.Duration `json:"heartbeat_every_ns"`
	LeaseTTL       time.Duration `json:"lease_ttl_ns"`
}

// leaseRequest asks for up to Max trials of work.
type leaseRequest struct {
	V   int `json:"v"`
	Max int `json:"max"`
}

// leaseResponse carries at most one batch; a nil batch means no work is
// currently assignable and the agent should poll again after RetryAfter.
type leaseResponse struct {
	V          int           `json:"v"`
	Batch      *Batch        `json:"batch,omitempty"`
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`
}

// ingestResponse summarizes one result-stream POST: how many envelopes were
// newly accepted, how many were idempotent duplicates of already-completed
// trials (normal after a lease reclaim race), and how many were stale
// (error envelopes for trials since re-dispatched to another agent).
type ingestResponse struct {
	V        int `json:"v"`
	Accepted int `json:"accepted"`
	Dups     int `json:"duplicates"`
	Stale    int `json:"stale"`
}

// submitResponse acknowledges a job submission.
type submitResponse struct {
	V      int    `json:"v"`
	JobID  string `json:"job_id"`
	Trials int    `json:"trials"`
	// Adaptive marks planner-driven jobs, whose trial accounting grows
	// round by round instead of being fixed at submit.
	Adaptive bool `json:"adaptive,omitempty"`
}

// TrialFailure is one permanently failed trial in a job status document.
type TrialFailure struct {
	Seq   int    `json:"seq"`
	Key   string `json:"key"`
	Error string `json:"error"`
}

// JobStatus is the GET /jobs/{id} document: live trial accounting, lease
// robustness counters, and the end-to-end dispatch latency statistics the
// fleet smoke publishes as BENCH_fleet.json.
type JobStatus struct {
	V        int       `json:"v"`
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Created  time.Time `json:"created"`
	Finished bool      `json:"finished"`
	Adaptive bool      `json:"adaptive,omitempty"`
	Trials   int       `json:"trials"`
	Pending  int       `json:"pending"`
	Leased   int       `json:"leased"`
	Done     int       `json:"done"`
	Failed   int       `json:"failed"`
	// Redispatched counts trials reclaimed from expired leases and queued
	// again; Duplicates counts idempotently ignored second results.
	Redispatched int `json:"redispatched"`
	Duplicates   int `json:"duplicates"`
	// Dispatch latency: wall clock from lease grant to the batch's last
	// result, across completed batches.
	Batches        int     `json:"batches"`
	DispatchMeanMS float64 `json:"dispatch_mean_ms,omitempty"`
	DispatchMaxMS  float64 `json:"dispatch_max_ms,omitempty"`
	// StorePath is the coordinator-local path of the job's merged store.
	StorePath string         `json:"store_path"`
	Failures  []TrialFailure `json:"failures,omitempty"`
	// Report is the adaptive planner's outcome document, set once the
	// planner returns; PlannerErr carries its failure, if any.
	Report     *adapt.Report `json:"report,omitempty"`
	PlannerErr string        `json:"planner_err,omitempty"`
}

// AgentStatus is one row of the GET /agents listing.
type AgentStatus struct {
	ID        string    `json:"id"`
	Host      HostInfo  `json:"host"`
	LastSeen  time.Time `json:"last_seen"`
	Lost      bool      `json:"lost,omitempty"`
	Completed int       `json:"completed"`
}

// apiError is the structured error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
