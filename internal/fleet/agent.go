package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"energybench/internal/harness"
)

// BatchRunner executes one leased batch's trials locally, streaming each
// completed trial's result into the sink. Per-trial failures must surface as
// *harness.TrialError values in the returned (possibly joined) error, with
// the other trials still executed — exactly the contract harness.Scheduler
// already provides. The CLI wires a scheduler over the real executors; fleet
// tests substitute deterministic fakes.
type BatchRunner interface {
	RunBatch(ctx context.Context, b Batch, sink harness.ResultSink) error
}

// BatchRunnerFunc adapts a function to BatchRunner.
type BatchRunnerFunc func(ctx context.Context, b Batch, sink harness.ResultSink) error

func (f BatchRunnerFunc) RunBatch(ctx context.Context, b Batch, sink harness.ResultSink) error {
	return f(ctx, b, sink)
}

// Agent is the long-running fleet worker daemon: it registers its host
// capabilities with the coordinator, heartbeats to keep its leases alive,
// and loops leasing trial batches, executing them through its BatchRunner,
// and posting the result envelopes back. A coordinator restart (agent ID
// forgotten, requests answered 404) is survived by re-registering.
type Agent struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:7979").
	Coordinator string
	// Host is this machine's capability advertisement (LocalHost).
	Host HostInfo
	// Runner executes leased batches; required.
	Runner BatchRunner
	// MaxBatch caps the trials requested per lease (0: coordinator's cap).
	MaxBatch int
	// Poll bounds how long the agent idles between empty leases (default,
	// and upper bound for coordinator hints: 2s).
	Poll time.Duration
	// Log, when non-nil, receives one line per significant event.
	Log func(format string, args ...any)
	// Client overrides the HTTP client (default: 30s overall timeout).
	Client *http.Client
}

// Run drives the agent until ctx is cancelled (returns nil) or a permanent
// protocol error occurs (version skew with the coordinator).
func (a *Agent) Run(ctx context.Context) error {
	if a.Runner == nil {
		return fmt.Errorf("fleet: agent has no batch runner")
	}
	if err := a.Host.Validate(); err != nil {
		return err
	}
	if a.Poll <= 0 {
		a.Poll = 2 * time.Second
	}
	if a.Client == nil {
		a.Client = &http.Client{Timeout: 30 * time.Second}
	}
	for {
		reg, err := a.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		a.logf("fleet: agent %s registered as %s with %s", a.Host.Name, reg.AgentID, a.Coordinator)
		err = a.session(ctx, reg)
		if ctx.Err() != nil {
			return nil
		}
		if !errors.Is(err, ErrUnknownAgent) {
			return err
		}
		a.logf("fleet: agent %s forgotten by coordinator (restart?), re-registering", reg.AgentID)
	}
}

// register retries until the coordinator accepts the registration or ctx
// ends, backing off so a fleet booting before its coordinator settles calmly.
func (a *Agent) register(ctx context.Context) (registerResponse, error) {
	backoff := 250 * time.Millisecond
	for {
		var resp registerResponse
		err := a.postJSON(ctx, "/agents/register", registerRequest{V: ProtocolVersion, Host: a.Host}, &resp)
		if err == nil {
			if resp.V > ProtocolVersion {
				return resp, fmt.Errorf("fleet: coordinator protocol v%d is newer than agent v%d", resp.V, ProtocolVersion)
			}
			return resp, nil
		}
		if errors.Is(err, ErrBadRequest) {
			return resp, err // structural, retrying cannot help
		}
		a.logf("fleet: registration failed (%v), retrying in %v", err, backoff)
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 8*time.Second {
			backoff *= 2
		}
	}
}

// session is one registration's lifetime: heartbeats in the background, the
// lease/execute/post loop in the foreground. It returns ErrUnknownAgent when
// the coordinator no longer knows the agent ID.
func (a *Agent) session(ctx context.Context, reg registerResponse) error {
	hctx, stopHeartbeat := context.WithCancel(ctx)
	defer stopHeartbeat()
	lost := make(chan struct{}, 1)
	go a.heartbeatLoop(hctx, reg, lost)

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-lost:
			return ErrUnknownAgent
		default:
		}
		var resp leaseResponse
		err := a.postJSON(ctx, "/agents/"+reg.AgentID+"/lease", leaseRequest{V: ProtocolVersion, Max: a.MaxBatch}, &resp)
		switch {
		case errors.Is(err, ErrUnknownAgent):
			return err
		case err != nil:
			a.logf("fleet: lease request failed: %v", err)
			if !sleepCtx(ctx, a.Poll) {
				return ctx.Err()
			}
			continue
		}
		if resp.Batch == nil {
			wait := resp.RetryAfter
			if wait <= 0 || wait > a.Poll {
				wait = a.Poll
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		if resp.Batch.V > ProtocolVersion {
			return fmt.Errorf("fleet: batch protocol v%d is newer than agent v%d", resp.Batch.V, ProtocolVersion)
		}
		if err := a.runBatch(ctx, reg, *resp.Batch); err != nil {
			if errors.Is(err, ErrUnknownAgent) || ctx.Err() != nil {
				return err
			}
			a.logf("fleet: batch %s: %v", resp.Batch.BatchID, err)
		}
	}
}

func (a *Agent) heartbeatLoop(ctx context.Context, reg registerResponse, lost chan<- struct{}) {
	every := reg.HeartbeatEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		err := a.postJSON(ctx, "/agents/"+reg.AgentID+"/heartbeat", nil, nil)
		if errors.Is(err, ErrUnknownAgent) {
			select {
			case lost <- struct{}{}:
			default:
			}
			return
		}
	}
}

// runBatch executes the batch and posts every trial's envelope — result or
// structured error — in one NDJSON request. Trials the runner finished are
// reported even when others failed; trials that produced neither a result
// nor a *harness.TrialError (runner-level failure) get the batch error.
func (a *Agent) runBatch(ctx context.Context, reg registerResponse, b Batch) error {
	a.logf("fleet: running batch %s: job %s, %d trials", b.BatchID, b.JobID, len(b.Trials))
	seqByKey := make(map[string]int, len(b.Trials))
	for _, t := range b.Trials {
		seqByKey[t.Key(b.Exec.Meter)] = t.Seq
	}
	var mu sync.Mutex
	envBySeq := map[int]ResultEnvelope{}
	sink := harness.SinkFunc(func(r harness.Result) error {
		key := harness.ResultKey(r)
		seq, ok := seqByKey[key]
		if !ok {
			return fmt.Errorf("fleet: runner produced result for unknown key %q", key)
		}
		mu.Lock()
		envBySeq[seq] = ResultEnvelope{
			V: ProtocolVersion, JobID: b.JobID, BatchID: b.BatchID,
			Seq: seq, Key: key, Result: &r,
		}
		mu.Unlock()
		return nil
	})
	runErr := a.Runner.RunBatch(ctx, b, sink)
	if ctx.Err() != nil {
		return ctx.Err() // interrupted mid-batch: report nothing, let the lease expire
	}
	for _, te := range trialErrors(runErr) {
		if _, done := envBySeq[te.Trial.Seq]; done {
			continue
		}
		envBySeq[te.Trial.Seq] = ResultEnvelope{
			V: ProtocolVersion, JobID: b.JobID, BatchID: b.BatchID,
			Seq: te.Trial.Seq, Key: te.Trial.Key(b.Exec.Meter), Error: te.Err.Error(),
		}
	}
	for _, t := range b.Trials {
		if _, done := envBySeq[t.Seq]; done {
			continue
		}
		msg := "trial not executed"
		if runErr != nil {
			msg = runErr.Error()
		}
		envBySeq[t.Seq] = ResultEnvelope{
			V: ProtocolVersion, JobID: b.JobID, BatchID: b.BatchID,
			Seq: t.Seq, Key: t.Key(b.Exec.Meter), Error: msg,
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, t := range b.Trials { // batch order, for readable coordinator logs
		if err := enc.Encode(envBySeq[t.Seq]); err != nil {
			return fmt.Errorf("fleet: encoding envelope: %w", err)
		}
	}
	return a.postResults(ctx, reg, b, buf.Bytes())
}

// postResults retries the results POST a few times: the envelopes are the
// only copy of this batch's work, and ingestion is idempotent, so retrying
// a possibly-delivered post is always safe.
func (a *Agent) postResults(ctx context.Context, reg registerResponse, b Batch, body []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, time.Duration(attempt)*time.Second) {
			return ctx.Err()
		}
		var resp ingestResponse
		err = a.postRaw(ctx, "/agents/"+reg.AgentID+"/results", "application/x-ndjson", body, &resp)
		if err == nil {
			a.logf("fleet: batch %s posted: %d accepted, %d duplicate, %d stale",
				b.BatchID, resp.Accepted, resp.Dups, resp.Stale)
			return nil
		}
		if errors.Is(err, ErrUnknownAgent) || errors.Is(err, ErrBadRequest) {
			return err // retrying an identical post cannot help
		}
		a.logf("fleet: posting batch %s results failed (attempt %d): %v", b.BatchID, attempt+1, err)
	}
	return err
}

// trialErrors walks a (possibly joined, possibly wrapped) error tree and
// collects every *harness.TrialError, covering both errors.Join trees
// (Unwrap() []error) and single-wrap chains (Unwrap() error).
func trialErrors(err error) []*harness.TrialError {
	var out []*harness.TrialError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if te, ok := e.(*harness.TrialError); ok {
			out = append(out, te)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

func (a *Agent) logf(format string, args ...any) {
	if a.Log != nil {
		a.Log(format, args...)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// postJSON posts a JSON document and decodes a JSON response. A nil body
// posts an empty request; a nil out discards the response body.
func (a *Agent) postJSON(ctx context.Context, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("fleet: encoding request: %w", err)
		}
	}
	return a.postRaw(ctx, path, "application/json", raw, out)
}

// postRaw is the single HTTP POST path: non-2xx responses are decoded into
// the structured apiError body and mapped back onto the sentinel errors the
// coordinator classified them with (404 → ErrUnknownAgent/ErrNotFound,
// 400 → ErrBadRequest), so agent logic can errors.Is its way through.
func (a *Agent) postRaw(ctx context.Context, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := a.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg := readAPIError(resp.Body)
		switch resp.StatusCode {
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s: %s", ErrUnknownAgent, path, msg)
		case http.StatusBadRequest:
			return fmt.Errorf("%w: %s: %s", ErrBadRequest, path, msg)
		}
		return fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, msg)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: decoding %s response: %w", path, err)
	}
	return nil
}

func readAPIError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		return ae.Error
	}
	return string(bytes.TrimSpace(data))
}
