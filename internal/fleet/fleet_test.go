package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"energybench/internal/harness"
	"energybench/internal/stats"
	"energybench/internal/store"
)

// testCampaign is a small exhaustive campaign: 2 specs × 2 thread counts =
// 4 trials under the mock meter.
const testCampaign = `{
  "name": "fleet-test",
  "meter": "mock",
  "mock_watts": 35,
  "executor": "inprocess",
  "spaces": [
    {"specs": ["int-alu", "chase-l1"], "threads": [1, 2], "reps": 1, "warmup": 0}
  ]
}`

// fakeClock is a mutable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestCoordinator(t *testing.T, clk *fakeClock) *Coordinator {
	t.Helper()
	opts := Options{DataDir: t.TempDir(), LeaseTTL: 30 * time.Second, BatchSize: 2, Resume: true, Log: t.Logf}
	if clk != nil {
		opts.Now = clk.Now
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testHost(name string) HostInfo {
	return HostInfo{Name: name, OS: "linux", Arch: "amd64", CPUs: 8, Microarch: "TestCPU v1"}
}

// fakeResult synthesizes the result an executor would produce for a trial,
// with the key fields matching Trial.Key exactly.
func fakeResult(t harness.Trial, meterName string) harness.Result {
	power := 10 + 2.5*float64(t.Threads)
	r := harness.Result{
		Spec:      t.Spec.Name,
		Component: t.Spec.Component,
		Threads:   t.Threads,
		Iters:     t.Iters,
		Placement: t.Placement,
		Meter:     meterName,
		EnergyJ:   stats.Summary{N: 1, Mean: power},
		TimeS:     stats.Summary{N: 1, Mean: 1},
		PowerW:    stats.Summary{N: 1, Mean: power},
		EDP:       power,
	}
	if t.SpecB != nil {
		r.SpecB = t.SpecB.Name
		r.ComponentB = t.SpecB.Component
		r.ThreadsB = t.Threads
		r.ItersB = t.ItersB
	}
	return r
}

// envelopesFor builds the success envelopes an agent would post for a batch.
func envelopesFor(b *Batch) []ResultEnvelope {
	var envs []ResultEnvelope
	for _, t := range b.Trials {
		r := fakeResult(t, b.Exec.Meter)
		envs = append(envs, ResultEnvelope{
			V: ProtocolVersion, JobID: b.JobID, BatchID: b.BatchID,
			Seq: t.Seq, Key: t.Key(b.Exec.Meter), Result: &r,
		})
	}
	return envs
}

func mustRegister(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	reg, err := c.Register(testHost(name))
	if err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
	return reg.AgentID
}

func mustSubmit(t *testing.T, c *Coordinator, raw string) submitResponse {
	t.Helper()
	sub, err := c.Submit([]byte(raw))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return sub
}

// drainJob leases and completes every batch the coordinator will grant the
// agent, returning the number of trials executed.
func drainJob(t *testing.T, c *Coordinator, agentID string) int {
	t.Helper()
	ran := 0
	for {
		b, err := c.Lease(agentID, 0)
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if b == nil {
			return ran
		}
		for _, env := range envelopesFor(b) {
			if st, err := c.Ingest(agentID, env); err != nil || st != ingestAccepted {
				t.Fatalf("Ingest seq %d: status %v, err %v", env.Seq, st, err)
			}
		}
		ran += len(b.Trials)
	}
}

func jobKeys(t *testing.T, c *Coordinator, jobID string) map[string]bool {
	t.Helper()
	path, err := c.ResultsPath(jobID)
	if err != nil {
		t.Fatalf("ResultsPath: %v", err)
	}
	keys, err := store.Keys(path)
	if err != nil {
		t.Fatalf("store.Keys: %v", err)
	}
	return keys
}

func TestExhaustiveJobCompletes(t *testing.T) {
	c := newTestCoordinator(t, nil)
	sub := mustSubmit(t, c, testCampaign)
	if sub.Trials != 4 {
		t.Fatalf("submit planned %d trials, want 4", sub.Trials)
	}
	agent := mustRegister(t, c, "host-a")
	if ran := drainJob(t, c, agent); ran != 4 {
		t.Fatalf("ran %d trials, want 4", ran)
	}
	st, err := c.Status(sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != 4 || st.Failed != 0 || st.Redispatched != 0 || st.Duplicates != 0 {
		t.Fatalf("status = %+v, want finished with 4 done and clean counters", st)
	}
	if st.Batches != 2 {
		t.Fatalf("batches = %d, want 2 (batch size 2)", st.Batches)
	}

	// Every stored key must carry the host and microarch dimensions, and
	// stripping them must reproduce the exact single-host key set.
	keys := jobKeys(t, c, sub.JobID)
	if len(keys) != 4 {
		t.Fatalf("store holds %d keys, want 4", len(keys))
	}
	for k := range keys {
		if !strings.Contains(k, "|h:host-a") || !strings.Contains(k, "|u:TestCPU v1") {
			t.Errorf("key %q is missing host/microarch dimensions", k)
		}
		kf, ok := harness.ParseKey(k)
		if !ok || kf.Host != "host-a" || kf.Microarch != "TestCPU v1" {
			t.Errorf("ParseKey(%q) = %+v, %v", k, kf, ok)
		}
		stripped := harness.StripHostKey(k)
		if strings.Contains(stripped, "|h:") || !strings.HasSuffix(k, "|h:host-a|u:TestCPU v1") {
			t.Errorf("StripHostKey(%q) = %q", k, stripped)
		}
	}
}

func TestAgentCrashLeaseReclaimAndRedispatch(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, clk)
	sub := mustSubmit(t, c, testCampaign)

	// Agent A leases a batch and crashes: no results, no heartbeats.
	crashed := mustRegister(t, c, "host-crash")
	b, err := c.Lease(crashed, 0)
	if err != nil || b == nil {
		t.Fatalf("Lease: %v, %v", b, err)
	}
	crashedSeqs := map[int]bool{}
	for _, tr := range b.Trials {
		crashedSeqs[tr.Seq] = true
	}

	// Before the lease expires the trials stay leased.
	c.Reap()
	if st, _ := c.Status(sub.JobID); st.Leased != len(b.Trials) {
		t.Fatalf("leased = %d before expiry, want %d", st.Leased, len(b.Trials))
	}

	// Past the lease TTL the reaper reclaims and requeues them.
	clk.Advance(31 * time.Second)
	c.Reap()
	st, _ := c.Status(sub.JobID)
	if st.Redispatched != len(b.Trials) || st.Leased != 0 {
		t.Fatalf("after reclaim: redispatched=%d leased=%d, want %d/0", st.Redispatched, st.Leased, len(b.Trials))
	}

	// A healthy agent drains the whole job, including the reclaimed trials:
	// nothing lost.
	healthy := mustRegister(t, c, "host-b")
	if ran := drainJob(t, c, healthy); ran != 4 {
		t.Fatalf("healthy agent ran %d trials, want 4 (reclaimed included)", ran)
	}
	st, _ = c.Status(sub.JobID)
	if !st.Finished || st.Done != 4 || st.Failed != 0 {
		t.Fatalf("status after drain = %+v", st)
	}
	keys := jobKeys(t, c, sub.JobID)
	if len(keys) != 4 {
		t.Fatalf("store holds %d keys, want 4", len(keys))
	}

	// The crashed agent wakes up and posts its stale results: idempotently
	// counted as duplicates, nothing double-stored, key set unchanged.
	for _, env := range envelopesFor(b) {
		got, err := c.Ingest(crashed, env)
		if err != nil || got != ingestDuplicate {
			t.Fatalf("stale ingest: status %v, err %v (want duplicate)", got, err)
		}
	}
	st, _ = c.Status(sub.JobID)
	if st.Duplicates != len(b.Trials) || st.Done != 4 {
		t.Fatalf("after stale post: duplicates=%d done=%d", st.Duplicates, st.Done)
	}
	if after := jobKeys(t, c, sub.JobID); len(after) != 4 {
		t.Fatalf("stale post grew the store to %d keys", len(after))
	}
}

func TestLeaseExpiryExhaustsIntoFailure(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoordinator(t, clk)
	sub := mustSubmit(t, c, testCampaign)
	agent := mustRegister(t, c, "host-flaky")
	// Lease and abandon every batch until all trials exhaust their attempts.
	for i := 0; i < maxAttempts*4; i++ {
		for {
			b, err := c.Lease(agent, 0)
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
		}
		clk.Advance(31 * time.Second)
		c.Reap()
	}
	st, _ := c.Status(sub.JobID)
	if !st.Finished || st.Failed != 4 || st.Done != 0 {
		t.Fatalf("status = %+v, want 4 permanently failed", st)
	}
	if len(st.Failures) != 4 {
		t.Fatalf("failures list has %d entries, want 4", len(st.Failures))
	}
	for _, f := range st.Failures {
		if !strings.Contains(f.Error, "lease expired") {
			t.Errorf("failure %d: %q does not mention lease expiry", f.Seq, f.Error)
		}
	}
}

func TestAgentReportedTrialErrorIsStructured(t *testing.T) {
	c := newTestCoordinator(t, nil)
	sub := mustSubmit(t, c, testCampaign)
	agent := mustRegister(t, c, "host-a")
	b, err := c.Lease(agent, 0)
	if err != nil || b == nil {
		t.Fatalf("Lease: %v, %v", b, err)
	}
	// First trial errors, second succeeds.
	envs := envelopesFor(b)
	envs[0].Result = nil
	envs[0].Error = "worker child exited with signal: killed"
	for _, env := range envs {
		if st, err := c.Ingest(agent, env); err != nil || st != ingestAccepted {
			t.Fatalf("Ingest: %v, %v", st, err)
		}
	}
	drainJob(t, c, agent)
	st, _ := c.Status(sub.JobID)
	if !st.Finished || st.Failed != 1 || st.Done != 3 {
		t.Fatalf("status = %+v, want 1 failed / 3 done", st)
	}
	if len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Error, "killed") {
		t.Fatalf("failures = %+v", st.Failures)
	}
}

func TestCoordinatorRestartResume(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, LeaseTTL: 30 * time.Second, BatchSize: 2, Resume: true, Log: t.Logf}
	c1, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	sub := mustSubmit(t, c1, testCampaign)
	agent := mustRegister(t, c1, "host-a")
	// Complete exactly one batch (2 of 4 trials), then "crash".
	b, err := c1.Lease(agent, 0)
	if err != nil || b == nil {
		t.Fatalf("Lease: %v, %v", b, err)
	}
	doneSeqs := map[int]bool{}
	for _, env := range envelopesFor(b) {
		if _, err := c1.Ingest(agent, env); err != nil {
			t.Fatal(err)
		}
		doneSeqs[env.Seq] = true
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart over the same data directory: the job must resume with the
	// completed trials recovered from the store, not re-queued.
	c2, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Close()
	st, err := c2.Status(sub.JobID)
	if err != nil {
		t.Fatalf("restarted coordinator lost job %s: %v", sub.JobID, err)
	}
	if st.Done != 2 || st.Pending != 2 || st.Finished {
		t.Fatalf("resumed status = %+v, want 2 done / 2 pending", st)
	}

	// Drain the remainder and assert the resumed run never re-leased a
	// completed trial.
	agent2 := mustRegister(t, c2, "host-a")
	for {
		b, err := c2.Lease(agent2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, tr := range b.Trials {
			if doneSeqs[tr.Seq] {
				t.Fatalf("restarted coordinator re-leased completed trial %d", tr.Seq)
			}
		}
		for _, env := range envelopesFor(b) {
			if _, err := c2.Ingest(agent2, env); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, _ = c2.Status(sub.JobID)
	if !st.Finished || st.Done != 4 {
		t.Fatalf("final status = %+v", st)
	}
	if keys := jobKeys(t, c2, sub.JobID); len(keys) != 4 {
		t.Fatalf("store holds %d keys, want 4", len(keys))
	}

	// A submit on the restarted coordinator must not collide with the
	// resumed job's ID.
	sub2 := mustSubmit(t, c2, testCampaign)
	if sub2.JobID == sub.JobID {
		t.Fatalf("restarted coordinator reused job ID %s", sub.JobID)
	}
}

func TestHostSelectorRoutesWork(t *testing.T) {
	c := newTestCoordinator(t, nil)
	camp := strings.Replace(testCampaign, `"meter": "mock",`, `"meter": "mock", "hosts": ["host-b"],`, 1)
	sub := mustSubmit(t, c, camp)
	wrong := mustRegister(t, c, "host-a")
	if b, err := c.Lease(wrong, 0); err != nil || b != nil {
		t.Fatalf("host-a got a lease for a host-b-only job: %v, %v", b, err)
	}
	right := mustRegister(t, c, "host-b")
	if ran := drainJob(t, c, right); ran != 4 {
		t.Fatalf("host-b ran %d trials, want 4", ran)
	}
	if st, _ := c.Status(sub.JobID); !st.Finished {
		t.Fatalf("job did not finish: %+v", st)
	}
}

func TestUnknownAgentMustReregister(t *testing.T) {
	c := newTestCoordinator(t, nil)
	if _, err := c.Lease("a9999", 0); err == nil || !strings.Contains(err.Error(), "re-register") {
		t.Fatalf("Lease from unknown agent: %v", err)
	}
	if err := c.Heartbeat("a9999"); err == nil {
		t.Fatal("Heartbeat from unknown agent succeeded")
	}
}

// --- HTTP layer ---

func newTestServer(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := newTestCoordinator(t, nil)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func postNDJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestHTTPEndToEndWithAgentLoop(t *testing.T) {
	c, srv := newTestServer(t)

	// Submit over HTTP.
	resp, err := http.Post(srv.URL+"/jobs", "application/yaml", strings.NewReader(testCampaign))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sub.Trials != 4 {
		t.Fatalf("submit: HTTP %d, %+v", resp.StatusCode, sub)
	}

	// A real Agent loop with a fake runner executes the whole job.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agent := &Agent{
		Coordinator: srv.URL,
		Host:        testHost("host-http"),
		Poll:        10 * time.Millisecond,
		Log:         t.Logf,
		Runner: BatchRunnerFunc(func(ctx context.Context, b Batch, sink harness.ResultSink) error {
			for _, tr := range b.Trials {
				if err := sink.Consume(fakeResult(tr, b.Exec.Meter)); err != nil {
					return err
				}
			}
			return nil
		}),
	}
	agentDone := make(chan error, 1)
	go func() { agentDone <- agent.Run(ctx) }()

	deadline := time.Now().Add(25 * time.Second)
	for {
		st, err := c.Status(sub.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Finished {
			if st.Done != 4 || st.Failed != 0 {
				t.Fatalf("finished status = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if err := <-agentDone; err != nil {
		t.Fatalf("agent: %v", err)
	}

	// Status and results over HTTP.
	var st JobStatus
	get, err := http.Get(srv.URL + "/jobs/" + sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(get.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if st.Done != 4 || st.Batches == 0 || st.DispatchMeanMS <= 0 {
		t.Fatalf("HTTP status = %+v, want 4 done with dispatch latency stats", st)
	}

	res, err := http.Get(srv.URL + "/jobs/" + sub.JobID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	dec := json.NewDecoder(res.Body)
	lines := 0
	for dec.More() {
		var rec store.Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("decoding results line %d: %v", lines, err)
		}
		if rec.V != store.SchemaVersion || rec.Result.Host != "host-http" {
			t.Fatalf("record %d = %+v", lines, rec)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("results stream had %d records, want 4", lines)
	}
}

func TestHTTPMalformedEnvelopeIsStructuredError(t *testing.T) {
	c, srv := newTestServer(t)
	mustSubmit(t, c, testCampaign)
	agentID := mustRegister(t, c, "host-a")
	b, err := c.Lease(agentID, 0)
	if err != nil || b == nil {
		t.Fatalf("Lease: %v, %v", b, err)
	}

	// Malformed JSON line → 400 with a structured {"error": ...} body.
	resp, body := postNDJSON(t, srv.URL+"/agents/"+agentID+"/results", "{not json\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed line: HTTP %d, body %s", resp.StatusCode, body)
	}
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil || ae.Error == "" {
		t.Fatalf("malformed line error body %q is not structured", body)
	}

	// Version-skewed envelope → 400 naming the protocol mismatch.
	env := envelopesFor(b)[0]
	env.V = ProtocolVersion + 1
	line, _ := json.Marshal(env)
	resp, body = postNDJSON(t, srv.URL+"/agents/"+agentID+"/results", string(line)+"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("skewed envelope: HTTP %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ae); err != nil || !strings.Contains(ae.Error, "newer than coordinator") {
		t.Fatalf("skewed envelope error body %q", body)
	}

	// Key/seq mismatch → 400.
	env = envelopesFor(b)[0]
	env.Key = "tampered|key"
	line, _ = json.Marshal(env)
	resp, body = postNDJSON(t, srv.URL+"/agents/"+agentID+"/results", string(line)+"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched key: HTTP %d, body %s", resp.StatusCode, body)
	}

	// The lease is still intact: the real envelopes are accepted afterwards.
	var lines []string
	for _, env := range envelopesFor(b) {
		l, _ := json.Marshal(env)
		lines = append(lines, string(l))
	}
	resp, body = postNDJSON(t, srv.URL+"/agents/"+agentID+"/results", strings.Join(lines, "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid post after rejects: HTTP %d, body %s", resp.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil || ing.Accepted != len(b.Trials) {
		t.Fatalf("ingest response %s", body)
	}
}

func TestHTTPUnknownJobAndAgentAre404(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/jobs/j9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", resp.StatusCode)
	}
	resp, body := postNDJSON(t, srv.URL+"/agents/a9999/results", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown agent: HTTP %d, body %s", resp.StatusCode, body)
	}
}

func TestAdaptiveJobOverFleet(t *testing.T) {
	// An active-learning campaign: the planner runs inside the coordinator
	// and dispatches rounds through the lease table. The fake results follow
	// an exact linear power law, so the fit converges quickly.
	const adaptiveCampaign = `{
  "name": "fleet-adaptive",
  "meter": "mock",
  "mock_watts": 10,
  "mock_model": "alu:2.0,l1:1.0",
  "algo": "active",
  "batch": 2,
  "seed": 7,
  "executor": "inprocess",
  "spaces": [
    {"specs": ["int-alu", "chase-l1", "fp-mac"], "threads": [1, 2], "reps": 1, "warmup": 0}
  ]
}`
	c := newTestCoordinator(t, nil)
	sub := mustSubmit(t, c, adaptiveCampaign)
	if !sub.Adaptive {
		t.Fatalf("submit did not mark the job adaptive: %+v", sub)
	}
	agent := mustRegister(t, c, "host-a")
	deadline := time.Now().Add(25 * time.Second)
	for {
		st, err := c.Status(sub.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Finished {
			if st.PlannerErr != "" {
				t.Fatalf("planner failed: %s", st.PlannerErr)
			}
			if st.Report == nil || st.Report.RanTrials == 0 {
				t.Fatalf("finished without a planner report: %+v", st)
			}
			if st.Done != st.Report.RanTrials {
				t.Fatalf("done=%d but planner ran %d", st.Done, st.Report.RanTrials)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("adaptive job never finished: %+v", st)
		}
		drainJob(t, c, agent)
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRejectsBadCampaign(t *testing.T) {
	c := newTestCoordinator(t, nil)
	if _, err := c.Submit([]byte(`{"name": "x"}`)); err == nil {
		t.Fatal("campaign without spaces was accepted")
	}
	if _, err := c.Submit([]byte(`{"name": "x", "hosts": ["a|b"], "spaces": [{"specs": ["int-alu"]}]}`)); err == nil {
		t.Fatal("campaign with a delimiter in a host name was accepted")
	}
}

func TestHostInfoValidate(t *testing.T) {
	cases := []struct {
		h  HostInfo
		ok bool
	}{
		{testHost("good"), true},
		{HostInfo{Name: "", CPUs: 4}, false},
		{HostInfo{Name: "a|b", CPUs: 4}, false},
		{HostInfo{Name: "a/b", CPUs: 4}, false},
		{HostInfo{Name: "a", CPUs: 0}, false},
	}
	for _, tc := range cases {
		if err := tc.h.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.h, err, tc.ok)
		}
	}
}

func TestLocalHostSanitizes(t *testing.T) {
	h := LocalHost("node|7/a")
	if h.Name != "node-7-a" {
		t.Fatalf("LocalHost name = %q", h.Name)
	}
	if h.CPUs < 1 || h.OS == "" || h.Arch == "" {
		t.Fatalf("LocalHost = %+v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrialErrorsWalker(t *testing.T) {
	te1 := &harness.TrialError{Trial: harness.Trial{Seq: 1}, Err: fmt.Errorf("boom")}
	te2 := &harness.TrialError{Trial: harness.Trial{Seq: 2}, Err: fmt.Errorf("bang")}
	joined := fmt.Errorf("wrap: %w", errors.Join(te1, te2))
	got := trialErrors(joined)
	if len(got) != 2 || got[0].Trial.Seq != 1 || got[1].Trial.Seq != 2 {
		t.Fatalf("trialErrors = %+v", got)
	}
	if got := trialErrors(nil); got != nil {
		t.Fatalf("trialErrors(nil) = %v", got)
	}
}
