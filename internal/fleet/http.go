package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"energybench/internal/harness"
	"energybench/internal/model"
	"energybench/internal/store"
)

// maxBodyBytes bounds any single request body (campaign files are small;
// result streams post at most one batch of results per request).
const maxBodyBytes = 64 << 20

// retryAfter is the poll hint returned with an empty lease.
const retryAfter = 500 * time.Millisecond

// Handler exposes the coordinator's HTTP/JSON API:
//
//	POST /jobs                    submit a campaign file (YAML/JSON body)
//	GET  /jobs                    list job statuses
//	GET  /jobs/{id}               one job's status
//	GET  /jobs/{id}/results       stream merged store records as NDJSON
//	GET  /jobs/{id}/analyze       analysis report over the job's merged store
//	                              (?activity=nominal|counters&validate=1&roofline=1)
//	GET  /agents                  list registered agents
//	POST /agents/register         agent registration
//	POST /agents/{id}/heartbeat   agent liveness
//	POST /agents/{id}/lease       request a trial batch
//	POST /agents/{id}/results     post a batch's result envelopes as NDJSON
//
// Every error response is a JSON object {"error": "..."}; unknown agents get
// 404 and must re-register (coordinator restarts forget agent IDs).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/results", c.handleResults)
	mux.HandleFunc("GET /jobs/{id}/analyze", c.handleAnalyze)
	mux.HandleFunc("GET /agents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Agents())
	})
	mux.HandleFunc("POST /agents/register", c.handleRegister)
	mux.HandleFunc("POST /agents/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Heartbeat(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /agents/{id}/lease", c.handleLease)
	mux.HandleFunc("POST /agents/{id}/results", c.handleIngest)
	return http.MaxBytesHandler(mux, maxBodyBytes)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	resp, err := c.Submit(raw)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decoding registration: %v", ErrBadRequest, err))
		return
	}
	if req.V > ProtocolVersion {
		writeError(w, fmt.Errorf("%w: agent protocol v%d is newer than coordinator v%d", ErrBadRequest, req.V, ProtocolVersion))
		return
	}
	resp, err := c.Register(req.Host)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decoding lease request: %v", ErrBadRequest, err))
		return
	}
	if req.V > ProtocolVersion {
		writeError(w, fmt.Errorf("%w: agent protocol v%d is newer than coordinator v%d", ErrBadRequest, req.V, ProtocolVersion))
		return
	}
	b, err := c.Lease(r.PathValue("id"), req.Max)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := leaseResponse{V: ProtocolVersion, Batch: b}
	if b == nil {
		resp.RetryAfter = retryAfter
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngest processes one NDJSON stream of result envelopes. The whole
// post is validated line by line; the first malformed or version-skewed
// envelope aborts with a structured 400 (everything accepted before it
// stays accepted — agents retry idempotently).
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	agentID := r.PathValue("id")
	// A result post is proof of liveness: refresh the agent's heartbeat (and
	// reject unknown agents before touching the stream).
	if err := c.Heartbeat(agentID); err != nil {
		writeError(w, err)
		return
	}
	resp := ingestResponse{V: ProtocolVersion}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxBodyBytes)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var env ResultEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			writeError(w, fmt.Errorf("%w: results line %d: %v", ErrBadRequest, line, err))
			return
		}
		st, err := c.Ingest(agentID, env)
		if err != nil {
			writeError(w, fmt.Errorf("results line %d: %w", line, err))
			return
		}
		switch st {
		case ingestAccepted:
			resp.Accepted++
		case ingestDuplicate:
			resp.Dups++
		case ingestStale:
			resp.Stale++
		}
	}
	if err := sc.Err(); err != nil {
		writeError(w, fmt.Errorf("%w: reading results stream: %v", ErrBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResults streams the job's merged store as NDJSON, one store.Record
// per line — the same record shape the store persists, so a consumer can
// pipe the stream straight into a local store file. A fresh read-only
// handle is opened per request, keeping the coordinator's own appender
// single-goroutine.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	path, err := c.ResultsPath(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := store.Open(path)
	if err != nil {
		writeError(w, fmt.Errorf("fleet: opening job store: %w", err))
		return
	}
	defer st.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for rec, qerr := range st.Query(store.Filter{}) {
		if qerr != nil {
			// Headers are gone; the best we can do is truncate the stream.
			c.logf("fleet: streaming job results: %v", qerr)
			return
		}
		if err := enc.Encode(rec); err != nil {
			return // client went away
		}
	}
}

// handleAnalyze fits the power model over the job's merged store and returns
// the same analysis document the local `analyze` subcommand prints, so a
// submitter never has to download a store just to see the fit. Query
// parameters mirror the CLI flags: activity=nominal|counters selects the
// activity source; validate=1/roofline=1 require the external-workload
// sections (otherwise they appear automatically when workload results exist).
func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	path, err := c.ResultsPath(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	boolParam := func(name string) (bool, error) {
		switch v := r.URL.Query().Get(name); v {
		case "", "0", "false":
			return false, nil
		case "1", "true":
			return true, nil
		default:
			return false, fmt.Errorf("%w: %s=%q (want 1|true|0|false)", ErrBadRequest, name, v)
		}
	}
	opts := model.ReportOptions{Activity: r.URL.Query().Get("activity")}
	if opts.Validate, err = boolParam("validate"); err != nil {
		writeError(w, err)
		return
	}
	if opts.Roofline, err = boolParam("roofline"); err != nil {
		writeError(w, err)
		return
	}
	st, err := store.Open(path)
	if err != nil {
		writeError(w, fmt.Errorf("fleet: opening job store: %w", err))
		return
	}
	defer st.Close()
	var results []harness.Result
	for rec, qerr := range st.Query(store.Filter{}) {
		if qerr != nil {
			writeError(w, fmt.Errorf("fleet: reading job store: %w", qerr))
			return
		}
		results = append(results, rec.Result)
	}
	rep, err := model.BuildReport(results, opts)
	if err != nil {
		// Analysis failures reflect what the job's store holds (too few
		// observations, nothing to validate), not a coordinator fault.
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrUnknownAgent):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}
