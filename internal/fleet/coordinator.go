package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"energybench/internal/adapt"
	"energybench/internal/campaign"
	"energybench/internal/harness"
	"energybench/internal/store"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound marks lookups of jobs that do not exist.
	ErrNotFound = errors.New("fleet: not found")
	// ErrUnknownAgent marks requests from an agent the coordinator does not
	// know — never registered, or forgotten across a coordinator restart.
	// The agent's recovery is to re-register.
	ErrUnknownAgent = errors.New("fleet: unknown agent (re-register)")
	// ErrBadRequest marks structurally invalid requests (version skew,
	// malformed envelopes, key mismatches).
	ErrBadRequest = errors.New("fleet: bad request")
)

// maxAttempts bounds how often a trial reclaimed from expired leases is
// re-dispatched before it is declared permanently failed. Agent-reported
// trial errors are not retried at all — they are deterministic executor
// failures, handled exactly like a local Scheduler's per-trial errors.
const maxAttempts = 3

// Options configures a Coordinator.
type Options struct {
	// DataDir is the coordinator's persistent root: every job lives under
	// DataDir/jobs/<id>/ (submitted campaign, metadata, merged store), which
	// is what makes a restart resumable. Required.
	DataDir string
	// LeaseTTL is how long an agent holds a batch before the coordinator
	// may reclaim and re-dispatch it (default 30s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the check-in period handed to registering agents;
	// an agent silent for three periods is considered lost and its leases
	// are reclaimed immediately rather than at lease expiry
	// (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// BatchSize caps the trials granted per lease (default 4).
	BatchSize int
	// Resume replays DataDir's existing jobs on startup: finished trials
	// are recovered from each job's store and only the remainder is queued.
	// When false, existing job directories are ignored (left on disk).
	Resume bool
	// Log, when non-nil, receives one line per significant event.
	Log func(format string, args ...any)
	// Now overrides the clock, for tests (default time.Now).
	Now func() time.Time
}

type trialState int

const (
	// trialUnqueued: known to the plan but not (yet) requested — the resting
	// state of adaptive-job candidates the planner has not selected.
	trialUnqueued trialState = iota
	trialPending             // queued, waiting for an agent lease
	trialLeased              // granted to an agent, lease outstanding
	trialDone                // result merged into the store
	trialFailed              // permanently failed (executor error or attempts exhausted)
)

// lease is one outstanding batch grant.
type lease struct {
	batchID     string
	jobID       string
	agentID     string
	granted     time.Time
	deadline    time.Time
	outstanding map[int]bool // seqs still awaiting an envelope
}

// agentState is the coordinator's view of one registered agent.
type agentState struct {
	id        string
	host      HostInfo
	lastSeen  time.Time
	lost      bool
	completed int
}

// job is the coordinator's full state for one submitted campaign.
type job struct {
	id       string
	name     string
	created  time.Time
	adaptive bool
	camp     *campaign.Campaign
	exec     ExecConfig
	hosts    []string // host selector; empty means any agent

	trials   []harness.Trial // index == Seq
	state    []trialState
	attempts []int
	queue    []int // FIFO of pending seqs (entries re-checked at pop)
	failures map[int]string
	results  map[int]harness.Result // adaptive jobs only: per-seq results for the planner

	st        *store.Store
	storePath string

	finished     bool
	plannerErr   string
	report       *adapt.Report
	redispatched int
	duplicates   int
	batches      int
	latSum       time.Duration
	latMax       time.Duration

	// cond wakes adaptive dispatchers waiting for their round to drain.
	cond *sync.Cond
}

// Coordinator is the fleet's central daemon state: it plans submitted
// campaigns, leases trial batches to registered agents, merges their result
// streams into per-job stores, and reclaims work from lost agents. All
// methods are safe for concurrent use.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	agents   map[string]*agentState
	jobs     map[string]*job
	leases   map[string]*lease
	jobOrder []string
	jobSeq   int
	agentSeq int
	batchSeq int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator creates the coordinator, its data directory, and — when
// Resume is set — reloads every job found under DataDir/jobs, recovering
// completed trials from each job's store so a restart re-runs nothing.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a data directory")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = opts.LeaseTTL / 3
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 4
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:   opts,
		agents: map[string]*agentState{},
		jobs:   map[string]*job{},
		leases: map[string]*lease{},
		ctx:    ctx,
		cancel: cancel,
	}
	if err := c.loadJobs(); err != nil {
		cancel()
		return nil, err
	}
	return c, nil
}

// Close stops planner goroutines and closes every job store.
func (c *Coordinator) Close() error {
	c.cancel()
	c.mu.Lock()
	for _, j := range c.jobs {
		j.cond.Broadcast()
	}
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, j := range c.jobs {
		if j.st != nil {
			errs = append(errs, j.st.Close())
			j.st = nil
		}
	}
	return errors.Join(errs...)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

// jobMeta is the per-job metadata persisted for restart resume.
type jobMeta struct {
	V        int       `json:"v"`
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Created  time.Time `json:"created"`
	Adaptive bool      `json:"adaptive,omitempty"`
}

// loadJobs replays DataDir/jobs after a restart. Job IDs always advance past
// any directory present — even ones not resumed — so a new submission can
// never collide with an on-disk job.
func (c *Coordinator) loadJobs() error {
	dir := filepath.Join(c.opts.DataDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "j%d", &n); err == nil && n > c.jobSeq {
			c.jobSeq = n
		}
		ids = append(ids, e.Name())
	}
	if !c.opts.Resume {
		return nil
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := c.resumeJob(id); err != nil {
			return fmt.Errorf("fleet: resuming job %s: %w", id, err)
		}
	}
	return nil
}

func (c *Coordinator) resumeJob(id string) error {
	base := filepath.Join(c.opts.DataDir, "jobs", id)
	metaRaw, err := os.ReadFile(filepath.Join(base, "meta.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil // half-created directory from a crash mid-submit; skip
	}
	if err != nil {
		return err
	}
	var meta jobMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return err
	}
	raw, err := os.ReadFile(filepath.Join(base, "campaign"))
	if err != nil {
		return err
	}
	camp, err := campaign.Parse(raw)
	if err != nil {
		return err
	}
	j, err := c.buildJob(id, camp, meta.Created)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.installJob(j)
	c.mu.Unlock()
	c.logf("fleet: resumed job %s (%d/%d trials done)", id, countState(j, trialDone), len(j.trials))
	return nil
}

// Submit plans and registers a new job from raw campaign file bytes.
func (c *Coordinator) Submit(raw []byte) (submitResponse, error) {
	camp, err := campaign.Parse(raw)
	if err != nil {
		return submitResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	c.mu.Lock()
	c.jobSeq++
	id := fmt.Sprintf("j%04d", c.jobSeq)
	c.mu.Unlock()

	base := filepath.Join(c.opts.DataDir, "jobs", id)
	if err := os.MkdirAll(base, 0o755); err != nil {
		return submitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	created := c.opts.Now().UTC()
	meta, err := json.Marshal(jobMeta{V: ProtocolVersion, ID: id, Created: created, Name: camp.Name, Adaptive: isAdaptive(camp)})
	if err != nil {
		return submitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	if err := os.WriteFile(filepath.Join(base, "campaign"), raw, 0o644); err != nil {
		return submitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	// meta.json is written last: its presence marks the directory complete,
	// so restart replay can skip half-created directories from a crash.
	if err := os.WriteFile(filepath.Join(base, "meta.json"), meta, 0o644); err != nil {
		return submitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	j, err := c.buildJob(id, camp, created)
	if err != nil {
		return submitResponse{}, err
	}
	c.mu.Lock()
	c.installJob(j)
	c.mu.Unlock()
	c.logf("fleet: job %s submitted: %d trials, adaptive=%v", id, len(j.trials), j.adaptive)
	return submitResponse{V: ProtocolVersion, JobID: id, Trials: len(j.trials), Adaptive: j.adaptive}, nil
}

func isAdaptive(camp *campaign.Campaign) bool {
	_, ok := camp.AdaptConfig()
	return ok
}

// buildJob plans the campaign, opens the job store, and recovers completion
// state from any records the store already holds (restart replay). The
// coordinator owns the central store under its own data directory; the
// campaign's store/resume fields describe local runs and are ignored here.
func (c *Coordinator) buildJob(id string, camp *campaign.Campaign, created time.Time) (*job, error) {
	trials, err := camp.Plan()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	storePath := filepath.Join(c.opts.DataDir, "jobs", id, "store")
	st, err := store.Create(storePath)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	j := &job{
		id:        id,
		name:      camp.Name,
		created:   created,
		adaptive:  isAdaptive(camp),
		camp:      camp,
		exec:      ExecFromCampaign(camp),
		hosts:     camp.Hosts,
		trials:    trials,
		state:     make([]trialState, len(trials)),
		attempts:  make([]int, len(trials)),
		failures:  map[int]string{},
		st:        st,
		storePath: storePath,
	}
	j.cond = sync.NewCond(&c.mu)
	if j.adaptive {
		j.results = map[int]harness.Result{}
	}

	// Replay: a trial is done when some host has already measured its
	// stripped configuration key.
	doneKeys, err := st.Keys()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("fleet: %w", err)
	}
	done := map[string]bool{}
	for k := range doneKeys {
		done[harness.StripHostKey(k)] = true
	}
	for i, t := range trials {
		if done[t.Key(camp.Meter)] {
			j.state[i] = trialDone
		}
	}
	if !j.adaptive {
		for i := range trials {
			if j.state[i] == trialUnqueued {
				j.state[i] = trialPending
				j.queue = append(j.queue, i)
			}
		}
		j.finished = len(j.queue) == 0
	}
	return j, nil
}

// installJob registers the job and, for adaptive campaigns, starts its
// planner goroutine. Caller holds c.mu.
func (c *Coordinator) installJob(j *job) {
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j.id)
	if j.adaptive && !j.finished {
		c.wg.Add(1)
		go c.runPlanner(j)
	}
}

// runPlanner drives an adaptive job: the planner selects batches and the
// fleetDispatcher pushes them through the lease table, blocking until agents
// drain each round.
func (c *Coordinator) runPlanner(j *job) {
	defer c.wg.Done()
	cfg, _ := j.camp.AdaptConfig()
	prior, pool, err := c.splitPrior(j)
	if err != nil {
		c.finishPlanner(j, nil, err)
		return
	}
	planner := &adapt.Planner{
		Cfg:      cfg,
		Dispatch: &fleetDispatcher{c: c, j: j},
		Log:      c.opts.Log,
	}
	// Results are persisted at ingest, so the planner needs no extra sink.
	rep, err := planner.Run(c.ctx, pool, prior, nil)
	c.finishPlanner(j, rep, err)
}

// splitPrior loads the job store and splits the plan into already-measured
// prior results and the not-yet-run candidate pool, so a restarted adaptive
// job seeds its fit instead of re-running trials.
func (c *Coordinator) splitPrior(j *job) (prior []harness.Result, pool []harness.Trial, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byKey := map[string]harness.Result{}
	for rec, qerr := range j.st.Query(store.Filter{}) {
		if qerr != nil {
			return nil, nil, qerr
		}
		byKey[harness.StripHostKey(rec.Key)] = rec.Result
	}
	for _, t := range j.trials {
		if r, ok := byKey[t.Key(j.camp.Meter)]; ok {
			prior = append(prior, r)
		} else {
			pool = append(pool, t)
		}
	}
	return prior, pool, nil
}

func (c *Coordinator) finishPlanner(j *job, rep *adapt.Report, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j.report = rep
	j.finished = true
	if err != nil {
		j.plannerErr = err.Error()
		c.logf("fleet: job %s planner failed: %v", j.id, err)
	} else {
		c.logf("fleet: job %s planner done (%d trials run)", j.id, repRan(rep))
	}
}

func repRan(rep *adapt.Report) int {
	if rep == nil {
		return 0
	}
	return rep.RanTrials
}

// fleetDispatcher adapts the coordinator's lease table to adapt.Dispatcher:
// RunPlan queues the round's trials and blocks until agents have drained
// every one (done or failed), feeding results to the planner's sink.
type fleetDispatcher struct {
	c *Coordinator
	j *job
}

func (d *fleetDispatcher) RunPlan(ctx context.Context, trials []harness.Trial, sink harness.ResultSink) error {
	c, j := d.c, d.j
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		j.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	stopC := context.AfterFunc(c.ctx, func() {
		c.mu.Lock()
		j.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stopC()

	c.mu.Lock()
	defer c.mu.Unlock()
	seqs := make([]int, 0, len(trials))
	for _, t := range trials {
		if t.Seq < 0 || t.Seq >= len(j.trials) {
			return fmt.Errorf("fleet: dispatcher given unknown trial seq %d", t.Seq)
		}
		if j.state[t.Seq] == trialUnqueued {
			j.state[t.Seq] = trialPending
			j.queue = append(j.queue, t.Seq)
		}
		seqs = append(seqs, t.Seq)
	}
	for {
		drained := true
		for _, s := range seqs {
			if st := j.state[s]; st != trialDone && st != trialFailed {
				drained = false
				break
			}
		}
		if drained {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.ctx.Err() != nil {
			return c.ctx.Err()
		}
		j.cond.Wait()
	}
	var errs []error
	for _, s := range seqs {
		switch j.state[s] {
		case trialDone:
			if sink != nil {
				if err := sink.Consume(j.results[s]); err != nil {
					return err
				}
			}
		case trialFailed:
			errs = append(errs, &harness.TrialError{Trial: j.trials[s], Err: errors.New(j.failures[s])})
		}
	}
	return errors.Join(errs...)
}

// Register adds (or re-adds) an agent under a fresh ID.
func (c *Coordinator) Register(h HostInfo) (registerResponse, error) {
	if err := h.Validate(); err != nil {
		return registerResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agentSeq++
	id := fmt.Sprintf("a%04d", c.agentSeq)
	c.agents[id] = &agentState{id: id, host: h, lastSeen: c.opts.Now()}
	c.logf("fleet: agent %s registered: %s (%s/%s, %d cpus)", id, h.Name, h.OS, h.Arch, h.CPUs)
	return registerResponse{
		V:              ProtocolVersion,
		AgentID:        id,
		HeartbeatEvery: c.opts.HeartbeatEvery,
		LeaseTTL:       c.opts.LeaseTTL,
	}, nil
}

// Heartbeat refreshes an agent's liveness.
func (c *Coordinator) Heartbeat(agentID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[agentID]
	if !ok {
		return ErrUnknownAgent
	}
	a.lastSeen = c.opts.Now()
	a.lost = false
	return nil
}

// Lease grants the calling agent up to max trials of work from the oldest
// eligible job, or nil when nothing is currently assignable.
func (c *Coordinator) Lease(agentID string, max int) (*Batch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[agentID]
	if !ok {
		return nil, ErrUnknownAgent
	}
	now := c.opts.Now()
	a.lastSeen = now
	a.lost = false
	c.reapLocked(now)
	if max <= 0 || max > c.opts.BatchSize {
		max = c.opts.BatchSize
	}
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j.finished || len(j.queue) == 0 {
			continue
		}
		if len(j.hosts) > 0 && !containsHost(j.hosts, a.host.Name) {
			continue
		}
		seqs := c.takeTrials(j, a, max)
		if len(seqs) == 0 {
			continue
		}
		c.batchSeq++
		b := &Batch{
			V:          ProtocolVersion,
			JobID:      j.id,
			BatchID:    fmt.Sprintf("b%06d", c.batchSeq),
			Exec:       j.exec,
			LeaseUntil: now.Add(c.opts.LeaseTTL),
		}
		l := &lease{
			batchID:     b.BatchID,
			jobID:       j.id,
			agentID:     agentID,
			granted:     now,
			deadline:    b.LeaseUntil,
			outstanding: map[int]bool{},
		}
		for _, s := range seqs {
			j.state[s] = trialLeased
			j.attempts[s]++
			l.outstanding[s] = true
			b.Trials = append(b.Trials, j.trials[s])
		}
		c.leases[b.BatchID] = l
		c.logf("fleet: leased %s to %s: job %s, %d trials", b.BatchID, agentID, j.id, len(b.Trials))
		return b, nil
	}
	return nil, nil
}

// takeTrials pops up to max pending trials the agent can actually run
// (enough CPUs for the trial's width). Unrunnable or stale queue entries
// are skipped; skipped-but-runnable-elsewhere trials stay queued.
func (c *Coordinator) takeTrials(j *job, a *agentState, max int) []int {
	var taken []int
	var kept []int
	for i, s := range j.queue {
		if len(taken) == max {
			kept = append(kept, j.queue[i:]...)
			break
		}
		if j.state[s] != trialPending {
			continue // completed via another path while queued
		}
		if trialWidth(j.trials[s]) > a.host.CPUs {
			kept = append(kept, s)
			continue
		}
		taken = append(taken, s)
	}
	j.queue = kept
	return taken
}

// trialWidth is the worker-thread count a trial occupies (co-run trials run
// Threads of each spec).
func trialWidth(t harness.Trial) int {
	if t.IsCoRun() {
		return 2 * t.Threads
	}
	return t.Threads
}

func containsHost(hosts []string, name string) bool {
	for _, h := range hosts {
		if h == name {
			return true
		}
	}
	return false
}

// ingestStatus classifies one envelope's fate.
type ingestStatus int

const (
	ingestAccepted ingestStatus = iota
	ingestDuplicate
	ingestStale
)

// Ingest merges one result envelope. Results for already-done trials are
// idempotently counted as duplicates (normal after a lease reclaim race);
// error envelopes for trials whose lease was reclaimed are stale and
// dropped, because the trial has been re-dispatched elsewhere.
func (c *Coordinator) Ingest(agentID string, env ResultEnvelope) (ingestStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[agentID]
	if !ok {
		return 0, ErrUnknownAgent
	}
	now := c.opts.Now()
	a.lastSeen = now
	if env.V > ProtocolVersion {
		return 0, fmt.Errorf("%w: envelope protocol v%d is newer than coordinator v%d", ErrBadRequest, env.V, ProtocolVersion)
	}
	j, ok := c.jobs[env.JobID]
	if !ok {
		return 0, fmt.Errorf("%w: job %s", ErrNotFound, env.JobID)
	}
	if env.Seq < 0 || env.Seq >= len(j.trials) {
		return 0, fmt.Errorf("%w: job %s has no trial seq %d", ErrBadRequest, env.JobID, env.Seq)
	}
	if want := j.trials[env.Seq].Key(j.camp.Meter); env.Key != want {
		return 0, fmt.Errorf("%w: envelope key %q does not match trial %d key %q", ErrBadRequest, env.Key, env.Seq, want)
	}
	if (env.Result == nil) == (env.Error == "") {
		return 0, fmt.Errorf("%w: envelope must carry exactly one of result or error", ErrBadRequest)
	}

	l := c.leases[env.BatchID]
	if l != nil && l.jobID != env.JobID {
		l = nil
	}
	// settle retires the envelope's seq from its lease once the envelope has
	// a classified outcome — deliberately NOT on a store-append failure, so
	// the lease keeps the seq and expiry re-dispatches the trial. A batch is
	// complete when every leased seq got an envelope; that closes the
	// dispatch-latency measurement.
	settle := func() {
		if l != nil {
			delete(l.outstanding, env.Seq)
			if len(l.outstanding) == 0 {
				lat := now.Sub(l.granted)
				j.batches++
				j.latSum += lat
				if lat > j.latMax {
					j.latMax = lat
				}
				delete(c.leases, env.BatchID)
			}
		}
		c.checkFinished(j)
		j.cond.Broadcast()
	}

	if j.state[env.Seq] == trialDone {
		j.duplicates++
		settle()
		return ingestDuplicate, nil
	}
	if env.Error != "" {
		if l == nil {
			// The lease was reclaimed and the trial re-dispatched (or it
			// already failed); this straggler error is obsolete.
			return ingestStale, nil
		}
		j.state[env.Seq] = trialFailed
		j.failures[env.Seq] = env.Error
		c.logf("fleet: job %s trial %d failed on %s: %s", j.id, env.Seq, agentID, env.Error)
		settle()
		return ingestAccepted, nil
	}

	// Stamp the executing machine's identity from the agent's registration —
	// never from the envelope — so results cannot be misattributed.
	r := *env.Result
	r.Host = a.host.Name
	r.Microarch = a.host.Microarch
	if _, err := j.st.Append([]harness.Result{r}); err != nil {
		return 0, fmt.Errorf("fleet: appending to job %s store: %w", j.id, err)
	}
	j.state[env.Seq] = trialDone
	delete(j.failures, env.Seq)
	if j.results != nil {
		j.results[env.Seq] = r
	}
	a.completed++
	settle()
	return ingestAccepted, nil
}

// reapLocked reclaims expired leases and leases held by lost agents,
// requeueing their outstanding trials (or failing them once re-dispatch
// attempts are exhausted). Caller holds c.mu.
func (c *Coordinator) reapLocked(now time.Time) {
	lostAfter := 3 * c.opts.HeartbeatEvery
	for _, a := range c.agents {
		if !a.lost && now.Sub(a.lastSeen) > lostAfter {
			a.lost = true
			c.logf("fleet: agent %s (%s) lost: last seen %v ago", a.id, a.host.Name, now.Sub(a.lastSeen).Round(time.Millisecond))
		}
	}
	for id, l := range c.leases {
		agentLost := c.agents[l.agentID] == nil || c.agents[l.agentID].lost
		if now.Before(l.deadline) && !agentLost {
			continue
		}
		j := c.jobs[l.jobID]
		for s := range l.outstanding {
			if j.state[s] != trialLeased {
				continue
			}
			if j.attempts[s] >= maxAttempts {
				j.state[s] = trialFailed
				j.failures[s] = fmt.Sprintf("lease expired %d times (agents crashed or stalled)", j.attempts[s])
				c.logf("fleet: job %s trial %d failed permanently after %d lease expiries", j.id, s, j.attempts[s])
				continue
			}
			j.state[s] = trialPending
			j.queue = append(j.queue, s)
			j.redispatched++
			c.logf("fleet: job %s trial %d reclaimed from %s, requeued (attempt %d)", j.id, s, id, j.attempts[s])
		}
		delete(c.leases, id)
		c.checkFinished(j)
		j.cond.Broadcast()
	}
}

// checkFinished marks an exhaustive job finished once no trial is pending
// or leased. Adaptive jobs finish when their planner returns.
func (c *Coordinator) checkFinished(j *job) {
	if j.adaptive || j.finished {
		return
	}
	for _, st := range j.state {
		if st == trialPending || st == trialLeased {
			return
		}
	}
	j.finished = true
	c.logf("fleet: job %s finished: %d done, %d failed", j.id, countState(j, trialDone), countState(j, trialFailed))
}

func countState(j *job, want trialState) int {
	n := 0
	for _, st := range j.state {
		if st == want {
			n++
		}
	}
	return n
}

// Reap runs one lease-reclaim pass at the current clock; the HTTP server
// calls it periodically so reclaim does not depend on agent traffic.
func (c *Coordinator) Reap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opts.Now())
}

// Status reports one job's live accounting.
func (c *Coordinator) Status(jobID string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: job %s", ErrNotFound, jobID)
	}
	return c.statusLocked(j), nil
}

// Jobs lists every job's status in submission order.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, 0, len(c.jobOrder))
	for _, id := range c.jobOrder {
		out = append(out, c.statusLocked(c.jobs[id]))
	}
	return out
}

func (c *Coordinator) statusLocked(j *job) JobStatus {
	s := JobStatus{
		V:            ProtocolVersion,
		ID:           j.id,
		Name:         j.name,
		Created:      j.created,
		Finished:     j.finished,
		Adaptive:     j.adaptive,
		Trials:       len(j.trials),
		Pending:      countState(j, trialPending),
		Leased:       countState(j, trialLeased),
		Done:         countState(j, trialDone),
		Failed:       countState(j, trialFailed),
		Redispatched: j.redispatched,
		Duplicates:   j.duplicates,
		Batches:      j.batches,
		StorePath:    j.storePath,
		PlannerErr:   j.plannerErr,
		Report:       j.report,
	}
	if j.batches > 0 {
		s.DispatchMeanMS = float64(j.latSum.Microseconds()) / float64(j.batches) / 1000
		s.DispatchMaxMS = float64(j.latMax.Microseconds()) / 1000
	}
	for seq, msg := range j.failures {
		if j.state[seq] == trialFailed {
			s.Failures = append(s.Failures, TrialFailure{Seq: seq, Key: j.trials[seq].Key(j.camp.Meter), Error: msg})
		}
	}
	sort.Slice(s.Failures, func(a, b int) bool { return s.Failures[a].Seq < s.Failures[b].Seq })
	return s
}

// Agents lists every registered agent.
func (c *Coordinator) Agents() []AgentStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opts.Now())
	out := make([]AgentStatus, 0, len(c.agents))
	for _, a := range c.agents {
		out = append(out, AgentStatus{ID: a.id, Host: a.host, LastSeen: a.lastSeen, Lost: a.lost, Completed: a.completed})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// ResultsPath returns the job's store path for streaming reads. Callers
// open a fresh read-only handle (store.Open) so the coordinator's appender
// is never shared across goroutines; Store.Append flushes per call, so a
// fresh reader sees every merged result.
func (c *Coordinator) ResultsPath(jobID string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return "", fmt.Errorf("%w: job %s", ErrNotFound, jobID)
	}
	return j.storePath, nil
}
