// Package fleet scales a characterization campaign from one machine to a
// coordinated fleet: a long-running coordinator daemon (energybench serve)
// plans submitted campaigns, leases trial batches to registered agent
// daemons (energybench agent) over a versioned HTTP/JSON protocol, and
// merges the result streams into one central store with each record stamped
// by the host — and microarchitecture — that measured it.
//
// The design deliberately reuses the single-host pipeline end to end: jobs
// are planned with the same campaign.Plan the CLI uses, agents execute
// batches through the same Scheduler/executor stack, and results land in
// the same store format — the fleet only adds distribution. Robustness
// comes from leases, not sessions: every batch grant carries a deadline,
// agents heartbeat to stay live, and an expired or orphaned lease is
// reclaimed and its unfinished trials re-dispatched to another agent.
// Result ingestion is idempotent (a re-run trial's second result is a
// counted duplicate, not a corruption), and a restarted coordinator replays
// each job's store to resume exactly where it stopped. See docs/WIRE.md for
// the wire protocol and docs/ARCHITECTURE.md for how the fleet tier relates
// to the in-process and subprocess execution tiers.
package fleet
