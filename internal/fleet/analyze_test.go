package fleet

import (
	"encoding/json"
	"net/http"
	"testing"
)

// externTestCampaign adds an external workload to the kernel grid: the
// planted fake-runner power law (10 + 2.5·threads) makes the fit exact, so
// the workload's measured power equals its prediction and the validation
// MAPE must come out ~0.
const externTestCampaign = `{
  "name": "fleet-extern-test",
  "meter": "mock",
  "mock_watts": 35,
  "executor": "inprocess",
  "spaces": [
    {"specs": ["int-alu", "chase-l1"], "threads": [1, 2], "reps": 1, "warmup": 0}
  ],
  "workloads": [
    {"name": "wl", "exec": ["./wl"], "components": {"int-alu": 1}, "threads": [1]}
  ]
}`

// externEnvelopesFor is envelopesFor with the extern result fields filled
// in, so the synthesized results keep their "|w:" keys and validation
// inputs.
func externEnvelopesFor(b *Batch) []ResultEnvelope {
	var envs []ResultEnvelope
	for _, t := range b.Trials {
		r := fakeResult(t, b.Exec.Meter)
		if t.Extern != nil {
			r.Workload = t.Extern.Workload
			r.WorkloadComponents = t.Extern.Components
		}
		envs = append(envs, ResultEnvelope{
			V: ProtocolVersion, JobID: b.JobID, BatchID: b.BatchID,
			Seq: t.Seq, Key: t.Key(b.Exec.Meter), Result: &r,
		})
	}
	return envs
}

// analyzeReport mirrors the JSON shape model.BuildReport serves.
type analyzeReport struct {
	SchemaVersion int `json:"schema_version"`
	Observations  int `json:"observations"`
	Fit           *struct {
		PStaticW float64            `json:"p_static_w"`
		CoeffW   map[string]float64 `json:"coeff_w_per_thread"`
	} `json:"fit"`
	Validation *struct {
		Predicted int     `json:"predicted"`
		Failed    int     `json:"failed"`
		MAPEPct   float64 `json:"mape_pct"`
	} `json:"validation"`
	Roofline *struct {
		Points []struct {
			Workload string `json:"workload"`
			Error    string `json:"error"`
		} `json:"points"`
	} `json:"roofline"`
}

func getAnalyze(t *testing.T, url string) (int, analyzeReport, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 20]byte
	n, _ := resp.Body.Read(buf[:])
	var rep analyzeReport
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf[:n], &rep); err != nil {
			t.Fatalf("decoding analyze body: %v\n%s", err, buf[:n])
		}
	}
	return resp.StatusCode, rep, append([]byte(nil), buf[:n]...)
}

// TestHTTPAnalyzeEndpoint drives a workload-bearing job through the
// coordinator and asserts GET /jobs/{id}/analyze serves the full report:
// fit over the kernel grid, validation of the external workload against it,
// and the roofline section with the workload's (counter-less) point.
func TestHTTPAnalyzeEndpoint(t *testing.T) {
	c, srv := newTestServer(t)
	sub := mustSubmit(t, c, externTestCampaign)
	if sub.Trials != 5 {
		t.Fatalf("submitted %d trials, want 4 kernel + 1 extern", sub.Trials)
	}
	agentID := mustRegister(t, c, "host-a")
	for {
		b, err := c.Lease(agentID, 0)
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if b == nil {
			break
		}
		for _, env := range externEnvelopesFor(b) {
			if st, err := c.Ingest(agentID, env); err != nil || st != ingestAccepted {
				t.Fatalf("Ingest seq %d: status %v, err %v", env.Seq, st, err)
			}
		}
	}

	code, rep, body := getAnalyze(t, srv.URL+"/jobs/"+sub.JobID+"/analyze")
	if code != http.StatusOK {
		t.Fatalf("analyze: HTTP %d, body %s", code, body)
	}
	if rep.Fit == nil || rep.Observations != 4 {
		t.Fatalf("report fit/observations = %v/%d, want a fit over the 4 kernel results", rep.Fit, rep.Observations)
	}
	// The fake runner's law is 10 + 2.5·threads on every spec.
	if d := rep.Fit.PStaticW - 10; d > 0.01 || d < -0.01 {
		t.Errorf("P_static = %.3f, want ~10", rep.Fit.PStaticW)
	}
	if rep.Validation == nil {
		t.Fatal("workload job's report carries no validation section")
	}
	if rep.Validation.Predicted != 1 || rep.Validation.Failed != 0 || rep.Validation.MAPEPct > 0.1 {
		t.Errorf("validation = %+v, want 1 exact prediction", rep.Validation)
	}
	// The fake results carry no counters, so the roofline keeps the point
	// with an explanatory error instead of dropping it.
	if rep.Roofline == nil || len(rep.Roofline.Points) != 1 {
		t.Fatalf("roofline = %+v, want 1 point", rep.Roofline)
	}
	if p := rep.Roofline.Points[0]; p.Workload != "wl" || p.Error == "" {
		t.Errorf("roofline point = %+v, want wl with a no-counters error", p)
	}

	// Bad boolean query values are 400s, not silent defaults.
	if code, _, body := getAnalyze(t, srv.URL+"/jobs/"+sub.JobID+"/analyze?validate=maybe"); code != http.StatusBadRequest {
		t.Errorf("validate=maybe: HTTP %d, body %s", code, body)
	}
	// Unknown jobs are 404s.
	if code, _, _ := getAnalyze(t, srv.URL+"/jobs/j9999/analyze"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d", code)
	}
}

// TestHTTPAnalyzeKernelOnlyJob pins the workload-less behavior: the report
// omits validation/roofline by default, and forcing them via query
// parameters turns the missing sections into a 400.
func TestHTTPAnalyzeKernelOnlyJob(t *testing.T) {
	c, srv := newTestServer(t)
	sub := mustSubmit(t, c, testCampaign)
	agentID := mustRegister(t, c, "host-a")
	drainJob(t, c, agentID)

	code, rep, body := getAnalyze(t, srv.URL+"/jobs/"+sub.JobID+"/analyze")
	if code != http.StatusOK || rep.Fit == nil {
		t.Fatalf("analyze: HTTP %d, body %s", code, body)
	}
	if rep.Validation != nil || rep.Roofline != nil {
		t.Errorf("kernel-only report grew validation/roofline sections: %s", body)
	}

	code, _, body = getAnalyze(t, srv.URL+"/jobs/"+sub.JobID+"/analyze?validate=1")
	if code != http.StatusBadRequest {
		t.Errorf("forced validate on kernel-only job: HTTP %d, body %s", code, body)
	}
}
